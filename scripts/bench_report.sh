#!/usr/bin/env bash
# Aggregate every BENCH_*.json at the repository root into a markdown
# trajectory table and splice it into results/README.md between the
# bench-report markers (the rest of the file is left untouched, so the
# table can be regenerated after any bench run). Run from anywhere;
# depends only on POSIX tools + awk. Exits non-zero when no BENCH files
# exist or the markers are missing.
set -euo pipefail

cd "$(dirname "$0")/.."
readme=results/README.md
begin='<!-- bench-report:begin -->'
end='<!-- bench-report:end -->'

files=(BENCH_*.json)
[ -e "${files[0]}" ] || {
    echo "bench_report: no BENCH_*.json at the repository root" >&2
    exit 1
}
grep -qF "$begin" "$readme" && grep -qF "$end" "$readme" || {
    echo "bench_report: $readme is missing the bench-report markers" >&2
    exit 1
}

table=$(
    for f in "${files[@]}"; do
        # Top-level scalars only: two-space-indented `"key": value`
        # lines. Nested result rows are indented deeper and skipped.
        awk -v file="$f" '
            /^  "[a-z_0-9]+": / {
                key = $0; sub(/^  "/, "", key); sub(/".*/, "", key)
                val = $0; sub(/^[^:]*: /, "", val); sub(/,$/, "", val)
                if (key == "bench" || key == "results") next
                if (val ~ /^[\[{]/) next  # nested object/array, not a scalar
                gsub(/"/, "", val)
                out = out sep key " " val; sep = ", "
            }
            END { printf "| `%s` | %s |\n", file, out }
        ' "$f"
    done
)

tmp=$(mktemp)
awk -v begin="$begin" -v end="$end" -v table="$table" '
    $0 == begin {
        print
        print ""
        print "| Baseline | Headline numbers |"
        print "|---|---|"
        print table
        print ""
        skipping = 1
    }
    $0 == end { skipping = 0 }
    !skipping { print }
' "$readme" >"$tmp"
mv "$tmp" "$readme"
echo "bench_report: refreshed ${#files[@]} baselines in $readme"
