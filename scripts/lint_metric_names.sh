#!/usr/bin/env bash
# Telemetry naming lint: every metric the workspace registers follows the
# `harmony_<subsystem>_<what>[_total|_seconds]` convention and lives in a
# preregistering obs module, and every trace span stage is one of the
# preregistered constants in harmony-obs::trace::stage (no ad-hoc stage
# strings at call sites). Run from the repository root; exits non-zero
# with a complaint per violation.
set -euo pipefail

cd "$(dirname "$0")/.."
fail=0

# --- Metric names -----------------------------------------------------
# Registration sites look like `registry.counter("name", "help")` or the
# labeled `registry.counter_with("name", "help", &[...])` family; either
# call may be wrapped across lines by rustfmt, so each file is flattened
# before matching. harmony-obs itself is the registry implementation:
# its unit tests and doctests register deliberately toy names and are
# exempt.
registrations=()
while IFS= read -r file; do
    while IFS= read -r name; do
        registrations+=("$file $name")
    done < <(
        tr '\n' ' ' <"$file" \
            | grep -oE '\.(counter|gauge|histogram)(_with)?\( *"[^"]+"' \
            | sed -E 's/.*"([^"]+)"/\1/'
    )
done < <(find crates -name '*.rs' -path '*/src/*' ! -path 'crates/harmony-obs/*')

for entry in "${registrations[@]}"; do
    file=${entry% *}
    name=${entry#* }
    case "$name" in
    harmony_*) ;;
    *)
        echo "FAIL: metric '$name' in $file does not start with harmony_" >&2
        fail=1
        ;;
    esac
    case "$name" in
    *_total | *_seconds | *_iterations | *_depth | *_entries | *_active | *_parked | *_runs) ;;
    *)
        echo "FAIL: metric '$name' in $file has no conventional unit/kind suffix" >&2
        fail=1
        ;;
    esac
    # Registration must live in a preregistering obs module so every
    # series exists from the first scrape (no appear-on-first-use).
    if ! grep -q 'fn preregister' "$file"; then
        echo "FAIL: metric '$name' registered in $file, which has no preregister()" >&2
        fail=1
    fi
done

[ "${#registrations[@]}" -gt 0 ] || {
    echo "FAIL: found no metric registrations at all (lint broken?)" >&2
    fail=1
}

# --- Span stage names -------------------------------------------------
# The canonical stage set lives in harmony-obs::trace::stage; call sites
# must use those constants, never inline strings, so the CLI trace
# report and this lint agree on spelling.
stage_file=crates/harmony-obs/src/trace.rs
for required in net.read net.rpc serve queue.wait exec.run eval classify \
    warm_start wal.append simplex.step session; do
    if ! grep -qE "pub const [A-Z_]+: &str = \"$required\";" "$stage_file"; then
        echo "FAIL: stage '$required' is not preregistered in $stage_file" >&2
        fail=1
    fi
done

# Span-opening calls with a string literal where the stage belongs mean
# someone bypassed the constants (trace.rs itself defines them; its docs
# and tests are exempt).
if grep -rnE '(start_root|continue_from|child)\((ctx, )?"' \
    --include='*.rs' crates | grep -v 'crates/harmony-obs/src/trace.rs'; then
    echo "FAIL: span opened with an inline stage string (use trace::stage::*)" >&2
    fail=1
fi

if [ "$fail" -eq 0 ]; then
    echo "metric/span naming lint: OK (${#registrations[@]} metric registrations checked)"
fi
exit "$fail"
