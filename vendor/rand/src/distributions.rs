//! Distributions: `Standard`, uniform range sampling, and `WeightedIndex`.

use crate::{Rng, RngCore};
use std::borrow::Borrow;
use std::fmt;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: uniform `[0, 1)` for floats, uniform bits
/// for integers, fair coin for `bool`.
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        uniform::unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Uniform sampling over ranges.
pub mod uniform {
    use super::RngCore;

    /// Uniform `f64` in `[0, 1)` built from 53 random bits.
    pub fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `u64` in `[0, n)` by widening multiply (Lemire), with a
    /// rejection step to remove modulo bias.
    pub fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (rng.next_u64() as u128) * (n as u128);
            if (m as u64) < threshold {
                continue; // reject the biased tail
            }
            return (m >> 64) as u64;
        }
    }

    /// A range that can produce uniform samples of `T` — the bound behind
    /// `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        ///
        /// # Panics
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + below(rng, span) as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + below(rng, span) as i128) as $t
                }
            }
        )*};
    }

    int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl SampleRange<f64> for std::ops::Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "gen_range: empty range");
            let v = self.start + unit_f64(rng) * (self.end - self.start);
            // Floating rounding can land exactly on `end`; nudge inside.
            if v >= self.end {
                self.end - (self.end - self.start) * f64::EPSILON
            } else {
                v
            }
        }
    }

    impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "gen_range: empty range");
            lo + unit_f64(rng) * (hi - lo)
        }
    }

    impl SampleRange<f32> for std::ops::Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "gen_range: empty range");
            let v = self.start + unit_f64(rng) as f32 * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }
}

/// Error from [`WeightedIndex::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedError {
    /// No weights were supplied.
    NoItem,
    /// A weight was negative or not finite.
    InvalidWeight,
    /// All weights are zero.
    AllWeightsZero,
}

impl fmt::Display for WeightedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightedError::NoItem => write!(f, "no weights provided"),
            WeightedError::InvalidWeight => write!(f, "negative or non-finite weight"),
            WeightedError::AllWeightsZero => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for WeightedError {}

/// Sample indices `0..n` proportionally to a weight per index.
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Build from any iterable of (borrowable) `f64` weights.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: std::borrow::Borrow<f64>,
    {
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if !w.is_finite() || w < 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() {
            return Err(WeightedError::NoItem);
        }
        if total <= 0.0 {
            return Err(WeightedError::AllWeightsZero);
        }
        Ok(WeightedIndex { cumulative })
    }
}

impl Distribution<usize> for WeightedIndex {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let target = uniform::unit_f64(rng) * total;
        // First index whose cumulative weight exceeds the target;
        // zero-weight entries (flat spots) are never selected.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite weights"))
        {
            Ok(mut i) => {
                // Landed exactly on a boundary: move past it (and past any
                // zero-weight run) to the next selectable index.
                while i + 1 < self.cumulative.len() && self.cumulative[i + 1] == self.cumulative[i]
                {
                    i += 1;
                }
                (i + 1).min(self.cumulative.len() - 1)
            }
            Err(i) => i,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Mix(u64);

    impl RngCore for Mix {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z >> 32) as u32
        }
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let dist = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut rng = Mix(1);
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never be drawn");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.2..4.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert_eq!(
            WeightedIndex::new(std::iter::empty::<f64>()).unwrap_err(),
            WeightedError::NoItem
        );
        assert_eq!(
            WeightedIndex::new([-1.0]).unwrap_err(),
            WeightedError::InvalidWeight
        );
        assert_eq!(
            WeightedIndex::new([0.0, 0.0]).unwrap_err(),
            WeightedError::AllWeightsZero
        );
    }

    #[test]
    fn weighted_index_borrows_and_owns() {
        let owned = [0.5f64, 0.5];
        let vec = vec![0.5f64, 0.5];
        assert!(WeightedIndex::new(owned).is_ok());
        assert!(WeightedIndex::new(&vec).is_ok());
    }
}
