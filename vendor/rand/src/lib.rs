//! Vendored mini-rand.
//!
//! Implements the subset of the `rand` 0.8 API this workspace uses —
//! [`RngCore`], the [`Rng`] extension trait (`gen_range`, `gen_bool`,
//! `gen`), [`SeedableRng`], and `distributions::{Distribution,
//! WeightedIndex, Standard}` — on top of any `RngCore`. The concrete
//! generator (`ChaCha8Rng`) lives in the sibling `rand_chacha` vendored
//! crate. Sequences differ from real rand 0.8, but every consumer in this
//! workspace only relies on statistical uniformity and determinism for a
//! fixed seed, not on exact streams.

// Vendored stand-in: keep the code close to the real crate's shapes rather
// than clippy-idiomatic.
#![allow(clippy::all)]

pub mod distributions;

pub use distributions::Distribution;

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with a PCG32 stream, the
    /// same scheme (and constants) `rand_core` 0.6 uses, so seeds expand
    /// to the same bytes as with the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            for (b, byte) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`start..end` or `start..=end`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        distributions::uniform::unit_f64(self) < p.clamp(0.0, 1.0)
    }

    /// A sample from the [`distributions::Standard`] distribution
    /// (uniform `[0, 1)` for floats, uniform bits for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            // Weyl sequence: full-period, uniform enough for API tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (z >> 32) as u32
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: i64 = rng.gen_range(-3i64..10);
            assert!((-3..10).contains(&y));
            let z: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
            let u: usize = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = Counter(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Counter(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
