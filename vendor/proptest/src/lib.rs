//! Vendored mini-proptest.
//!
//! Supports the subset of proptest 1.x this workspace's property tests
//! use: the `proptest!` macro (with optional `#![proptest_config(..)]`),
//! range/tuple/`&str`-regex strategies, `prop_map`, `prop_oneof!`,
//! `collection::{vec, btree_set}`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its assertion message but not a minimized input), and generation is
//! deterministic per test name so CI runs are reproducible.

// Vendored stand-in: keep the code close to the real crate's shapes rather
// than clippy-idiomatic.
#![allow(clippy::all)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Run property-style test functions.
///
/// Accepts an optional leading `#![proptest_config(expr)]`, then any
/// number of `#[test] fn name(bindings…) { body }` items where each
/// binding is `pattern in strategy_expr`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20) + 1000,
                        "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                        stringify!($name), accepted, config.cases,
                    );
                    $(let $pat = $crate::Strategy::gen(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} (case {}): {}", stringify!($name), accepted, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "{:?} != {:?}: {}",
                l,
                r,
                ::std::format!($($fmt)+)
            ),
        }
    };
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r),
        }
    };
}

/// Discard the current case (it is regenerated, not counted) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Choose uniformly between several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}
