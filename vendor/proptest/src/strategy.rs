//! The [`Strategy`] trait and the combinators this workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// simply generates one value per case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (for heterogeneous unions).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        self.0.gen(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen(rng))
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type — the
/// engine behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    ///
    /// # Panics
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof!: no options");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].gen(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        v.min(self.end - (self.end - self.start) * f64::EPSILON)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn gen(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn gen(&self, rng: &mut TestRng) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .gen(rng) as f32
    }
}

macro_rules! tuple_strategies {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

impl Strategy for &'static str {
    type Value = String;

    fn gen(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let a = (0i64..7).gen(&mut r);
            assert!((0..7).contains(&a));
            let b = (2usize..3).gen(&mut r);
            assert_eq!(b, 2);
            let c = (-1.5f64..2.5).gen(&mut r);
            assert!((-1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut r = rng();
        let strat = crate::prop_oneof![
            (0i64..5).prop_map(|v| v * 10),
            (100i64..105).prop_map(|v| v),
        ];
        let mut saw_small = false;
        let mut saw_large = false;
        for _ in 0..200 {
            let v = strat.gen(&mut r);
            assert!(
                (0..=40).contains(&v) && v % 10 == 0 || (100..105).contains(&v),
                "{v}"
            );
            saw_small |= v <= 40;
            saw_large |= v >= 100;
        }
        assert!(saw_small && saw_large);
    }

    #[test]
    fn tuples_and_just() {
        let mut r = rng();
        let (a, b, c) = ((0i64..2), Just("x"), (0.0f64..1.0)).gen(&mut r);
        assert!((0..2).contains(&a));
        assert_eq!(b, "x");
        assert!((0.0..1.0).contains(&c));
    }
}
