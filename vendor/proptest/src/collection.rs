//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Allowed collection sizes: either exact or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

/// Vectors of values from an element strategy, with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.gen(rng)).collect()
    }
}

/// Ordered sets with a size in `size`; generation retries duplicates a
/// bounded number of times, so the result may be smaller than requested
/// when the element domain is nearly exhausted.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn gen(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let want = self.size.pick(rng).max(self.size.lo);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < want && attempts < want * 50 + 100 {
            set.insert(self.element.gen(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = TestRng::deterministic("collection-tests");
        for _ in 0..100 {
            assert_eq!(vec(0i64..5, 3).gen(&mut rng).len(), 3);
            let n = vec(0i64..5, 1..4).gen(&mut rng).len();
            assert!((1..4).contains(&n), "{n}");
        }
    }

    #[test]
    fn btree_set_hits_requested_sizes_when_domain_allows() {
        let mut rng = TestRng::deterministic("collection-tests-2");
        for _ in 0..100 {
            let s = btree_set(0i64..100, 2..6).gen(&mut rng);
            assert!((2..6).contains(&s.len()), "{}", s.len());
        }
    }
}
