//! Test configuration and the deterministic case generator.

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 96 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition unmet; the case is discarded.
    Reject,
    /// `prop_assert*!` failure with its message.
    Fail(String),
}

/// Deterministic generator: SplitMix64 seeded from the test name, so a
/// given test sees the same cases on every run and every machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
