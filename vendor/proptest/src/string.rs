//! Regex-pattern string strategy (`&'static str` implements `Strategy`).
//!
//! Supports the subset of regex syntax the workspace's tests use:
//! literal characters, `[..]` character classes with ranges, `.` as any
//! printable ASCII, and the quantifiers `?`, `*`, `+` (capped at 8),
//! `{n}`, and `{m,n}` applied to the preceding atom.

use crate::test_runner::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// A single literal character.
    Literal(char),
    /// One choice from a set of characters.
    Class(Vec<char>),
}

impl Atom {
    fn gen(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(chars) => chars[rng.below(chars.len() as u64) as usize],
        }
    }
}

/// Generate one string matching `pattern`.
///
/// # Panics
/// Panics on syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let (atom, next) = parse_atom(&chars, i, pattern);
        let (lo, hi, next) = parse_quantifier(&chars, next, pattern);
        i = next;
        let n = lo + rng.below((hi - lo + 1) as u64) as u32;
        for _ in 0..n {
            out.push(atom.gen(rng));
        }
    }
    out
}

fn parse_atom(chars: &[char], i: usize, pattern: &str) -> (Atom, usize) {
    match chars[i] {
        '[' => parse_class(chars, i + 1, pattern),
        '.' => {
            let any: Vec<char> = (' '..='~').collect();
            (Atom::Class(any), i + 1)
        }
        '\\' => {
            let c = *chars
                .get(i + 1)
                .unwrap_or_else(|| panic!("regex {pattern:?}: trailing backslash"));
            (escape_atom(c, pattern), i + 2)
        }
        c if "?*+{}()|".contains(c) => {
            panic!("regex {pattern:?}: unsupported syntax at {c:?}")
        }
        c => (Atom::Literal(c), i + 1),
    }
}

fn escape_atom(c: char, pattern: &str) -> Atom {
    match c {
        'd' => Atom::Class(('0'..='9').collect()),
        'w' => {
            let mut set: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
            set.push('_');
            Atom::Class(set)
        }
        's' => Atom::Class(vec![' ', '\t']),
        '.' | '\\' | '[' | ']' | '{' | '}' | '(' | ')' | '?' | '*' | '+' | '|' | '-' => {
            Atom::Literal(c)
        }
        other => panic!("regex {pattern:?}: unsupported escape \\{other}"),
    }
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
    assert!(
        chars.get(i) != Some(&'^'),
        "regex {pattern:?}: negated classes unsupported"
    );
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = match chars[i] {
            '\\' => {
                i += 1;
                match escape_atom(chars[i], pattern) {
                    Atom::Literal(c) => c,
                    Atom::Class(cs) => {
                        set.extend(cs);
                        i += 1;
                        continue;
                    }
                }
            }
            c => c,
        };
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&e| e != ']') {
            let end = chars[i + 2];
            assert!(c <= end, "regex {pattern:?}: inverted range {c}-{end}");
            set.extend(c..=end);
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(i < chars.len(), "regex {pattern:?}: unterminated class");
    assert!(!set.is_empty(), "regex {pattern:?}: empty class");
    (Atom::Class(set), i + 1)
}

/// Returns `(min, max, next_index)` for any quantifier at `i`.
fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (u32, u32, usize) {
    match chars.get(i) {
        Some('?') => (0, 1, i + 1),
        Some('*') => (0, UNBOUNDED_CAP, i + 1),
        Some('+') => (1, UNBOUNDED_CAP, i + 1),
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("regex {pattern:?}: unterminated quantifier"));
            let body: String = chars[i + 1..close].iter().collect();
            let (lo, hi) = match body.split_once(',') {
                Some((lo, "")) => {
                    let lo = parse_count(lo, pattern);
                    (lo, lo + UNBOUNDED_CAP)
                }
                Some((lo, hi)) => (parse_count(lo, pattern), parse_count(hi, pattern)),
                None => {
                    let n = parse_count(&body, pattern);
                    (n, n)
                }
            };
            assert!(
                lo <= hi,
                "regex {pattern:?}: quantifier {{{body}}} inverted"
            );
            (lo, hi, close + 1)
        }
        _ => (1, 1, i),
    }
}

fn parse_count(s: &str, pattern: &str) -> u32 {
    s.trim()
        .parse()
        .unwrap_or_else(|_| panic!("regex {pattern:?}: bad quantifier count {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("string-tests")
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..300 {
            let s = generate("[A-Za-z][A-Za-z0-9_]{0,6}", &mut r);
            assert!((1..=7).contains(&s.chars().count()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(cs.all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn literals_classes_and_quantifiers() {
        let mut r = rng();
        assert_eq!(generate("abc", &mut r), "abc");
        assert_eq!(generate("a{3}", &mut r), "aaa");
        for _ in 0..100 {
            let s = generate(r"x\d+", &mut r);
            assert!(s.starts_with('x') && s.len() >= 2, "{s:?}");
            assert!(s[1..].chars().all(|c| c.is_ascii_digit()), "{s:?}");
            let t = generate("[abc]?", &mut r);
            assert!(t.is_empty() || "abc".contains(&t), "{t:?}");
        }
    }
}
