//! Vendored `ChaCha8Rng`: a real ChaCha stream cipher core (8 rounds)
//! behind the vendored mini-rand traits.
//!
//! Output streams differ from the real `rand_chacha` crate (which uses a
//! different seed-expansion and word order), but the generator is a
//! faithful ChaCha8: full 256-bit key state, 64-bit block counter, and the
//! standard quarter-round diffusion — deterministic per seed and
//! statistically sound for the simulations in this workspace.

// Vendored stand-in: keep the code close to the real crate's shapes rather
// than clippy-idiomatic.
#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, keyed from a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut working = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column round + diagonal round).
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bits_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u32().count_ones();
        }
        // 32,000 bits, expect ~16,000 ones; 6 sigma ≈ 540.
        assert!((15_400..16_600).contains(&ones), "{ones}");
    }

    #[test]
    fn works_with_rng_extension_methods() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((0.47..0.53).contains(&mean), "{mean}");
    }
}
