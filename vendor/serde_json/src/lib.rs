//! Vendored mini `serde_json`: JSON text ⇄ the mini-serde [`Value`] tree.
//!
//! API-compatible with the subset of real `serde_json` this workspace
//! uses: [`to_string`], [`to_string_pretty`], [`from_str`], [`to_value`],
//! [`from_value`], [`Value`], and [`Error`].

// Vendored stand-in: keep the code close to the real crate's shapes rather
// than clippy-idiomatic.
#![allow(clippy::all)]

pub use serde::value::{Map, Number, Value};

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    Ok(T::from_value(value)?)
}

/// Parse JSON text into a deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON bytes into a deserializable type.
///
/// UTF-8 is validated in place (`str::from_utf8`) — no owned `String`
/// copy is made of the input, matching real `serde_json::from_slice`.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

// ---------------------------------------------------------------- printing

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(Number::Int(n)) => out.push_str(&n.to_string()),
        Value::Number(Number::Float(f)) => write_f64(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a trailing `.0` so the value reads back as a float.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected {lit})")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(n)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.5", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            let back = parse(&{
                let mut s = String::new();
                write_value(&mut s, &v, None, 0);
                s
            })
            .unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn parse_nested() {
        let v = parse(r#"{"a": [1, 2.5, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().kind(), "array");
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn pretty_has_indentation() {
        let v = parse(r#"{"a":[1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]\n"), "{pretty}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_value(&mut s, &Value::Number(Number::Float(2.0)), None, 0);
        assert_eq!(s, "2.0");
        assert!(matches!(
            parse("2.0").unwrap(),
            Value::Number(Number::Float(_))
        ));
    }

    #[test]
    fn from_slice_matches_from_str() {
        let v: Value = from_slice(br#"{"a": [1, 2.5]}"#).unwrap();
        let w: Value = from_str(r#"{"a": [1, 2.5]}"#).unwrap();
        assert_eq!(v, w);
        assert!(from_slice::<Value>(&[0xff, 0xfe]).is_err(), "bad UTF-8");
    }

    #[test]
    fn to_vec_matches_to_string() {
        let v = parse(r#"{"a":[1]}"#).unwrap();
        assert_eq!(to_vec(&v).unwrap(), to_string(&v).unwrap().into_bytes());
    }

    #[test]
    fn errors_carry_positions() {
        assert!(parse("[1, ").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(from_str::<bool>("1").is_err());
    }
}
