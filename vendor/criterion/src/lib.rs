//! Vendored mini-criterion.
//!
//! Implements the subset of criterion 0.5 this workspace's benches use:
//! `Criterion`, `benchmark_group` (with `sample_size`, `bench_function`,
//! `bench_with_input`, `finish`), `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Like the real crate, the binary inspects its arguments: `cargo bench`
//! passes `--bench` and gets full sampled measurement; under `cargo test`
//! (which runs `harness = false` bench targets as smoke tests) each
//! closure runs once so the suite stays fast. Reporting is plain text —
//! median, min, and max per-iteration time — with no HTML or history.

// Vendored stand-in: keep the code close to the real crate's shapes rather
// than clippy-idiomatic.
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
pub struct Criterion {
    mode: Mode,
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    /// Full measurement (`--bench` was passed, i.e. `cargo bench`).
    Measure,
    /// Run each closure once to prove it works (`cargo test`).
    Smoke,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 60;

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            mode: self.mode,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.mode, DEFAULT_SAMPLE_SIZE, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    mode: Mode,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under `group/name`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&full, self.mode, self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group. (No summary state to flush in this stub.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Just the parameter, for groups benchmarking one function.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Accepts either a `BenchmarkId` or a plain `&str` name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Times the closure handed to it by a benchmark function.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Per-iteration times, one entry per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            std::hint::black_box(f());
            return;
        }
        // Warm up, and size batches so each sample spans >= ~1ms: timing a
        // batch amortises Instant overhead for nanosecond-scale closures.
        let warm_start = Instant::now();
        std::hint::black_box(f());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, mode: Mode, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        mode,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    match mode {
        Mode::Smoke => println!("bench {name}: ok (smoke run)"),
        Mode::Measure => {
            let mut samples = bencher.samples;
            if samples.is_empty() {
                println!("bench {name}: no samples (Bencher::iter never called)");
                return;
            }
            samples.sort();
            let median = samples[samples.len() / 2];
            println!(
                "bench {name}: median {} (min {}, max {}, {} samples)",
                fmt_duration(median),
                fmt_duration(samples[0]),
                fmt_duration(*samples.last().unwrap()),
                samples.len(),
            );
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running one or more `criterion_group!` groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_closure_once() {
        let mut calls = 0;
        let mut b = Bencher {
            mode: Mode::Smoke,
            sample_size: 10,
            samples: Vec::new(),
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut b = Bencher {
            mode: Mode::Measure,
            sample_size: 5,
            samples: Vec::new(),
        };
        b.iter(|| std::hint::black_box(1 + 1));
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).0, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }
}
