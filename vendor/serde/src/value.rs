//! The owned value tree every serializable type round-trips through.

/// A JSON-shaped value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric value.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// A key-value mapping (insertion-ordered).
    Object(Map),
}

/// Integer-preserving number: `Int` round-trips `i64` exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// An integer that fits `i64`.
    Int(i64),
    /// Any other numeric value.
    Float(f64),
}

impl Value {
    /// Short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// As an integer, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(n)) => Some(*n),
            Value::Number(Number::Float(f)) if f.fract() == 0.0 && f.abs() < 9.2e18 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// As a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Int(n)) => Some(*n as f64),
            Value::Number(Number::Float(f)) => Some(*f),
            _ => None,
        }
    }

    /// As a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Member of an object by key, with a descriptive error on absence.
    ///
    /// Used by derived `Deserialize` impls; a missing key maps to `Null`
    /// so that `Option` fields absent from the document read as `None`.
    pub fn field(&self, key: &str) -> Result<&Value, crate::DeError> {
        match self {
            Value::Object(m) => Ok(m.get(key).unwrap_or(&Value::Null)),
            other => Err(crate::DeError::expected("object", other)),
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (replacing any existing entry with the same key).
    pub fn insert(&mut self, key: String, value: Value) {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}
