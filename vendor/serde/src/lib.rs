//! Vendored mini-serde.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, self-contained replacement for the subset of serde
//! it actually uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! and enums, plus JSON persistence through the sibling `serde_json`
//! vendored crate.
//!
//! Instead of serde's visitor-based zero-copy data model, this
//! implementation round-trips everything through an owned [`Value`] tree.
//! That is slower than real serde but behaviourally equivalent for the
//! sizes this workspace serializes (experience databases, wire messages),
//! and it keeps the derive macro small enough to hand-write without `syn`.
//!
//! The serialized *format* follows serde's externally-tagged conventions
//! so that files written by a real-serde build load here and vice versa:
//! named-field structs become objects, newtype structs are transparent,
//! unit enum variants become strings, and data-carrying variants become
//! single-key objects.

// Vendored stand-in: keep the code close to the real crate's shapes rather
// than clippy-idiomatic.
#![allow(clippy::all)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Serialization: convert `self` into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Deserialization: rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable mismatch description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error describing what was expected and what was found.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Int(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Number(Number::Int(*self as i64))
        } else {
            Value::Number(Number::Float(*self as f64))
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
        u64::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let _ = $n; // positional; consume in order
                            $t::from_value(
                                it.next().ok_or_else(|| DeError("tuple too short".into()))?,
                            )?
                        },)+);
                        Ok(out)
                    }
                    other => Err(DeError::expected("array (tuple)", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
