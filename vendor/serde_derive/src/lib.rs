//! `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! Parses the item's token stream directly (no `syn`/`quote` — those are
//! unavailable offline) and emits `impl serde::Serialize` /
//! `impl serde::Deserialize` blocks as source text.
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (`#[serde(skip)]` honoured: skipped on
//!   serialize, `Default::default()` on deserialize;
//!   `#[serde(skip_serializing_if = ...)]` honoured as omit-when-null:
//!   the field is left out of the serialized object whenever its value
//!   serializes to `Null` — which is exactly the `Option::is_none`
//!   predicate this workspace pairs it with — and an absent key already
//!   deserializes as `Null`, so `Option` fields read back as `None`);
//! * tuple structs (arity 1 serializes transparently, like serde
//!   newtypes; higher arities serialize as arrays);
//! * enums with unit, newtype, tuple, and struct variants, in serde's
//!   externally-tagged representation.
//!
//! Generic types and `where` clauses are rejected with a compile error.

// Vendored stand-in: keep the code close to the real crate's shapes rather
// than clippy-idiomatic.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

enum Fields {
    Unit,
    /// Tuple fields; the payload is the arity.
    Tuple(usize),
    Named(Vec<Field>),
}

struct Field {
    name: String,
    skip: bool,
    /// `#[serde(skip_serializing_if = ...)]`: omit the field from the
    /// serialized object when its value serializes to `Null`.
    skip_if_none: bool,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(tuple_arity(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => panic!("serde_derive: enum body not found"),
            };
            Item::Enum {
                name,
                variants: parse_variants(group),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// Advance past leading outer attributes (`#[...]`, including expanded doc
/// comments) and a visibility qualifier (`pub`, `pub(crate)`, …).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Does an attribute token group spell `serde(...)` naming `flag`?
fn serde_attr_names(group: &TokenStream, flag: &str) -> bool {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == flag))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (collect the skip flags).
        let mut skip = false;
        let mut skip_if_none = false;
        while matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '#') {
            if let TokenTree::Group(g) = &tokens[i + 1] {
                skip |= serde_attr_names(&g.stream(), "skip");
                skip_if_none |= serde_attr_names(&g.stream(), "skip_serializing_if");
            }
            i += 2;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1; // name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            skip,
            skip_if_none,
        });
        // Separator comma, if any.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advance past one type, stopping at a top-level `,` (angle brackets
/// tracked manually — they are plain puncts, unlike `()`/`[]` groups).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                ',' if depth == 0 => return,
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            },
            _ => {}
        }
        *i += 1;
    }
}

fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        arity += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        variants.push((name, fields));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// --------------------------------------------------------------- codegen

fn serialize_struct(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            let mut out = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                out.push_str(&insert_named_field(f, "m", &format!("&self.{}", f.name)));
            }
            out.push_str("::serde::Value::Object(m)");
            out
        }
    }
}

/// One `{map}.insert(...)` statement for a named field, honouring
/// omit-when-null (`expr` is the borrow that reaches the field value).
fn insert_named_field(f: &Field, map: &str, expr: &str) -> String {
    if f.skip_if_none {
        format!(
            "{{\n\
                 let value = ::serde::Serialize::to_value({expr});\n\
                 if !::std::matches!(value, ::serde::Value::Null) {{\n\
                     {map}.insert(::std::string::String::from(\"{0}\"), value);\n\
                 }}\n\
             }}\n",
            f.name
        )
    } else {
        format!(
            "{map}.insert(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({expr}));\n",
            f.name
        )
    }
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("::std::result::Result::Ok({name})"),
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} =>\n\
                         ::std::result::Result::Ok({name}({fields})),\n\
                     other => ::std::result::Result::Err(::serde::DeError::expected(\"array of {n}\", other)),\n\
                 }}",
                fields = items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::std::default::Default::default()", f.name)
                    } else {
                        format!(
                            "{0}: ::serde::Deserialize::from_value(v.field(\"{0}\")?)?",
                            f.name
                        )
                    }
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
    }
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),\n"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(::std::string::String::from(\"{vname}\"), {inner});\n\
                         ::serde::Value::Object(m)\n\
                     }}\n",
                    binds = binds.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let binds: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::from("let mut fields = ::serde::Map::new();\n");
                for f in fs {
                    inner.push_str(&insert_named_field(f, "fields", &f.name));
                }
                arms.push_str(&format!(
                    "{name}::{vname} {{ {binds} }} => {{\n\
                         {inner}\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(fields));\n\
                         ::serde::Value::Object(m)\n\
                     }}\n",
                    binds = binds.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{arms}}}")
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for (vname, fields) in variants {
        match fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            Fields::Tuple(1) => tagged_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => match inner {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} =>\n\
                             ::std::result::Result::Ok({name}::{vname}({fields})),\n\
                         other => ::std::result::Result::Err(::serde::DeError::expected(\"array of {n}\", other)),\n\
                     }},\n",
                    fields = items.join(", ")
                ));
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        format!(
                            "{0}: ::serde::Deserialize::from_value(inner.field(\"{0}\")?)?",
                            f.name
                        )
                    })
                    .collect();
                tagged_arms.push_str(&format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),\n",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match v {{\n\
             ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::DeError(\n\
                     ::std::format!(\"unknown unit variant {{other:?}} for {name}\"))),\n\
             }},\n\
             ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().expect(\"len checked\");\n\
                 match tag.as_str() {{\n\
                     {tagged_arms}\
                     other => ::std::result::Result::Err(::serde::DeError(\n\
                         ::std::format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(::serde::DeError::expected(\"{name} variant\", other)),\n\
         }}"
    )
}
