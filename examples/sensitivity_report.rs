//! The standalone parameter prioritizing tool (§3) on the fifteen-
//! parameter synthetic system, sequential and parallel.
//!
//! Run with: `cargo run --release -p harmony-examples --bin sensitivity_report`

use harmony::objective::FnObjective;
use harmony::sensitivity::Prioritizer;
use harmony_examples::banner;
use harmony_space::Configuration;
use harmony_synth::scenario::{section5_system, SECTION5_IRRELEVANT};

fn main() {
    let workload = [0.3, 0.5, 0.2];

    banner("sequential sweep (stateful objective, 25% output noise)");
    let mut sys = section5_system(workload, 0.25, 7);
    let space = sys.space().clone();
    let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
    let report = Prioritizer::new(space.clone())
        .with_repeats(9)
        .with_noise_floor(20)
        .analyze(&mut obj);
    println!("{} explorations spent", report.explorations());
    for e in report.ranked() {
        let mark = if SECTION5_IRRELEVANT.contains(&e.index) {
            "  <- planted irrelevant"
        } else {
            ""
        };
        println!(
            "  {:<3} sensitivity {:>8.2}  best value {}{}",
            e.name, e.sensitivity, e.best_value, mark
        );
    }

    banner("parallel sweep (pure evaluation function, noise-free)");
    let clean = section5_system(workload, 0.0, 0);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let par = Prioritizer::new(space).analyze_parallel(|cfg| clean.evaluate_clean(cfg), threads);
    println!(
        "top-5 parameters on {threads} threads: {:?}",
        par.ranked()
            .iter()
            .take(5)
            .map(|e| e.name.as_str())
            .collect::<Vec<_>>()
    );
    println!("irrelevant (<=1% of max): {:?}", par.irrelevant(0.01));
}
