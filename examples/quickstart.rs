//! Quickstart: make a black-box function tunable and let Active Harmony
//! find a good configuration.
//!
//! Run with: `cargo run -p harmony-examples --bin quickstart`

use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony_space::{ParamDef, ParameterSpace};

fn main() {
    // 1. Declare the tunable parameters: min, max, default, step (§3's
    //    four values).
    let space = ParameterSpace::builder()
        .param(ParamDef::int("read_ahead_kb", 4, 512, 64, 4))
        .param(ParamDef::int("worker_threads", 1, 64, 8, 1))
        .param(ParamDef::categorical(
            "sort_algorithm",
            vec!["heap".into(), "quick".into(), "merge".into()],
            0,
        ))
        .build()
        .expect("valid space");

    // 2. Wrap the system as an objective (here a synthetic one: quicksort
    //    with ~24 threads and ~128 KB read-ahead is best).
    let mut objective = FnObjective::new(|cfg: &Configuration| {
        let ra = cfg.get(0) as f64;
        let threads = cfg.get(1) as f64;
        let algo_bonus = [0.0, 15.0, 8.0][cfg.get(2) as usize];
        200.0 + algo_bonus - 0.002 * (ra - 128.0).powi(2) - 0.15 * (threads - 24.0).powi(2)
    });

    // 3. Tune.
    let tuner = Tuner::new(space.clone(), TuningOptions::improved());
    let outcome = tuner.run(&mut objective);

    println!("explored {} configurations", outcome.trace.len());
    println!(
        "best: read_ahead={}KB, threads={}, algorithm={}",
        outcome.best_configuration.get(0),
        outcome.best_configuration.get(1),
        space
            .param(2)
            .label(outcome.best_configuration.get(2))
            .unwrap_or("?"),
    );
    println!(
        "performance: {:.1} (converged: {})",
        outcome.best_performance, outcome.converged
    );
    println!(
        "convergence after {} iterations; worst dip {:.1}",
        outcome.report.convergence_time, outcome.report.worst_performance
    );
    assert!(
        outcome.best_performance > 205.0,
        "tuning should approach the optimum"
    );
}
