//! The full §6 workflow against the simulated cluster-based web service:
//! prioritize parameters, observe the workload, classify against prior
//! experience, train, tune, and record the run.
//!
//! Run with: `cargo run --release -p harmony-examples --bin webservice_tuning`

use harmony::history::DataAnalyzer;
use harmony::objective::Objective;
use harmony::prelude::*;
use harmony::server::ServerOptions;
use harmony::tuner::TrainingMode;
use harmony_examples::banner;
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};

struct Web(WebServiceSystem);

impl Objective for Web {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        self.0.evaluate(cfg)
    }
}

fn main() {
    let mut server = HarmonyServer::new(
        harmony_websim::webservice_space(),
        ServerOptions {
            tuning: TuningOptions::improved().with_max_iterations(100),
            training: TrainingMode::Replay(10),
            analyzer: DataAnalyzer::new(),
            focus_top_n: Some(6),
        },
    );

    banner("1. parameter prioritizing (once, amortized)");
    let mut probe = Web(WebServiceSystem::new(
        WorkloadMix::shopping(),
        Fidelity::Analytic,
        0.05,
        1,
    ));
    let report = harmony::sensitivity::Prioritizer::new(server.space().clone())
        .with_max_samples(10)
        .analyze(&mut probe);
    for e in report.ranked().iter().take(6) {
        println!("  {:<24} sensitivity {:.1}", e.name, e.sensitivity);
    }
    server.set_sensitivity(report);

    banner("2. first execution: shopping workload, no prior experience");
    let mut sys = Web(WebServiceSystem::new(
        WorkloadMix::shopping(),
        Fidelity::Analytic,
        0.05,
        2,
    ));
    let chars = sys.0.observe_characteristics(400);
    let out1 = server.tune_session(&mut sys, "shopping", &chars);
    println!(
        "  trained from: {:?}; best WIPS {:.1} after {} iterations ({} bad)",
        out1.trained_from,
        out1.tuning.best_performance,
        out1.tuning.trace.len(),
        out1.tuning.report.bad_iterations
    );

    banner("3. second execution: ordering workload — closest experience is reused");
    let mut sys2 = Web(WebServiceSystem::new(
        WorkloadMix::ordering(),
        Fidelity::Analytic,
        0.05,
        3,
    ));
    let chars2 = sys2.0.observe_characteristics(400);
    let out2 = server.tune_session(&mut sys2, "ordering", &chars2);
    println!(
        "  trained from: {:?}; best WIPS {:.1}; convergence at iteration {}",
        out2.trained_from, out2.tuning.best_performance, out2.tuning.report.convergence_time
    );

    banner("4. shopping returns — now there is a close match in the database");
    let mut sys3 = Web(WebServiceSystem::new(
        WorkloadMix::shopping(),
        Fidelity::Analytic,
        0.05,
        4,
    ));
    let chars3 = sys3.0.observe_characteristics(400);
    let out3 = server.tune_session(&mut sys3, "shopping-2", &chars3);
    println!(
        "  trained from: {:?}; convergence at iteration {} (vs {} cold)",
        out3.trained_from, out3.tuning.report.convergence_time, out1.tuning.report.convergence_time
    );
    println!("\nexperience database now holds {} runs", server.db().len());
}
