//! Shared helpers for the runnable examples.
//!
//! Each binary at the crate root is a self-contained walkthrough of one
//! part of the Active Harmony API:
//!
//! * `quickstart` — tune a toy function in ~30 lines;
//! * `webservice_tuning` — the full §6 flow against the simulated
//!   three-tier cluster;
//! * `matrix_partition` — Appendix B's restricted-space scientific-library
//!   scenario;
//! * `sensitivity_report` — the standalone parameter prioritizing tool;
//! * `experience_replay` — persisting and reusing the experience database
//!   across "executions".

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
