//! Continuous adaptation on the simulated cluster: the traffic mix shifts
//! from browsing-dominated to ordering-dominated during the day; the
//! adaptive controller notices the drift, re-tunes (warm-started from the
//! growing experience database), and redeploys.
//!
//! Run with: `cargo run --release -p harmony-examples --bin adaptive_cluster`

use harmony::adaptive::{AdaptiveOptions, AdaptiveTuner, Decision};
use harmony::objective::Objective;
use harmony::prelude::*;
use harmony_examples::banner;
use harmony_websim::{webservice_space, Fidelity, WebServiceSystem, WorkloadMix};

struct Web(WebServiceSystem);

impl Objective for Web {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        self.0.evaluate(cfg)
    }
}

fn main() {
    let mut controller = AdaptiveTuner::new(webservice_space(), AdaptiveOptions::default());

    // A simulated day: traffic drifts browsing -> shopping -> ordering,
    // then returns to shopping.
    let periods: [(&str, WorkloadMix); 6] = [
        ("06:00", WorkloadMix::browsing()),
        (
            "09:00",
            WorkloadMix::browsing().blend(&WorkloadMix::shopping(), 0.15),
        ),
        ("12:00", WorkloadMix::shopping()),
        (
            "15:00",
            WorkloadMix::shopping().blend(&WorkloadMix::ordering(), 0.9),
        ),
        ("18:00", WorkloadMix::ordering()),
        ("21:00", WorkloadMix::shopping()),
    ];

    banner("simulated day with drifting traffic");
    for (i, (clock, mix)) in periods.iter().enumerate() {
        let mut sys = Web(WebServiceSystem::new(
            mix.clone(),
            Fidelity::Analytic,
            0.05,
            i as u64,
        ));
        let chars = sys.0.observe_characteristics(400);
        match controller.observe(&mut sys, &format!("period-{clock}"), &chars) {
            Decision::Steady { drift } => {
                println!("{clock}  drift {drift:.3} -> keep configuration (WIPS stays tuned)");
            }
            Decision::Retuned { drift, outcome } => {
                println!(
                    "{clock}  drift {} -> RE-TUNE (trained from {:?}): best WIPS {:.1} in {} iterations",
                    drift.map(|d| format!("{d:.3}")).unwrap_or_else(|| "n/a".into()),
                    outcome.trained_from,
                    outcome.tuning.best_performance,
                    outcome.tuning.trace.len(),
                );
            }
        }
    }

    banner("summary");
    println!(
        "{} tuning sessions over {} periods; experience database holds {} runs",
        controller.sessions(),
        periods.len(),
        controller.server().db().len(),
    );
    println!(
        "deployed configuration: {}",
        controller.deployed().expect("deployed")
    );
}
