//! Appendix B's scientific-library scenario: partition a matrix with `k`
//! rows into `n` blocks, where block sizes are related parameters — the
//! resource specification language's restriction support prunes the
//! infeasible combinations up front.
//!
//! Run with: `cargo run -p harmony-examples --bin matrix_partition`

use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony_examples::banner;
use harmony_space::parse_rsl;

const K: i64 = 32; // matrix rows
const N: i64 = 4; // partitions

fn main() {
    banner("declaring the restricted space in RSL");
    // P1..P3 tunable; P4 = K - P1 - P2 - P3 is determined ("the last line
    // … can be further removed since the value for parameter D is decided").
    let doc = format!(
        "{{ harmonyBundle P1 {{ int {{1 {} 1}} }}}}\n\
         {{ harmonyBundle P2 {{ int {{1 {k}-2-$P1 1}} }}}}\n\
         {{ harmonyBundle P3 {{ int {{1 {k}-1-($P1+$P2) 1}} }}}}",
        K - N + 1,
        k = K,
    );
    println!("{doc}");
    let space = parse_rsl(&doc).expect("valid RSL");
    println!(
        "feasible partitions: {} (naive 3-parameter encoding: {})",
        space.restricted_size(u128::MAX).expect("enumerable"),
        (K as u128 - N as u128 + 1).pow(3),
    );

    banner("tuning the partition sizes");
    // Simulated execution time: each block's cost is proportional to its
    // rows but blocks run in parallel, so the makespan is the largest
    // block; uneven row weights make the best split non-uniform.
    let weights = [1.0, 1.0, 1.6, 2.2]; // later rows are denser
    let mut objective = FnObjective::new(move |cfg: &Configuration| {
        let p1 = cfg.get(0);
        let p2 = cfg.get(1);
        let p3 = cfg.get(2);
        let p4 = K - p1 - p2 - p3;
        if p4 < 1 {
            return 0.0; // cannot happen in the restricted space
        }
        let makespan = [p1, p2, p3, p4]
            .iter()
            .zip(&weights)
            .map(|(&rows, w)| rows as f64 * w)
            .fold(0.0f64, f64::max);
        1000.0 / makespan // higher is better
    });
    let outcome =
        Tuner::new(space, TuningOptions::improved().with_max_iterations(120)).run(&mut objective);

    let (p1, p2, p3) = (
        outcome.best_configuration.get(0),
        outcome.best_configuration.get(1),
        outcome.best_configuration.get(2),
    );
    println!(
        "best partition: [{p1}, {p2}, {p3}, {}] -> throughput {:.2}",
        K - p1 - p2 - p3,
        outcome.best_performance
    );
    println!(
        "explored {} configurations, all feasible by construction",
        outcome.trace.len()
    );
    // The weighted-balanced split puts fewer rows in the heavy blocks.
    assert!(
        p1 >= p3,
        "heavier blocks should get fewer rows (p1={p1}, p3={p3})"
    );
}
