//! Persisting the experience database across executions (§4.2): the first
//! "execution" tunes from scratch and saves its experience; the second
//! loads the database, classifies the incoming workload, and warm-starts.
//!
//! Run with: `cargo run --release -p harmony-examples --bin experience_replay`

use harmony::history::ExperienceDb;
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::tuner::TrainingMode;
use harmony_examples::banner;
use harmony_synth::scenario::weblike_system;

fn main() {
    let dir = std::env::temp_dir().join("harmony-experience-demo");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let db_path = dir.join("experience.json");

    let workload_day1 = [0.40, 0.25, 0.10, 0.10, 0.10, 0.05];
    let workload_day2 = [0.38, 0.24, 0.11, 0.12, 0.10, 0.05]; // similar traffic next day

    banner("execution 1: cold tuning, then save the experience");
    let mut sys1 = weblike_system(&workload_day1, 0.05, 1);
    let space = sys1.space().clone();
    let mut obj1 = FnObjective::new(move |cfg: &Configuration| sys1.evaluate(cfg));
    let tuner = Tuner::new(
        space.clone(),
        TuningOptions::improved().with_max_iterations(120),
    );
    let out1 = tuner.run(&mut obj1);
    println!(
        "  best {:.1} after {} iterations, {} bad iterations",
        out1.best_performance,
        out1.trace.len(),
        out1.report.bad_iterations
    );
    let mut db = ExperienceDb::new();
    db.add_run(out1.to_history("day-1", workload_day1.to_vec()));
    db.save(&db_path).expect("save experience");
    println!("  saved to {}", db_path.display());

    banner("execution 2 (new process): load, classify, warm-start");
    let db = ExperienceDb::load(&db_path).expect("load experience");
    println!("  loaded {} prior run(s)", db.len());
    let (idx, matched) = db.classify(&workload_day2).expect("match found");
    println!(
        "  classified day-2 traffic -> prior run #{idx} ({:?})",
        matched.label
    );
    let mut sys2 = weblike_system(&workload_day2, 0.05, 2);
    let mut obj2 = FnObjective::new(move |cfg: &Configuration| sys2.evaluate(cfg));
    let out2 = tuner.run_trained(&mut obj2, matched, TrainingMode::Replay(10));
    println!(
        "  best {:.1}; convergence at iteration {} (cold run: {}); {} bad iterations (cold: {})",
        out2.best_performance,
        out2.report.convergence_time,
        out1.report.convergence_time,
        out2.report.bad_iterations,
        out1.report.bad_iterations,
    );

    std::fs::remove_file(&db_path).ok();
}
