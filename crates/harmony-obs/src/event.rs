//! Structured events: one JSON object per line to a configurable sink.
//!
//! An event is a level, a name, and key-value fields, stamped with a
//! monotonic timestamp (microseconds since the process first touched
//! the observability layer) and the wall clock (milliseconds since the
//! Unix epoch). Per-thread context fields — a session label, a peer
//! address — attach themselves to every event the thread emits while a
//! [`ContextGuard`] is alive.
//!
//! When no sink is installed, emitting costs one atomic load: builders
//! are inert and allocate nothing. Install a sink with [`log_to_file`]
//! (the daemon's `--log-json`), [`set_sink`], or [`Capture::install`]
//! in tests.
//!
//! ```
//! use harmony_obs::event::{event, push_context, Capture, Level};
//!
//! let capture = Capture::install();
//! let _session = push_context("session", "w1");
//! event(Level::Info, "tune.start").u64("budget", 50).emit();
//! let lines = capture.lines();
//! assert!(lines[0].contains(r#""event":"tune.start""#));
//! assert!(lines[0].contains(r#""session":"w1""#));
//! # harmony_obs::event::clear_sink();
//! ```

use std::cell::RefCell;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume diagnostics (per-iteration progress).
    Debug,
    /// Normal operational milestones.
    Info,
    /// Something unexpected the process recovered from.
    Warn,
    /// A failure worth paging over.
    Error,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static MIN_LEVEL: AtomicU8 = AtomicU8::new(0); // Debug

type Sink = Mutex<Option<Box<dyn Write + Send>>>;

fn sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Route events to an arbitrary writer (one JSON object per line).
pub fn set_sink(w: Box<dyn Write + Send>) {
    *sink().lock().expect("event sink poisoned") = Some(w);
    ENABLED.store(true, Ordering::Release);
}

/// Append events to a JSONL file, creating it if needed.
pub fn log_to_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    set_sink(Box::new(file));
    Ok(())
}

/// Like [`log_to_file`], but with size-based rotation: once the live
/// file reaches `max_bytes`, it is renamed to `<path>.1` (shifting
/// `<path>.1` → `<path>.2` and so on, keeping at most `keep` rotated
/// files) and a fresh file is opened.
///
/// Rollover is torn-write-safe: rotation only ever happens on a line
/// boundary, so a JSONL line is never split across two files, and the
/// shift uses atomic renames. If a rename fails (e.g. permissions),
/// logging degrades to appending to the current file rather than
/// dropping events.
pub fn log_to_file_rotating(
    path: impl AsRef<Path>,
    max_bytes: u64,
    keep: usize,
) -> std::io::Result<()> {
    let path = path.as_ref().to_path_buf();
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)?;
    let written = file.metadata()?.len();
    set_sink(Box::new(RotatingWriter {
        path,
        file: Some(file),
        written,
        max_bytes: max_bytes.max(1),
        keep: keep.max(1),
        at_line_boundary: true,
    }));
    Ok(())
}

/// A [`Write`] sink that rotates its file by size at line boundaries.
#[derive(Debug)]
struct RotatingWriter {
    path: std::path::PathBuf,
    file: Option<std::fs::File>,
    written: u64,
    max_bytes: u64,
    keep: usize,
    at_line_boundary: bool,
}

impl RotatingWriter {
    fn rotate(&mut self) {
        use std::io::Write as _;
        if let Some(mut f) = self.file.take() {
            let _ = f.flush();
        }
        // Shift path.(keep-1) → path.keep, …, path.1 → path.2, then
        // path → path.1. Renames are atomic; the oldest file falls off.
        let rotated = |n: usize| {
            let mut p = self.path.clone().into_os_string();
            p.push(format!(".{n}"));
            std::path::PathBuf::from(p)
        };
        for n in (1..self.keep).rev() {
            let _ = std::fs::rename(rotated(n), rotated(n + 1));
        }
        let _ = std::fs::rename(&self.path, rotated(1));
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
        {
            Ok(f) => {
                self.written = f.metadata().map(|m| m.len()).unwrap_or(0);
                self.file = Some(f);
            }
            Err(_) => {
                // Reopen the old file (now possibly renamed) rather
                // than losing events entirely.
                self.file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(rotated(1))
                    .ok();
            }
        }
    }
}

impl Write for RotatingWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        if self.at_line_boundary && self.written >= self.max_bytes {
            self.rotate();
        }
        if let Some(f) = self.file.as_mut() {
            f.write_all(data)?;
        }
        self.written += data.len() as u64;
        self.at_line_boundary = data.ends_with(b"\n");
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self.file.as_mut() {
            Some(f) => f.flush(),
            None => Ok(()),
        }
    }
}

/// Remove the sink; subsequent events are dropped at near-zero cost.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::Release);
    *sink().lock().expect("event sink poisoned") = None;
}

/// Drop events below `level` (default: keep everything).
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Microseconds on the monotonic clock since this process first used
/// the observability layer.
pub fn monotonic_us() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_micros() as u64
}

fn wall_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

thread_local! {
    static CONTEXT: RefCell<Vec<(String, String)>> = const { RefCell::new(Vec::new()) };
}

/// Attach a key-value pair to every event this thread emits until the
/// returned guard drops. Guards nest LIFO.
#[must_use = "the context lasts only while the guard is alive"]
pub fn push_context(key: &str, value: impl Into<String>) -> ContextGuard {
    CONTEXT.with(|c| c.borrow_mut().push((key.to_string(), value.into())));
    ContextGuard { _private: () }
}

/// Guard from [`push_context`]; pops the field when dropped.
#[derive(Debug)]
pub struct ContextGuard {
    _private: (),
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CONTEXT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Start building an event. Call field methods, then
/// [`emit`](EventBuilder::emit).
pub fn event(level: Level, name: &str) -> EventBuilder {
    let active = ENABLED.load(Ordering::Acquire)
        && level >= Level::from_u8(MIN_LEVEL.load(Ordering::Relaxed));
    if !active {
        return EventBuilder { buf: None };
    }
    let mut buf = String::with_capacity(128);
    buf.push_str("{\"ts_us\":");
    buf.push_str(&monotonic_us().to_string());
    buf.push_str(",\"wall_ms\":");
    buf.push_str(&wall_ms().to_string());
    buf.push_str(",\"level\":\"");
    buf.push_str(level.as_str());
    buf.push_str("\",\"event\":\"");
    escape_json(&mut buf, name);
    buf.push('"');
    CONTEXT.with(|c| {
        for (k, v) in c.borrow().iter() {
            push_key(&mut buf, k);
            buf.push('"');
            escape_json(&mut buf, v);
            buf.push('"');
        }
    });
    // Events emitted inside a trace carry its ID, so a JSONL line can
    // be joined against a flight-recorder dump.
    if let Some(ctx) = crate::trace::current() {
        push_key(&mut buf, "trace_id");
        buf.push('"');
        buf.push_str(&format!("{:016x}", ctx.trace_id));
        buf.push('"');
    }
    EventBuilder { buf: Some(buf) }
}

/// An event under construction. Inert (every method is a no-op) when no
/// sink is installed or the level is filtered out.
#[derive(Debug)]
#[must_use = "events do nothing until .emit()"]
pub struct EventBuilder {
    buf: Option<String>,
}

impl EventBuilder {
    /// Add a string field.
    pub fn str(mut self, key: &str, value: impl AsRef<str>) -> Self {
        if let Some(buf) = &mut self.buf {
            push_key(buf, key);
            buf.push('"');
            escape_json(buf, value.as_ref());
            buf.push('"');
        }
        self
    }

    /// Add a signed integer field.
    pub fn i64(mut self, key: &str, value: i64) -> Self {
        if let Some(buf) = &mut self.buf {
            push_key(buf, key);
            buf.push_str(&value.to_string());
        }
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        if let Some(buf) = &mut self.buf {
            push_key(buf, key);
            buf.push_str(&value.to_string());
        }
        self
    }

    /// Add a float field (non-finite values are emitted as strings,
    /// since JSON has no literal for them).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        if let Some(buf) = &mut self.buf {
            push_key(buf, key);
            if value.is_finite() {
                buf.push_str(&format!("{value}"));
            } else {
                buf.push('"');
                buf.push_str(&format!("{value}"));
                buf.push('"');
            }
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        if let Some(buf) = &mut self.buf {
            push_key(buf, key);
            buf.push_str(if value { "true" } else { "false" });
        }
        self
    }

    /// Write the event to the sink as one JSONL line.
    pub fn emit(self) {
        let Some(mut buf) = self.buf else { return };
        buf.push_str("}\n");
        if let Some(w) = sink().lock().expect("event sink poisoned").as_mut() {
            // A dead sink (full disk, closed pipe) must never take the
            // instrumented process down with it.
            let _ = w.write_all(buf.as_bytes());
            let _ = w.flush();
        }
    }
}

fn push_key(buf: &mut String, key: &str) {
    buf.push_str(",\"");
    escape_json(buf, key);
    buf.push_str("\":");
}

fn escape_json(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                buf.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => buf.push(c),
        }
    }
}

/// Start a span: a named scope whose duration is reported as a
/// `span.end` event when the returned guard drops. Attach extra fields
/// with [`Span::str`].
pub fn span(level: Level, name: impl Into<String>) -> Span {
    Span {
        level,
        name: name.into(),
        start: Instant::now(),
        fields: Vec::new(),
    }
}

/// Guard from [`span`]; emits its closing event on drop.
#[derive(Debug)]
#[must_use = "a span measures the scope of its guard"]
pub struct Span {
    level: Level,
    name: String,
    start: Instant,
    fields: Vec<(String, String)>,
}

impl Span {
    /// Attach a string field to the closing event.
    pub fn str(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Elapsed time since the span opened.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let mut e = event(self.level, "span.end").str("span", &self.name);
        for (k, v) in &self.fields {
            e = e.str(k, v);
        }
        e.u64("duration_us", self.start.elapsed().as_micros() as u64)
            .emit();
    }
}

/// A test sink buffering emitted lines in memory.
///
/// The sink is process-global, so tests sharing a binary must not
/// assume exclusive ownership: filter captured lines by event name.
#[derive(Debug, Clone, Default)]
pub struct Capture {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl Capture {
    /// Install a fresh capture as the global sink and return a handle
    /// to its buffer.
    pub fn install() -> Capture {
        let capture = Capture::default();
        set_sink(Box::new(CaptureWriter {
            buf: Arc::clone(&capture.buf),
        }));
        capture
    }

    /// The captured JSONL lines so far.
    pub fn lines(&self) -> Vec<String> {
        let buf = self.buf.lock().expect("capture buffer poisoned");
        String::from_utf8_lossy(&buf)
            .lines()
            .map(str::to_string)
            .collect()
    }

    /// Discard everything captured so far.
    pub fn clear(&self) {
        self.buf.lock().expect("capture buffer poisoned").clear();
    }
}

#[derive(Debug)]
struct CaptureWriter {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl Write for CaptureWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf
            .lock()
            .expect("capture buffer poisoned")
            .extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is global: serialize the tests that reconfigure it.
    fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn events_are_valid_jsonl_with_fields() {
        let _guard = sink_lock();
        let capture = Capture::install();
        event(Level::Info, "test.event")
            .str("label", "w\"1\"")
            .i64("delta", -3)
            .u64("count", 7)
            .f64("perf", 1.5)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .emit();
        let lines = capture.lines();
        assert_eq!(lines.len(), 1);
        let line = &lines[0];
        assert!(line.starts_with("{\"ts_us\":"), "{line}");
        assert!(line.contains(r#""level":"info""#), "{line}");
        assert!(line.contains(r#""event":"test.event""#), "{line}");
        assert!(line.contains(r#""label":"w\"1\"""#), "{line}");
        assert!(line.contains(r#""delta":-3"#), "{line}");
        assert!(line.contains(r#""count":7"#), "{line}");
        assert!(line.contains(r#""perf":1.5"#), "{line}");
        assert!(line.contains(r#""bad":"NaN""#), "{line}");
        assert!(line.contains(r#""ok":true"#), "{line}");
        assert!(line.ends_with('}'), "{line}");
        clear_sink();
    }

    #[test]
    fn no_sink_means_no_output_and_no_panic() {
        let _guard = sink_lock();
        clear_sink();
        event(Level::Error, "dropped").str("k", "v").emit();
    }

    #[test]
    fn min_level_filters() {
        let _guard = sink_lock();
        let capture = Capture::install();
        set_min_level(Level::Warn);
        event(Level::Info, "quiet").emit();
        event(Level::Error, "loud").emit();
        set_min_level(Level::Debug);
        let lines = capture.lines();
        assert_eq!(lines.len(), 1, "{lines:?}");
        assert!(lines[0].contains("loud"));
        clear_sink();
    }

    #[test]
    fn context_nests_and_pops() {
        let _guard = sink_lock();
        let capture = Capture::install();
        {
            let _outer = push_context("session", "s1");
            {
                let _inner = push_context("peer", "127.0.0.1:9");
                event(Level::Info, "both").emit();
            }
            event(Level::Info, "outer_only").emit();
        }
        event(Level::Info, "neither").emit();
        let lines = capture.lines();
        assert!(lines[0].contains(r#""session":"s1""#) && lines[0].contains(r#""peer":"#));
        assert!(lines[1].contains(r#""session":"s1""#) && !lines[1].contains("peer"));
        assert!(!lines[2].contains("session"));
        clear_sink();
    }

    #[test]
    fn context_is_per_thread() {
        let _guard = sink_lock();
        let capture = Capture::install();
        let _ctx = push_context("session", "main-thread");
        std::thread::spawn(|| event(Level::Info, "from.elsewhere").emit())
            .join()
            .unwrap();
        let lines = capture.lines();
        let other = lines.iter().find(|l| l.contains("from.elsewhere")).unwrap();
        assert!(!other.contains("main-thread"), "{other}");
        clear_sink();
    }

    #[test]
    fn span_reports_duration() {
        let _guard = sink_lock();
        let capture = Capture::install();
        {
            let _span = span(Level::Info, "db.save").str("path", "/tmp/x");
        }
        let lines = capture.lines();
        let line = lines.iter().find(|l| l.contains("span.end")).unwrap();
        assert!(line.contains(r#""span":"db.save""#), "{line}");
        assert!(line.contains(r#""path":"/tmp/x""#), "{line}");
        assert!(line.contains(r#""duration_us":"#), "{line}");
        clear_sink();
    }

    #[test]
    fn timestamps_are_monotonic() {
        let a = monotonic_us();
        let b = monotonic_us();
        assert!(b >= a);
    }

    #[test]
    fn events_inside_a_trace_carry_its_id() {
        let _guard = sink_lock();
        let capture = Capture::install();
        crate::trace::enable(crate::trace::RecorderConfig::default());
        let root = crate::trace::start_root(crate::trace::stage::SESSION, "t");
        let trace_id = root.context().unwrap().trace_id;
        event(Level::Info, "traced.event").emit();
        drop(root);
        crate::trace::disable();
        event(Level::Info, "untraced.event").emit();
        let lines = capture.lines();
        let traced = lines.iter().find(|l| l.contains("traced.event")).unwrap();
        assert!(
            traced.contains(&format!(r#""trace_id":"{trace_id:016x}""#)),
            "{traced}"
        );
        let bare = lines.iter().find(|l| l.contains("untraced.event")).unwrap();
        assert!(!bare.contains("trace_id"), "{bare}");
        clear_sink();
    }

    #[test]
    fn rotating_sink_rolls_over_at_line_boundaries() {
        let _guard = sink_lock();
        let dir = std::env::temp_dir().join(format!("harmony-obs-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        log_to_file_rotating(&path, 256, 2).unwrap();
        for i in 0..50 {
            event(Level::Info, "rotate.test").u64("i", i).emit();
        }
        clear_sink();
        let live = std::fs::read_to_string(&path).unwrap();
        let rotated1 = std::fs::read_to_string(dir.join("events.jsonl.1")).unwrap();
        assert!(std::path::Path::new(&dir.join("events.jsonl.2")).exists());
        assert!(
            !dir.join("events.jsonl.3").exists(),
            "keep=2 bounds the set"
        );
        // Every file holds only whole lines: no torn writes at the seam.
        for content in [&live, &rotated1] {
            assert!(content.ends_with('\n') || content.is_empty());
            for line in content.lines() {
                assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            }
        }
        // Rotation bounded the live file near the threshold.
        assert!(live.len() as u64 <= 256 + 128, "{}", live.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
