//! Distributed tracing with a flight recorder: span trees across
//! client, daemon, and executor, dependency-free.
//!
//! A *trace* is a tree of spans sharing one 64-bit trace ID; a *span*
//! is a named stage (`net.read`, `classify`, `eval`, …) with monotonic
//! start/end microseconds, a parent span ID, and an error flag. Spans
//! are recorded into a process-global **flight recorder**: a bounded
//! store that keeps the K slowest traces, every errored trace, and a
//! tail-sampled fraction of the rest, so a `TraceDump` after the fact
//! can explain where a slow tuning round spent its time.
//!
//! Tracing is **off by default** and provably inert: every entry point
//! checks one atomic and allocates nothing when disabled. Nothing in
//! this module feeds back into tuning decisions — span IDs come from a
//! private counter, never from the tuner's RNG — so trajectories are
//! bit-identical with tracing on or off.
//!
//! Context propagates two ways:
//!
//! * **Within a thread** — a thread-local stack of [`TraceContext`]s.
//!   [`child`] opens a span under the innermost context; RAII guards
//!   pop on drop, composing with [`crate::event::span`] scopes (events
//!   emitted inside a trace carry its `trace_id`).
//! * **Across threads and processes** — [`TraceContext`] is two plain
//!   `u64`s. Ship them over the wire, then [`continue_from`] on the
//!   other side; completed spans travel back via [`drain`] and are
//!   merged with [`ingest`], which rebases foreign monotonic clocks
//!   onto the local timeline.
//!
//! ```
//! use harmony_obs::trace;
//!
//! trace::enable(trace::RecorderConfig::default());
//! {
//!     let root = trace::start_root(trace::stage::SESSION, "doc");
//!     let ctx = root.context().unwrap();
//!     {
//!         let _step = trace::child(trace::stage::EVAL, "round 0");
//!     }
//!     trace::finalize_with_root(ctx.trace_id, 0);
//! }
//! let dump = trace::dump();
//! assert!(dump.iter().any(|t| t.spans.iter().any(|s| s.stage == "eval")));
//! # trace::disable();
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::monotonic_us;

/// Well-known stage tags. Stages are open-ended strings; these are the
/// ones the harmony pipeline emits, named here so call sites and the
/// CI span-name lint agree on spelling.
pub mod stage {
    /// Reading one request frame off the socket (daemon side).
    pub const NET_READ: &str = "net.read";
    /// One client-side request round trip (detail = request kind).
    pub const NET_RPC: &str = "net.rpc";
    /// Daemon-side handling of one request (detail = request kind).
    pub const SERVE: &str = "serve";
    /// Time a batch item waited before a worker claimed it.
    pub const QUEUE_WAIT: &str = "queue.wait";
    /// A worker running one batch item's objective function.
    pub const EXEC_RUN: &str = "exec.run";
    /// Measuring one proposed configuration.
    pub const EVAL: &str = "eval";
    /// Classifying a new session against the experience database.
    pub const CLASSIFY: &str = "classify";
    /// Replaying prior-run experience into a fresh session (§4.2).
    pub const WARM_START: &str = "warm_start";
    /// Handing a completed run to the write-ahead-log flusher.
    pub const WAL_APPEND: &str = "wal.append";
    /// One simplex (or engine) observe step.
    pub const SIMPLEX_STEP: &str = "simplex.step";
    /// The root span of a whole tuning session.
    pub const SESSION: &str = "session";
}

/// The two numbers that identify "where we are" in a trace: which
/// trace, and which span new children should hang off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span in this tree shares.
    pub trace_id: u64,
    /// The span that is currently open (parent for new children).
    pub span_id: u64,
}

/// One completed (or synthesized) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique within the trace (process-global counter, never 0).
    pub id: u64,
    /// Parent span ID; 0 marks the root.
    pub parent: u64,
    /// Stage tag, e.g. [`stage::CLASSIFY`].
    pub stage: String,
    /// Free-form detail (request kind, batch index, …). May be empty.
    pub detail: String,
    /// Monotonic microseconds at span start (local timeline).
    pub start_us: u64,
    /// Monotonic microseconds at span end.
    pub end_us: u64,
    /// True if the stage failed.
    pub error: bool,
}

impl SpanRecord {
    /// Span duration in microseconds (saturating).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// One retained trace: its spans, sorted by `(start_us, id)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The shared trace ID.
    pub trace_id: u64,
    /// True once the trace was finalized (root known complete).
    pub complete: bool,
    /// All recorded spans, sorted by `(start_us, id)`.
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// Earliest span start (0 for an empty trace).
    pub fn start_us(&self) -> u64 {
        self.spans.iter().map(|s| s.start_us).min().unwrap_or(0)
    }

    /// Span-extent duration: latest end minus earliest start.
    pub fn duration_us(&self) -> u64 {
        let end = self.spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        end.saturating_sub(self.start_us())
    }

    /// True if any span recorded an error.
    pub fn errored(&self) -> bool {
        self.spans.iter().any(|s| s.error)
    }
}

/// Flight-recorder retention policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity for errored + tail-sampled traces.
    pub capacity: usize,
    /// How many of the slowest traces to pin (the K in "K slowest").
    pub keep_slowest: usize,
    /// Keep 1 in N traces that are neither slow nor errored (0 = none).
    pub sample_every: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 64,
            keep_slowest: 16,
            sample_every: 8,
        }
    }
}

/// Traces being assembled outlive their session only until this many
/// are in flight; beyond it the oldest is finalized as incomplete so an
/// abandoned trace can never leak memory.
const MAX_ACTIVE: usize = 1024;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while tracing is enabled process-wide.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

struct Recorder {
    cfg: RecorderConfig,
    /// Spans of traces still being assembled, keyed by trace ID.
    active: HashMap<u64, Vec<SpanRecord>>,
    /// Trace IDs in arrival order, for bounded eviction.
    arrival: VecDeque<u64>,
    /// The K slowest finalized traces (unordered; min evicted).
    slowest: Vec<TraceRecord>,
    /// Errored + tail-sampled traces, oldest evicted first.
    ring: VecDeque<TraceRecord>,
    /// Finalized traces considered for tail sampling so far.
    considered: u64,
}

fn recorder() -> &'static Mutex<Recorder> {
    static RECORDER: OnceLock<Mutex<Recorder>> = OnceLock::new();
    RECORDER.get_or_init(|| {
        Mutex::new(Recorder {
            cfg: RecorderConfig::default(),
            active: HashMap::new(),
            arrival: VecDeque::new(),
            slowest: Vec::new(),
            ring: VecDeque::new(),
            considered: 0,
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, Recorder> {
    recorder().lock().unwrap_or_else(|e| e.into_inner())
}

/// Turn tracing on with the given retention policy, clearing anything
/// previously recorded.
pub fn enable(cfg: RecorderConfig) {
    let mut r = lock();
    r.cfg = cfg;
    r.active.clear();
    r.arrival.clear();
    r.slowest.clear();
    r.ring.clear();
    r.considered = 0;
    drop(r);
    ENABLED.store(true, Ordering::Release);
}

/// Turn tracing off. Already-retained traces stay dumpable; in-flight
/// (active) traces are discarded.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
    let mut r = lock();
    r.active.clear();
    r.arrival.clear();
}

/// Allocate a fresh non-zero trace/span ID.
///
/// IDs mix a per-process random-ish seed (wall-clock nanos) with a
/// counter through a splitmix64 finalizer, so two processes sharing a
/// daemon will not collide in practice. Nothing downstream depends on
/// their values, so this never perturbs tuning determinism.
///
/// IDs are clamped to 63 bits: the wire codec represents integers as
/// `i64`, and a top-bit-set ID would fall back to a lossy float.
pub fn new_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            ^ (std::process::id() as u64) << 32;
        AtomicU64::new(seed | 1)
    });
    let raw = next.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let mut z = raw;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z &= i64::MAX as u64;
    if z == 0 {
        0x5bd1_e995
    } else {
        z
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// The innermost trace context on this thread, if any.
pub fn current() -> Option<TraceContext> {
    if !is_enabled() {
        return None;
    }
    CURRENT.with(|c| c.borrow().last().copied())
}

/// An open span. Records itself into the flight recorder and pops the
/// thread-local context when dropped. Inert (all methods no-ops) when
/// tracing is disabled or there was no context to attach to.
#[derive(Debug)]
#[must_use = "a trace span measures the scope of its guard"]
pub struct TraceSpan {
    inner: Option<SpanInner>,
}

#[derive(Debug)]
struct SpanInner {
    ctx: TraceContext,
    parent: u64,
    stage: String,
    detail: String,
    start_us: u64,
    error: bool,
}

impl TraceSpan {
    fn open(trace_id: u64, parent: u64, stage: &str, detail: &str) -> TraceSpan {
        let ctx = TraceContext {
            trace_id,
            span_id: new_id(),
        };
        CURRENT.with(|c| c.borrow_mut().push(ctx));
        TraceSpan {
            inner: Some(SpanInner {
                ctx,
                parent,
                stage: stage.to_string(),
                detail: detail.to_string(),
                start_us: monotonic_us(),
                error: false,
            }),
        }
    }

    /// The context children should inherit; `None` if inert.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|i| i.ctx)
    }

    /// Flag the span (and therefore its trace) as errored.
    pub fn mark_error(&mut self) {
        if let Some(inner) = &mut self.inner {
            inner.error = true;
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        // Pop by identity rather than strict LIFO so a guard moved to
        // another thread degrades gracefully instead of corrupting an
        // unrelated stack.
        CURRENT.with(|c| {
            let mut stack = c.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|x| *x == inner.ctx) {
                stack.remove(pos);
            }
        });
        record_span(
            inner.ctx.trace_id,
            inner.ctx.span_id,
            inner.parent,
            &inner.stage,
            &inner.detail,
            inner.start_us,
            monotonic_us(),
            inner.error,
        );
    }
}

/// Start a brand-new trace rooted at a span with the given stage.
pub fn start_root(stage: &str, detail: &str) -> TraceSpan {
    if !is_enabled() {
        return TraceSpan { inner: None };
    }
    TraceSpan::open(new_id(), 0, stage, detail)
}

/// Open a span continuing a trace whose context arrived from elsewhere
/// (another thread or over the wire).
pub fn continue_from(ctx: TraceContext, stage: &str, detail: &str) -> TraceSpan {
    if !is_enabled() || ctx.trace_id == 0 {
        return TraceSpan { inner: None };
    }
    TraceSpan::open(ctx.trace_id, ctx.span_id, stage, detail)
}

/// Open a child of the innermost span on this thread; inert when no
/// trace is current.
pub fn child(stage: &str, detail: &str) -> TraceSpan {
    match current() {
        Some(ctx) => TraceSpan::open(ctx.trace_id, ctx.span_id, stage, detail),
        None => TraceSpan { inner: None },
    }
}

/// Record a completed span directly, with explicit IDs and times.
///
/// This is the escape hatch for stages measured before their trace is
/// known (the daemon's `net.read` happens before the frame is decoded)
/// and for worker threads recording against a captured context.
#[allow(clippy::too_many_arguments)]
pub fn record_span(
    trace_id: u64,
    id: u64,
    parent: u64,
    stage: &str,
    detail: &str,
    start_us: u64,
    end_us: u64,
    error: bool,
) {
    if !is_enabled() || trace_id == 0 {
        return;
    }
    let rec = SpanRecord {
        id,
        parent,
        stage: stage.to_string(),
        detail: detail.to_string(),
        start_us,
        end_us,
        error,
    };
    let mut r = lock();
    push_active(&mut r, trace_id, vec![rec]);
}

fn push_active(r: &mut Recorder, trace_id: u64, spans: Vec<SpanRecord>) {
    if !r.active.contains_key(&trace_id) {
        r.arrival.push_back(trace_id);
        // Bounded assembly: evict the oldest in-flight trace as
        // incomplete rather than growing without limit.
        while r.active.len() >= MAX_ACTIVE {
            let Some(oldest) = r.arrival.pop_front() else {
                break;
            };
            if oldest == trace_id {
                r.arrival.push_back(oldest);
                continue;
            }
            if let Some(spans) = r.active.remove(&oldest) {
                finalize_spans(r, oldest, spans, false);
            }
        }
    }
    r.active.entry(trace_id).or_default().extend(spans);
}

/// Merge spans recorded elsewhere into a trace, skipping span IDs
/// already present. With `rebase`, the batch's timestamps are shifted
/// as one block so its latest end lands at the local "now" — foreign
/// monotonic clocks share no epoch, so durations are preserved exactly
/// while absolute placement becomes approximate.
pub fn ingest(trace_id: u64, mut spans: Vec<SpanRecord>, rebase: bool) {
    if !is_enabled() || trace_id == 0 || spans.is_empty() {
        return;
    }
    if rebase {
        let max_end = spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        let delta = monotonic_us() as i64 - max_end as i64;
        for s in &mut spans {
            s.start_us = (s.start_us as i64 + delta).max(0) as u64;
            s.end_us = (s.end_us as i64 + delta).max(0) as u64;
        }
    }
    let mut r = lock();
    let existing: Vec<u64> = r
        .active
        .get(&trace_id)
        .map(|v| v.iter().map(|s| s.id).collect())
        .unwrap_or_default();
    spans.retain(|s| !existing.contains(&s.id));
    if spans.is_empty() {
        return;
    }
    push_active(&mut r, trace_id, spans);
}

/// Remove and return every span recorded so far for a trace. The
/// client calls this before each request to piggyback its completed
/// spans onto the wire.
pub fn drain(trace_id: u64) -> Vec<SpanRecord> {
    if !is_enabled() || trace_id == 0 {
        return Vec::new();
    }
    let mut r = lock();
    r.active
        .get_mut(&trace_id)
        .map(std::mem::take)
        .unwrap_or_default()
}

/// Finalize a trace: move it out of assembly and through the retention
/// policy. If no root span (parent == 0) was recorded — the usual case
/// for a server finalizing a client-owned trace — one is synthesized
/// covering the span extent, with ID `root_hint` (or a fresh ID when
/// the hint is 0).
pub fn finalize_with_root(trace_id: u64, root_hint: u64) {
    if !is_enabled() || trace_id == 0 {
        return;
    }
    let mut r = lock();
    let Some(spans) = r.active.remove(&trace_id) else {
        return;
    };
    finalize_spans_with_hint(&mut r, trace_id, spans, true, root_hint);
}

/// Drop an in-flight trace without retaining it (client side, after
/// the daemon took ownership of the session trace).
pub fn discard(trace_id: u64) {
    let mut r = lock();
    r.active.remove(&trace_id);
}

fn finalize_spans(r: &mut Recorder, trace_id: u64, spans: Vec<SpanRecord>, complete: bool) {
    finalize_spans_with_hint(r, trace_id, spans, complete, 0);
}

fn finalize_spans_with_hint(
    r: &mut Recorder,
    trace_id: u64,
    mut spans: Vec<SpanRecord>,
    complete: bool,
    root_hint: u64,
) {
    if spans.is_empty() {
        return;
    }
    if !spans.iter().any(|s| s.parent == 0) {
        // Synthesize a root covering the extent. Prefer the hint the
        // caller carried over the wire, then the parent ID orphaned
        // spans already point at, so children attach to it.
        let ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        let mut missing: Vec<u64> = spans
            .iter()
            .map(|s| s.parent)
            .filter(|p| *p != 0 && !ids.contains(p))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        let root_id = if root_hint != 0 && !ids.contains(&root_hint) {
            root_hint
        } else if missing.len() == 1 {
            missing[0]
        } else {
            new_id()
        };
        let start = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = spans.iter().map(|s| s.end_us).max().unwrap_or(0);
        spans.push(SpanRecord {
            id: root_id,
            parent: 0,
            stage: stage::SESSION.to_string(),
            detail: String::new(),
            start_us: start,
            end_us: end,
            error: false,
        });
    }
    spans.sort_by_key(|s| (s.start_us, s.id));
    let rec = TraceRecord {
        trace_id,
        complete,
        spans,
    };
    retain(r, rec);
}

fn retain(r: &mut Recorder, rec: TraceRecord) {
    if rec.errored() {
        if r.ring.len() >= r.cfg.capacity {
            r.ring.pop_front();
        }
        r.ring.push_back(rec);
        return;
    }
    if r.cfg.keep_slowest > 0 {
        if r.slowest.len() < r.cfg.keep_slowest {
            r.slowest.push(rec);
            return;
        }
        let (min_idx, min_dur) = r
            .slowest
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.duration_us()))
            .min_by_key(|(_, d)| *d)
            .expect("keep_slowest > 0 means slowest is non-empty");
        if rec.duration_us() > min_dur {
            r.slowest[min_idx] = rec;
            return;
        }
    }
    r.considered += 1;
    if r.cfg.sample_every > 0 && r.considered % r.cfg.sample_every == 0 {
        if r.ring.len() >= r.cfg.capacity {
            r.ring.pop_front();
        }
        r.ring.push_back(rec);
    }
}

/// Snapshot everything the flight recorder holds: retained traces plus
/// still-active (incomplete) ones, sorted by `(start_us, trace_id)`.
pub fn dump() -> Vec<TraceRecord> {
    let r = lock();
    // A trace can appear both retained and active (a straggler span
    // recorded after finalize); merge per trace ID, deduplicating by
    // span ID, so the dump shows one coherent tree per trace.
    let mut merged: HashMap<u64, TraceRecord> = HashMap::new();
    let retained = r.slowest.iter().chain(r.ring.iter()).cloned();
    let active = r
        .active
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .map(|(id, spans)| TraceRecord {
            trace_id: *id,
            complete: false,
            spans: spans.clone(),
        });
    for rec in retained.chain(active) {
        match merged.entry(rec.trace_id) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(rec);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let existing = e.get_mut();
                existing.complete |= rec.complete;
                let seen: Vec<u64> = existing.spans.iter().map(|s| s.id).collect();
                existing
                    .spans
                    .extend(rec.spans.into_iter().filter(|s| !seen.contains(&s.id)));
            }
        }
    }
    drop(r);
    let mut out: Vec<TraceRecord> = merged.into_values().collect();
    for t in &mut out {
        t.spans.sort_by_key(|s| (s.start_us, s.id));
    }
    out.sort_by_key(|t| (t.start_us(), t.trace_id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The recorder is process-global: serialize tests that reset it.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _guard = test_lock();
        disable();
        let mut root = start_root(stage::SESSION, "x");
        assert!(root.context().is_none());
        root.mark_error();
        drop(root);
        assert!(current().is_none());
        let c = child(stage::EVAL, "");
        assert!(c.context().is_none());
        drop(c);
        assert_eq!(drain(42), Vec::new());
    }

    #[test]
    fn spans_nest_and_record_a_tree() {
        let _guard = test_lock();
        enable(RecorderConfig::default());
        let trace_id;
        {
            let root = start_root(stage::SESSION, "t");
            let root_ctx = root.context().unwrap();
            trace_id = root_ctx.trace_id;
            {
                let mid = child(stage::CLASSIFY, "");
                let mid_ctx = mid.context().unwrap();
                assert_eq!(mid_ctx.trace_id, trace_id);
                assert_eq!(current(), Some(mid_ctx));
                let leaf = child(stage::EVAL, "round 0");
                drop(leaf);
                drop(mid);
            }
            assert_eq!(current(), Some(root_ctx));
        }
        finalize_with_root(trace_id, 0);
        let dump = dump();
        let t = dump.iter().find(|t| t.trace_id == trace_id).unwrap();
        assert!(t.complete);
        assert_eq!(t.spans.len(), 3);
        let root = t.spans.iter().find(|s| s.parent == 0).unwrap();
        assert_eq!(root.stage, stage::SESSION);
        let mid = t.spans.iter().find(|s| s.stage == stage::CLASSIFY).unwrap();
        assert_eq!(mid.parent, root.id);
        let leaf = t.spans.iter().find(|s| s.stage == stage::EVAL).unwrap();
        assert_eq!(leaf.parent, mid.id);
        assert_eq!(leaf.detail, "round 0");
        disable();
    }

    #[test]
    fn finalize_synthesizes_a_root_for_orphan_spans() {
        let _guard = test_lock();
        enable(RecorderConfig::default());
        let trace_id = new_id();
        let root_id = new_id();
        record_span(trace_id, new_id(), root_id, stage::EVAL, "", 10, 30, false);
        record_span(
            trace_id,
            new_id(),
            root_id,
            stage::NET_RPC,
            "Fetch",
            5,
            9,
            false,
        );
        finalize_with_root(trace_id, root_id);
        let dump = dump();
        let t = dump.iter().find(|t| t.trace_id == trace_id).unwrap();
        let root = t.spans.iter().find(|s| s.parent == 0).unwrap();
        assert_eq!(
            root.id, root_id,
            "synthesized root adopts the orphans' parent"
        );
        assert_eq!(root.start_us, 5);
        assert_eq!(root.end_us, 30);
        assert_eq!(t.duration_us(), 25);
        disable();
    }

    #[test]
    fn drain_then_ingest_round_trips_without_duplicates() {
        let _guard = test_lock();
        enable(RecorderConfig::default());
        let trace_id = new_id();
        record_span(trace_id, 7, 1, stage::EVAL, "", 10, 20, false);
        let shipped = drain(trace_id);
        assert_eq!(shipped.len(), 1);
        assert!(drain(trace_id).is_empty(), "drain removes what it returns");
        ingest(trace_id, shipped.clone(), false);
        ingest(trace_id, shipped, false); // replay: deduplicated by span id
        finalize_with_root(trace_id, 0);
        let t = dump().into_iter().find(|t| t.trace_id == trace_id).unwrap();
        let evals = t.spans.iter().filter(|s| s.stage == stage::EVAL).count();
        assert_eq!(evals, 1);
        disable();
    }

    #[test]
    fn ingest_rebases_foreign_clocks_preserving_durations() {
        let _guard = test_lock();
        enable(RecorderConfig::default());
        let trace_id = new_id();
        // A "foreign" clock far in the future relative to ours.
        let spans = vec![SpanRecord {
            id: 3,
            parent: 1,
            stage: stage::EVAL.to_string(),
            detail: String::new(),
            start_us: 1_000_000_000,
            end_us: 1_000_000_700,
            error: false,
        }];
        ingest(trace_id, spans, true);
        finalize_with_root(trace_id, 0);
        let t = dump().into_iter().find(|t| t.trace_id == trace_id).unwrap();
        let s = t.spans.iter().find(|s| s.stage == stage::EVAL).unwrap();
        assert_eq!(s.duration_us(), 700);
        assert!(s.end_us <= monotonic_us());
        disable();
    }

    #[test]
    fn recorder_keeps_slowest_errored_and_sampled() {
        let _guard = test_lock();
        enable(RecorderConfig {
            capacity: 8,
            keep_slowest: 2,
            sample_every: 4,
        });
        // 10 traces with increasing durations; trace 3 errored.
        for i in 0..10u64 {
            let trace_id = 1000 + i;
            record_span(
                trace_id,
                new_id(),
                0,
                stage::SESSION,
                "",
                0,
                (i + 1) * 100,
                i == 3,
            );
            finalize_with_root(trace_id, 0);
        }
        let dump = dump();
        let ids: Vec<u64> = dump.iter().map(|t| t.trace_id).collect();
        assert!(ids.contains(&1003), "errored trace retained: {ids:?}");
        // The two slowest non-errored: 1009 (1000us) and 1008 (900us).
        assert!(ids.contains(&1009), "slowest retained: {ids:?}");
        assert!(ids.contains(&1008), "second slowest retained: {ids:?}");
        // Not everything is kept.
        assert!(dump.len() < 10, "{ids:?}");
        disable();
    }

    #[test]
    fn ids_are_nonzero_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = new_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn active_traces_appear_incomplete_in_dump() {
        let _guard = test_lock();
        enable(RecorderConfig::default());
        let trace_id = new_id();
        record_span(trace_id, new_id(), 0, stage::SESSION, "", 0, 50, false);
        let t = dump().into_iter().find(|t| t.trace_id == trace_id).unwrap();
        assert!(!t.complete);
        discard(trace_id);
        assert!(!dump().iter().any(|t| t.trace_id == trace_id));
        disable();
    }
}
