#![warn(missing_docs)]

//! Observability substrate for the harmony workspace: structured
//! events and a process-global metrics registry, dependency-free and
//! cheap enough for the tuning hot paths.
//!
//! Two halves:
//!
//! * [`mod@event`] — structured JSONL logging. Build an event with
//!   [`event::event`], attach typed fields, and emit; per-thread
//!   context ([`event::push_context`]) rides along on every event, and
//!   [`event::span`] measures scopes. Nothing is written (or even
//!   allocated) until a sink is installed, so instrumentation can stay
//!   in release builds.
//! * [`metrics`] — atomic [`Counter`](metrics::Counter)s,
//!   [`Gauge`](metrics::Gauge)s, and fixed-bucket
//!   [`Histogram`](metrics::Histogram)s in a get-or-create
//!   [`Registry`](metrics::Registry), with Prometheus-style text
//!   exposition via [`metrics::Registry::encode`]. The
//!   [`metrics::global`] registry is what `harmony-net`'s `Stats`
//!   message serves over the wire.
//! * [`trace`] — distributed tracing: span trees with trace/span/parent
//!   IDs and monotonic timestamps, a thread-local current-span context
//!   that composes with [`event::span`], and a bounded flight recorder
//!   retaining the slowest and errored traces for post-hoc dumps.
//!   Events emitted inside a trace carry its `trace_id`, and histogram
//!   buckets record exemplar trace IDs.
//!
//! ```
//! use harmony_obs::event::{event, Level};
//! use harmony_obs::metrics::{global, LATENCY_SECONDS};
//!
//! // Counters work with no setup; events need a sink to go anywhere.
//! let sessions = global().counter("doc_sessions_total", "Sessions served.");
//! sessions.inc();
//! event(Level::Info, "session.start").str("label", "w1").emit();
//!
//! let latency = global().histogram("doc_step_seconds", "Step time.", LATENCY_SECONDS);
//! let _timer = latency.start_timer();
//! assert!(global().encode().contains("doc_sessions_total 1"));
//! ```

pub mod event;
pub mod metrics;
pub mod trace;

pub use event::{event, push_context, span, Level};
pub use metrics::global;
