//! Process-global metrics: atomic counters, gauges, and fixed-bucket
//! histograms behind a registry with Prometheus-style text exposition.
//!
//! Registration is get-or-create and keyed by `(name, labels)`: asking
//! for the same metric twice returns the same handle, so call sites can
//! register lazily without coordinating. Handles are `Arc`s whose hot
//! path is lock-free — the registry lock is touched only at
//! registration and encoding time.
//!
//! ```
//! use harmony_obs::metrics::{Registry, LATENCY_SECONDS};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total", "Requests served.");
//! let latency = registry.histogram("request_seconds", "Latency.", LATENCY_SECONDS);
//! requests.inc();
//! {
//!     let _timer = latency.start_timer(); // observes on drop
//! }
//! let text = registry.encode();
//! assert!(text.contains("requests_total 1"));
//! assert!(text.contains("request_seconds_count 1"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// Default buckets for latency histograms, in seconds: 1µs to 10s,
/// roughly logarithmic. Covers everything from a loopback frame
/// round-trip to a slow external measurement.
pub const LATENCY_SECONDS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2,
    5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrement by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `f64` observations.
///
/// Buckets are cumulative upper bounds (Prometheus `le` semantics); an
/// implicit `+Inf` bucket catches everything else. Observation is a
/// couple of relaxed atomic operations — safe on any hot path.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
    /// Per-bucket exemplars: the trace ID and value of the most recent
    /// observation that landed in the bucket while a trace was current
    /// (0 = no exemplar yet). Lets a fat bucket link to a recorded
    /// trace in the flight recorder.
    exemplar_traces: Vec<AtomicU64>,
    exemplar_values: Vec<AtomicU64>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        let counts: Vec<AtomicU64> = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        let exemplar_traces = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        let exemplar_values = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: bounds.to_vec(),
            counts,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
            exemplar_traces,
            exemplar_values,
        }
    }

    /// Record one observation. Non-finite values land in the `+Inf`
    /// bucket and are excluded from the sum.
    pub fn observe(&self, v: f64) {
        let idx = if v.is_finite() {
            self.bounds.partition_point(|b| *b < v)
        } else {
            self.bounds.len()
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        if let Some(ctx) = crate::trace::current() {
            self.exemplar_traces[idx].store(ctx.trace_id, Ordering::Relaxed);
            self.exemplar_values[idx].store(v.to_bits(), Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            let mut old = self.sum_bits.load(Ordering::Relaxed);
            loop {
                let new = (f64::from_bits(old) + v).to_bits();
                match self.sum_bits.compare_exchange_weak(
                    old,
                    new,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(o) => old = o,
                }
            }
        }
    }

    /// Start timing; the elapsed wall time in seconds is observed when
    /// the returned guard drops.
    pub fn start_timer(&self) -> HistogramTimer<'_> {
        HistogramTimer {
            histogram: self,
            start: Instant::now(),
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative per-bucket counts, `(upper_bound, count ≤ bound)`
    /// pairs ending with the `+Inf` bucket (bound `f64::INFINITY`).
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        let mut cumulative = 0u64;
        let mut out = Vec::with_capacity(self.counts.len());
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cumulative));
        }
        out
    }

    /// Per-bucket exemplars aligned with [`buckets`](Self::buckets):
    /// `Some((trace_id, observed_value))` for buckets that caught an
    /// observation made inside a trace.
    pub fn exemplars(&self) -> Vec<Option<(u64, f64)>> {
        self.exemplar_traces
            .iter()
            .zip(&self.exemplar_values)
            .map(|(t, v)| {
                let trace = t.load(Ordering::Relaxed);
                if trace == 0 {
                    None
                } else {
                    Some((trace, f64::from_bits(v.load(Ordering::Relaxed))))
                }
            })
            .collect()
    }
}

/// Guard from [`Histogram::start_timer`]: observes the elapsed seconds
/// when dropped.
#[derive(Debug)]
pub struct HistogramTimer<'a> {
    histogram: &'a Histogram,
    start: Instant,
}

impl Drop for HistogramTimer<'_> {
    fn drop(&mut self) {
        self.histogram.observe(self.start.elapsed().as_secs_f64());
    }
}

#[derive(Debug, Clone)]
enum Kind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Kind {
    fn type_name(&self) -> &'static str {
        match self {
            Kind::Counter(_) => "counter",
            Kind::Gauge(_) => "gauge",
            Kind::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    kind: Kind,
}

type MetricKey = (String, Vec<(String, String)>);

/// A collection of named metrics.
///
/// Most code uses the process-wide [`global`] registry; a private
/// `Registry::new()` exists for tests that need isolation.
#[derive(Debug, Default)]
pub struct Registry {
    entries: RwLock<BTreeMap<MetricKey, Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Get or register a counter carrying fixed labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || {
            Kind::Counter(Arc::new(Counter::default()))
        }) {
            Kind::Counter(c) => c,
            other => mismatch(name, "counter", &other),
        }
    }

    /// Get or register an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Get or register a gauge carrying fixed labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || {
            Kind::Gauge(Arc::new(Gauge::default()))
        }) {
            Kind::Gauge(g) => g,
            other => mismatch(name, "gauge", &other),
        }
    }

    /// Get or register an unlabelled histogram with the given bucket
    /// upper bounds (strictly ascending; `+Inf` is implicit).
    pub fn histogram(&self, name: &str, help: &str, buckets: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, buckets, &[])
    }

    /// Get or register a histogram carrying fixed labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        buckets: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || {
            Kind::Histogram(Arc::new(Histogram::new(buckets)))
        }) {
            Kind::Histogram(h) => h,
            other => mismatch(name, "histogram", &other),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Kind,
    ) -> Kind {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let key: MetricKey = (
            name.to_string(),
            labels
                .iter()
                .map(|(k, v)| {
                    assert!(valid_name(k), "invalid label name {k:?}");
                    (k.to_string(), v.to_string())
                })
                .collect(),
        );
        if let Some(entry) = self
            .entries
            .read()
            .expect("metrics registry poisoned")
            .get(&key)
        {
            return entry.kind.clone();
        }
        let mut entries = self.entries.write().expect("metrics registry poisoned");
        entries
            .entry(key)
            .or_insert_with(|| Entry {
                help: help.to_string(),
                kind: make(),
            })
            .kind
            .clone()
    }

    /// Number of registered metric series.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("metrics registry poisoned")
            .len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encode every metric in the Prometheus text exposition format.
    ///
    /// Series sharing a name (same metric, different labels) are grouped
    /// under one `# HELP`/`# TYPE` header; histograms expand into
    /// cumulative `_bucket{le="…"}` series plus `_sum` and `_count`.
    pub fn encode(&self) -> String {
        let entries = self.entries.read().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for ((name, labels), entry) in entries.iter() {
            if last_name != Some(name.as_str()) {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                escape_help(&mut out, &entry.help);
                out.push('\n');
                out.push_str("# TYPE ");
                out.push_str(name);
                out.push(' ');
                out.push_str(entry.kind.type_name());
                out.push('\n');
                last_name = Some(name.as_str());
            }
            match &entry.kind {
                Kind::Counter(c) => {
                    write_series(&mut out, name, labels, None, &c.get().to_string());
                }
                Kind::Gauge(g) => {
                    write_series(&mut out, name, labels, None, &g.get().to_string());
                }
                Kind::Histogram(h) => {
                    let exemplars = h.exemplars();
                    for (i, (bound, cumulative)) in h.buckets().into_iter().enumerate() {
                        let le = if bound.is_finite() {
                            format_f64(bound)
                        } else {
                            "+Inf".to_string()
                        };
                        let mut value = cumulative.to_string();
                        if let Some(Some((trace_id, observed))) = exemplars.get(i) {
                            // OpenMetrics-style exemplar: links the
                            // bucket to a flight-recorder trace.
                            value.push_str(&format!(
                                " # {{trace_id=\"{trace_id:016x}\"}} {}",
                                format_f64(*observed)
                            ));
                        }
                        write_series(
                            &mut out,
                            &format!("{name}_bucket"),
                            labels,
                            Some(("le", &le)),
                            &value,
                        );
                    }
                    write_series(
                        &mut out,
                        &format!("{name}_sum"),
                        labels,
                        None,
                        &format_f64(h.sum()),
                    );
                    write_series(
                        &mut out,
                        &format!("{name}_count"),
                        labels,
                        None,
                        &h.count().to_string(),
                    );
                }
            }
        }
        out
    }
}

/// The process-wide registry every instrumented crate shares.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn mismatch(name: &str, wanted: &str, got: &Kind) -> ! {
    panic!(
        "metric {name:?} already registered as a {}, requested as a {wanted}",
        got.type_name()
    );
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn write_series(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label(out, v);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn escape_label(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// HELP text escaping per the Prometheus text format: backslash and
/// newline only (quotes are legal in help text).
fn escape_help(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Shortest-round-trip float formatting (Prometheus accepts any valid
/// float literal).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_count() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g", "a gauge");
        g.set(7);
        g.dec();
        g.add(-2);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn registration_is_get_or_create() {
        let r = Registry::new();
        let a = r.counter("dup_total", "first");
        let b = r.counter("dup_total", "second help is ignored");
        a.inc();
        assert_eq!(b.get(), 1, "same handle behind both registrations");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labelled_series_are_distinct() {
        let r = Registry::new();
        let hit = r.counter_with("ws_total", "warm starts", &[("result", "hit")]);
        let miss = r.counter_with("ws_total", "warm starts", &[("result", "miss")]);
        hit.inc();
        hit.inc();
        miss.inc();
        assert_eq!(hit.get(), 2);
        assert_eq!(miss.get(), 1);
        let text = r.encode();
        assert!(text.contains("ws_total{result=\"hit\"} 2"), "{text}");
        assert!(text.contains("ws_total{result=\"miss\"} 1"), "{text}");
        // One header for the shared name.
        assert_eq!(text.matches("# TYPE ws_total counter").count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("twice", "as counter");
        r.gauge("twice", "as gauge");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        Registry::new().counter("no spaces", "help");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency", &[0.1, 1.0, 10.0]);
        for v in [0.05, 0.5, 0.5, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 56.05).abs() < 1e-9);
        assert_eq!(
            h.buckets(),
            vec![(0.1, 1), (1.0, 3), (10.0, 4), (f64::INFINITY, 5)]
        );
        let text = r.encode();
        assert!(text.contains("lat_seconds_bucket{le=\"0.1\"} 1"), "{text}");
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("lat_seconds_count 5"), "{text}");
    }

    #[test]
    fn histogram_boundary_lands_in_its_bucket() {
        let h = Histogram::new(&[1.0, 2.0]);
        h.observe(1.0); // le="1" includes exactly 1.0
        assert_eq!(h.buckets()[0], (1.0, 1));
    }

    #[test]
    fn histogram_ignores_non_finite_sums() {
        let h = Histogram::new(&[1.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 0.0);
        assert_eq!(h.buckets(), vec![(1.0, 0), (f64::INFINITY, 2)]);
    }

    #[test]
    fn timer_observes_on_drop() {
        let h = Histogram::new(&[1000.0]);
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 0.0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        let c = r.counter("conc_total", "hammered");
        let h = r.histogram("conc_seconds", "hammered", &[0.5]);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(if i % 2 == 0 { 0.25 } else { 0.75 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.buckets(), vec![(0.5, 4000), (f64::INFINITY, 8000)]);
        assert!((h.sum() - 4000.0).abs() < 1e-6);
    }

    #[test]
    fn exposition_groups_and_sorts() {
        let r = Registry::new();
        r.counter("b_total", "second").inc();
        r.gauge("a_gauge", "first").set(3);
        let text = r.encode();
        let a = text.find("a_gauge").unwrap();
        let b = text.find("b_total").unwrap();
        assert!(a < b, "series are name-sorted:\n{text}");
        assert!(text.contains("# HELP a_gauge first"));
        assert!(text.contains("# TYPE a_gauge gauge"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with("esc_total", "h", &[("msg", "a\"b\\c\nd")])
            .inc();
        let text = r.encode();
        assert!(
            text.contains("esc_total{msg=\"a\\\"b\\\\c\\nd\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn help_text_is_escaped() {
        // Per the text-format spec, HELP escapes backslash and newline
        // (a raw newline would terminate the comment mid-help and make
        // the next fragment parse as a bogus series).
        let r = Registry::new();
        r.counter("esc_help_total", "line one\nline two \\ done")
            .inc();
        let text = r.encode();
        assert!(
            text.contains("# HELP esc_help_total line one\\nline two \\\\ done\n"),
            "{text}"
        );
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("esc_help_total"),
                "help newline leaked into the exposition: {line:?}"
            );
        }
    }

    #[test]
    fn histogram_buckets_carry_exemplar_trace_ids() {
        let r = Registry::new();
        let h = r.histogram("exm_seconds", "latency", &[1.0, 10.0]);
        h.observe(0.5); // outside any trace: no exemplar
        assert!(h.exemplars().iter().all(Option::is_none));
        crate::trace::enable(crate::trace::RecorderConfig::default());
        let root = crate::trace::start_root(crate::trace::stage::SESSION, "exm");
        let trace_id = root.context().unwrap().trace_id;
        h.observe(5.0);
        drop(root);
        crate::trace::disable();
        let exemplars = h.exemplars();
        assert_eq!(exemplars[0], None);
        assert_eq!(exemplars[1], Some((trace_id, 5.0)));
        let text = r.encode();
        let expected =
            format!("exm_seconds_bucket{{le=\"10\"}} 2 # {{trace_id=\"{trace_id:016x}\"}} 5");
        assert!(text.contains(&expected), "{text}");
        // Untraced buckets render exactly as before.
        assert!(text.contains("exm_seconds_bucket{le=\"1\"} 1\n"), "{text}");
    }
}
