//! Terminal bar/series charts for the figure regenerators.
//!
//! The paper's figures are bar and line charts; rendering an ASCII
//! equivalent next to the numeric tables makes the regenerated output
//! directly comparable to the publication at a glance.

/// Render a horizontal bar chart. Bars scale to `width` characters at the
/// maximum value; each row is `label | ███… value`.
pub fn bar_chart(labels: &[String], values: &[f64], width: usize) -> String {
    assert_eq!(
        labels.len(),
        values.len(),
        "bar_chart: label/value mismatch"
    );
    if values.is_empty() {
        return String::new();
    }
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, &v) in labels.iter().zip(values) {
        let filled = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:>label_w$} |{}{} {v:.2}\n",
            "#".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Render grouped bars: one row per label, one bar per series, series
/// tagged by the single-character markers in `series_marks`.
pub fn grouped_bar_chart(
    labels: &[String],
    series: &[Vec<f64>],
    series_marks: &[char],
    width: usize,
) -> String {
    assert_eq!(series.len(), series_marks.len(), "one marker per series");
    for s in series {
        assert_eq!(s.len(), labels.len(), "series length must match labels");
    }
    let max = series
        .iter()
        .flatten()
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-12);
    let label_w = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (i, label) in labels.iter().enumerate() {
        for (s, &mark) in series.iter().zip(series_marks) {
            let v = s[i];
            let filled = ((v / max) * width as f64).round().max(0.0) as usize;
            out.push_str(&format!(
                "{label:>label_w$} |{} {v:.2}\n",
                mark.to_string().repeat(filled.min(width)),
            ));
        }
        out.push('\n');
    }
    out
}

/// Render an x/y series as a scatter line panel of `height` rows; x values
/// are assumed ascending.
pub fn series_panel(xs: &[f64], ys: &[f64], width: usize, height: usize) -> String {
    assert_eq!(xs.len(), ys.len(), "series_panel: x/y mismatch");
    if xs.is_empty() || height == 0 || width == 0 {
        return String::new();
    }
    let (xmin, xmax) = (xs[0], *xs.last().expect("non-empty"));
    let ymin = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let ymax = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let yspan = (ymax - ymin).max(1e-12);
    let xspan = (xmax - xmin).max(1e-12);
    let mut grid = vec![vec![' '; width]; height];
    for (&x, &y) in xs.iter().zip(ys) {
        let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let row = (((ymax - y) / yspan) * (height - 1) as f64).round() as usize;
        grid[row.min(height - 1)][col.min(width - 1)] = '*';
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{ymax:>8.1} ")
        } else if r == height - 1 {
            format!("{ymin:>8.1} ")
        } else {
            " ".repeat(9)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{} +{}\n", " ".repeat(8), "-".repeat(width)));
    out.push_str(&format!(
        "{}{:<10.1}{:>width$.1}\n",
        " ".repeat(10),
        xmin,
        xmax,
        width = width - 10
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_scales_to_max() {
        let c = bar_chart(&["a".into(), "bb".into()], &[10.0, 5.0], 10);
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("##########"), "{c}");
        assert!(lines[1].contains("#####"), "{c}");
        assert!(!lines[1].contains("######"), "{c}");
        // Labels right-aligned to common width.
        assert!(lines[0].starts_with(" a |"));
        assert!(lines[1].starts_with("bb |"));
    }

    #[test]
    fn bar_chart_handles_zeroes_and_empty() {
        assert_eq!(bar_chart(&[], &[], 10), "");
        let c = bar_chart(&["z".into()], &[0.0], 10);
        assert!(c.contains("| "), "{c}");
    }

    #[test]
    fn grouped_bars_emit_one_bar_per_series() {
        let c = grouped_bar_chart(
            &["n=1".into(), "n=5".into()],
            &[vec![4.0, 8.0], vec![2.0, 6.0]],
            &['#', '+'],
            8,
        );
        assert_eq!(c.matches('\n').count(), 6); // 2 labels × 2 series + 2 blanks
        assert!(c.contains('#') && c.contains('+'));
    }

    #[test]
    fn series_panel_places_extremes() {
        let p = series_panel(&[0.0, 1.0, 2.0], &[1.0, 3.0, 2.0], 20, 5);
        let lines: Vec<&str> = p.lines().collect();
        // Max y labelled on the first row, min on the last grid row.
        assert!(lines[0].trim_start().starts_with("3.0"));
        assert!(lines[4].trim_start().starts_with("1.0"));
        assert_eq!(p.matches('*').count(), 3);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_inputs_panic() {
        let _ = bar_chart(&["a".into()], &[1.0, 2.0], 5);
    }
}
