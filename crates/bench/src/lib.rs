//! Shared helpers for the per-table/per-figure experiment regenerators.
//!
//! Each binary under `src/bin/` reproduces one table or figure from the
//! paper (see DESIGN.md §4 for the index); this library holds the plumbing
//! they share so each binary reads like the experiment it encodes.

pub mod chart;

use harmony::objective::Objective;
use harmony::prelude::*;
use harmony::tuner::TrainingMode;
use harmony_space::Configuration;
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};

/// Iteration budget used for web-system tuning runs across experiments.
pub const WEB_TUNING_BUDGET: usize = 120;

/// Objective adapter over a [`WebServiceSystem`].
pub struct WebObjective {
    sys: WebServiceSystem,
}

impl WebObjective {
    /// Analytic-fidelity web system with the paper-like run-to-run noise.
    pub fn new(mix: WorkloadMix, noise: f64, seed: u64) -> Self {
        WebObjective {
            sys: WebServiceSystem::new(mix, Fidelity::Analytic, noise, seed),
        }
    }

    /// DES-fidelity web system (intrinsically noisy, slower).
    pub fn des(mix: WorkloadMix, seed: u64) -> Self {
        WebObjective {
            sys: WebServiceSystem::new(mix, Fidelity::Des, 0.0, seed),
        }
    }

    /// Underlying system.
    pub fn system(&self) -> &WebServiceSystem {
        &self.sys
    }

    /// Mutable underlying system.
    pub fn system_mut(&mut self) -> &mut WebServiceSystem {
        &mut self.sys
    }

    /// Noise-free ground-truth WIPS of a configuration.
    pub fn clean(&self, cfg: &Configuration) -> f64 {
        self.sys.evaluate_clean(cfg)
    }
}

impl Objective for WebObjective {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        self.sys.evaluate(cfg)
    }
}

/// Run one tuning session and return `(outcome, clean_best)`.
pub fn tune_web(
    mix: WorkloadMix,
    options: TuningOptions,
    noise: f64,
    seed: u64,
) -> (TuningOutcome, f64) {
    let mut obj = WebObjective::new(mix, noise, seed);
    let tuner = Tuner::new(obj.system().space().clone(), options);
    let out = tuner.run(&mut obj);
    let clean = obj.clean(&out.best_configuration);
    (out, clean)
}

/// Run a trained session and return `(outcome, clean_best)`.
pub fn tune_web_trained(
    mix: WorkloadMix,
    options: TuningOptions,
    noise: f64,
    seed: u64,
    history: &RunHistory,
    mode: TrainingMode,
) -> (TuningOutcome, f64) {
    let mut obj = WebObjective::new(mix, noise, seed);
    let tuner = Tuner::new(obj.system().space().clone(), options);
    let out = tuner.run_trained(&mut obj, history, mode);
    let clean = obj.clean(&out.best_configuration);
    (out, clean)
}

/// Average a metric over several seeds (tuning runs are noisy; the paper
/// reports single runs, we stabilize with a small ensemble).
pub fn average<F: FnMut(u64) -> f64>(seeds: std::ops::Range<u64>, mut f: F) -> f64 {
    let n = (seeds.end.saturating_sub(seeds.start)).max(1) as f64;
    seeds.map(&mut f).sum::<f64>() / n
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

/// Print a header + separator.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

/// Format a float with fixed precision.
pub fn f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_web_produces_reasonable_wips() {
        let (out, clean) = tune_web(
            WorkloadMix::shopping(),
            TuningOptions::improved().with_max_iterations(60),
            0.0,
            1,
        );
        assert!(out.best_performance > 40.0);
        assert!(clean > 40.0);
    }

    #[test]
    fn average_averages() {
        assert_eq!(average(0..4, |s| s as f64), 1.5);
    }
}
