//! Microbench for the protocol codecs: JSON (protocol v1/v2) versus the
//! v3 binary wire format, on the message mix a steady-state tuning
//! session actually sends.
//!
//! The mix is dominated by the hot loop — `Fetch`/`Config` and
//! `Report`/`Reported` pairs — with one handshake and one summary per
//! session's worth of traffic, plus a `Traced`-wrapped report so the
//! tracing wrapper's cost is on the scoreboard. For each format the
//! bench times encode and decode separately over the whole mix and
//! records the wire payload bytes.
//!
//! Floor gates (asserted, so CI fails on a regression):
//!
//! * binary encode+decode must be ≥ 1.5× faster than JSON on the mix;
//! * binary wire bytes must be ≤ 0.6× of JSON's.
//!
//! Writes `BENCH_codec.json`. `--smoke` shrinks the iteration count for
//! CI; the gates hold at any scale because they are per-message
//! properties, not throughput ceilings.

use harmony_net::protocol::{Request, Response, SpaceSpec, WireSpan};
use harmony_net::wire::{from_bytes, to_bytes};
use harmony_space::{ParamDef, ParameterSpace};
use std::time::Instant;

fn space() -> ParameterSpace {
    ParameterSpace::builder()
        .param(ParamDef::int("cache_size", 1, 4096, 256, 1))
        .param(ParamDef::int("threads", 1, 64, 8, 1))
        .param(ParamDef::int("batch", 16, 8192, 512, 16))
        .param(ParamDef::categorical(
            "policy",
            vec!["lru".into(), "lfu".into(), "arc".into()],
            0,
        ))
        .build()
        .expect("bench space is valid")
}

/// One session's worth of requests: handshake, start, the hot loop,
/// and the close — weighted the way a 60-iteration session weights them.
fn request_mix() -> Vec<Request> {
    let mut mix = vec![
        Request::Hello {
            version: None,
            min_version: Some(1),
            max_version: Some(3),
            client: "bench_codec".into(),
        },
        Request::SessionStart {
            space: SpaceSpec::Explicit(space()),
            label: "bench-session".into(),
            characteristics: vec![0.25, 0.75, 12.5],
            max_iterations: Some(60),
            engine: None,
        },
    ];
    for i in 0..60u64 {
        mix.push(Request::Fetch);
        mix.push(Request::Report {
            performance: 180.0 + (i as f64) * 0.25,
            seq: Some(i),
        });
    }
    // One traced report: the tracing wrapper must stay cheap too.
    mix.push(Request::Traced {
        trace_id: 0xfeed_beef,
        parent_span: 3,
        spans: vec![WireSpan {
            id: 4,
            parent: 3,
            stage: "eval".into(),
            detail: "measure".into(),
            start_us: 1_000,
            end_us: 5_400,
            error: false,
        }],
        request: Box::new(Request::Report {
            performance: 199.5,
            seq: Some(60),
        }),
    });
    mix.push(Request::SessionEnd);
    mix
}

/// The responses answering that mix.
fn response_mix() -> Vec<Response> {
    let mut mix = vec![
        Response::Hello {
            version: 3,
            server: "bench_codec".into(),
        },
        Response::SessionStarted {
            space: space(),
            trained_from: Some("monday-run".into()),
            training_iterations: 41,
            session_token: Some("0123456789abcdef0123456789abcdef".into()),
        },
    ];
    for i in 0..60usize {
        mix.push(Response::Config {
            values: vec![256 + i as i64, 8, 512, 1],
            iteration: i,
        });
        mix.push(Response::Reported);
    }
    mix.push(Response::SessionSummary {
        values: vec![1024, 16, 2048, 2],
        performance: 199.875,
        iterations: 61,
        converged: true,
    });
    mix
}

struct Timing {
    encode_ns: f64,
    decode_ns: f64,
    bytes: usize,
}

/// Time encode and decode of the whole mix, `iters` times over.
fn measure<T, E, D>(items: &[T], iters: usize, encode: E, decode: D) -> Timing
where
    E: Fn(&T) -> Vec<u8>,
    D: Fn(&[u8]) -> T,
{
    let encoded: Vec<Vec<u8>> = items.iter().map(&encode).collect();
    let bytes: usize = encoded.iter().map(Vec::len).sum();

    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        for item in items {
            sink = sink.wrapping_add(encode(item).len());
        }
    }
    let encode_ns = start.elapsed().as_nanos() as f64 / (iters * items.len()) as f64;
    assert_eq!(
        sink,
        bytes.wrapping_mul(iters),
        "encoder went nondeterministic"
    );

    let start = Instant::now();
    let mut decoded = 0usize;
    for _ in 0..iters {
        for payload in &encoded {
            std::hint::black_box(decode(payload));
            decoded += 1;
        }
    }
    let decode_ns = start.elapsed().as_nanos() as f64 / decoded as f64;

    Timing {
        encode_ns,
        decode_ns,
        bytes,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(bad) = args.iter().find(|a| a.as_str() != "--smoke") {
        eprintln!("bench_codec: unknown flag {bad:?} (--smoke)");
        std::process::exit(2);
    }
    let iters = if smoke { 40 } else { 400 };

    let requests = request_mix();
    let responses = response_mix();

    // Round-trip sanity before timing anything: both codecs must agree
    // with themselves on every message in the mix.
    for r in &requests {
        assert_eq!(&from_bytes::<Request>(&to_bytes(r)).unwrap(), r);
        // JSON drops the space's `#[serde(skip)]` name index, so compare
        // re-encoded bytes rather than values.
        let json = serde_json::to_vec(r).unwrap();
        let back: Request = serde_json::from_slice(&json).unwrap();
        assert_eq!(serde_json::to_vec(&back).unwrap(), json);
    }
    for r in &responses {
        assert_eq!(&from_bytes::<Response>(&to_bytes(r)).unwrap(), r);
    }

    let json_req = measure(
        &requests,
        iters,
        |r| serde_json::to_vec(r).expect("serialize"),
        |b| serde_json::from_slice(b).expect("deserialize"),
    );
    let bin_req = measure(&requests, iters, to_bytes, |b| {
        from_bytes(b).expect("decode")
    });
    let json_resp = measure(
        &responses,
        iters,
        |r| serde_json::to_vec(r).expect("serialize"),
        |b| serde_json::from_slice(b).expect("deserialize"),
    );
    let bin_resp = measure(&responses, iters, to_bytes, |b| {
        from_bytes(b).expect("decode")
    });

    let json_ns =
        json_req.encode_ns + json_req.decode_ns + json_resp.encode_ns + json_resp.decode_ns;
    let bin_ns = bin_req.encode_ns + bin_req.decode_ns + bin_resp.encode_ns + bin_resp.decode_ns;
    let speedup = json_ns / bin_ns;
    let json_bytes = json_req.bytes + json_resp.bytes;
    let bin_bytes = bin_req.bytes + bin_resp.bytes;
    let byte_ratio = bin_bytes as f64 / json_bytes as f64;

    let mut results = String::new();
    for (format, req, resp, bytes) in [
        ("json", &json_req, &json_resp, json_bytes),
        ("binary", &bin_req, &bin_resp, bin_bytes),
    ] {
        if !results.is_empty() {
            results.push_str(",\n    ");
        }
        results.push_str(&format!(
            "{{\"format\": \"{format}\", \
             \"request_encode_ns\": {:.1}, \"request_decode_ns\": {:.1}, \
             \"response_encode_ns\": {:.1}, \"response_decode_ns\": {:.1}, \
             \"wire_bytes\": {bytes}}}",
            req.encode_ns, req.decode_ns, resp.encode_ns, resp.decode_ns,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"codec\",\n  \"smoke\": {smoke},\n  \
         \"messages\": {},\n  \"iters\": {iters},\n  \"results\": [\n    {results}\n  ],\n  \
         \"codec_speedup\": {speedup:.4},\n  \"byte_ratio\": {byte_ratio:.4}\n}}\n",
        requests.len() + responses.len(),
    );
    std::fs::write("BENCH_codec.json", &json).expect("write BENCH_codec.json");
    print!("{json}");
    println!("wrote BENCH_codec.json");

    assert!(
        speedup >= 1.5,
        "floor gate: binary encode+decode must be >= 1.5x JSON, got {speedup:.2}x"
    );
    assert!(
        byte_ratio <= 0.6,
        "floor gate: binary wire bytes must be <= 0.6x JSON, got {byte_ratio:.2}x"
    );
}
