//! Figure 5 — parameter sensitivity of the synthetic data under output
//! perturbation.
//!
//! Paper: fifteen parameters D..R, two of which (H, M) were generated as
//! performance-irrelevant; the prioritizing tool identifies them under
//! 0%, 5%, 10% and 25% uniform output perturbation.

use bench::{f, header, row};
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::sensitivity::Prioritizer;
use harmony_synth::scenario::{section5_system, SECTION5_IRRELEVANT, SECTION5_PARAM_NAMES};

fn main() {
    let workload = [0.3, 0.5, 0.2]; // browsing/shopping/ordering mix
    let perturbations = [0.0, 0.05, 0.10, 0.25];

    // One sensitivity sweep per perturbation level. Two variants: the
    // paper's raw ΔP/Δv′ formula (with measurement averaging), and the
    // noise-floor-corrected extension that keeps flat parameters at ~0
    // under heavy perturbation.
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut corrected: Vec<Vec<f64>> = Vec::new();
    for (k, &p) in perturbations.iter().enumerate() {
        let repeats = if p > 0.0 { 9 } else { 1 };
        let sweep = |floor: usize, seed: u64| {
            let mut sys = section5_system(workload, p, seed);
            let space = sys.space().clone();
            let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
            Prioritizer::new(space)
                .with_repeats(repeats)
                .with_noise_floor(floor)
                .analyze(&mut obj)
        };
        let raw = sweep(0, 42 + k as u64);
        let fixed = sweep(20, 142 + k as u64);
        columns.push(raw.entries().iter().map(|e| e.sensitivity).collect());
        corrected.push(fixed.entries().iter().map(|e| e.sensitivity).collect());
    }

    println!("Figure 5: sensitivity of the 15 synthetic parameters (D..R)");
    println!("(planted irrelevant: H and M — expect the smallest bars)\n");
    header(&["param", "0%", "5%", "10%", "25%"], &[6, 10, 10, 10, 10]);
    for (j, name) in SECTION5_PARAM_NAMES.iter().enumerate() {
        let mark = if SECTION5_IRRELEVANT.contains(&j) {
            "*"
        } else {
            " "
        };
        row(
            &[
                format!("{name}{mark}"),
                f(columns[0][j], 2),
                f(columns[1][j], 2),
                f(columns[2][j], 2),
                f(columns[3][j], 2),
            ],
            &[6, 10, 10, 10, 10],
        );
    }
    println!("\n(* = planted performance-irrelevant parameter; raw ΔP/Δv′ formula)");

    println!(
        "\nwith noise-floor correction (measure the default config 20x, subtract its swing):\n"
    );
    header(&["param", "0%", "5%", "10%", "25%"], &[6, 10, 10, 10, 10]);
    for (j, name) in SECTION5_PARAM_NAMES.iter().enumerate() {
        let mark = if SECTION5_IRRELEVANT.contains(&j) {
            "*"
        } else {
            " "
        };
        row(
            &[
                format!("{name}{mark}"),
                f(corrected[0][j], 2),
                f(corrected[1][j], 2),
                f(corrected[2][j], 2),
                f(corrected[3][j], 2),
            ],
            &[6, 10, 10, 10, 10],
        );
    }

    println!("\nbar view of the 0%-perturbation sensitivities:\n");
    let labels: Vec<String> = SECTION5_PARAM_NAMES
        .iter()
        .enumerate()
        .map(|(j, n)| {
            if SECTION5_IRRELEVANT.contains(&j) {
                format!("{n}*")
            } else {
                (*n).to_string()
            }
        })
        .collect();
    print!("{}", bench::chart::bar_chart(&labels, &columns[0], 48));

    // Sanity summary: do H and M land in the bottom ranks at 0%?
    let mut ranked: Vec<usize> = (0..15).collect();
    ranked.sort_by(|&a, &b| columns[0][a].total_cmp(&columns[0][b]));
    let bottom2: Vec<&str> = ranked[..2]
        .iter()
        .map(|&j| SECTION5_PARAM_NAMES[j])
        .collect();
    println!("\nbottom-2 at 0% perturbation: {bottom2:?} (paper: [\"H\", \"M\"])");
    for level in 1..4 {
        let mut r: Vec<usize> = (0..15).collect();
        r.sort_by(|&a, &b| corrected[level][a].total_cmp(&corrected[level][b]));
        let bottom: Vec<&str> = r[..3].iter().map(|&j| SECTION5_PARAM_NAMES[j]).collect();
        println!(
            "bottom-3 (corrected) at {:.0}%: {bottom:?}",
            [0.0, 5.0, 10.0, 25.0][level]
        );
    }
}
