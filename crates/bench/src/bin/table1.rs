//! Table 1 — improved search refinement: original vs improved initial
//! simplex on the web service system.
//!
//! Paper (shopping): original 63 WIPS / 90 iterations / worst 20 WIPS;
//! improved 60 WIPS / 58 iterations / worst 27 WIPS. (Ordering: 79/74/29
//! vs 80/46/29.) The improvement cuts convergence time ~35% while holding
//! final performance, and raises the worst (oscillation-floor) WIPS for
//! the shopping workload.

use bench::{average, f, header, row, tune_web};
use harmony::prelude::*;
use harmony_websim::WorkloadMix;

fn main() {
    let seeds = 0u64..5;
    let noise = 0.05;

    println!("Table 1: tuning process summary — original vs improved initial simplex\n");
    header(
        &["workload", "kernel", "WIPS", "conv(iters)", "worst WIPS"],
        &[10, 10, 8, 12, 12],
    );

    for (mix, label) in [
        (WorkloadMix::shopping(), "shopping"),
        (WorkloadMix::ordering(), "ordering"),
    ] {
        let mut conv = [0.0f64; 2];
        for (k, (options, name)) in [
            (
                TuningOptions::original().with_max_iterations(bench::WEB_TUNING_BUDGET),
                "original",
            ),
            (
                TuningOptions::improved().with_max_iterations(bench::WEB_TUNING_BUDGET),
                "improved",
            ),
        ]
        .into_iter()
        .enumerate()
        {
            let wips = average(seeds.clone(), |s| {
                tune_web(mix.clone(), options.clone(), noise, s).1
            });
            let time = average(seeds.clone(), |s| {
                tune_web(mix.clone(), options.clone(), noise, s)
                    .0
                    .report
                    .convergence_time as f64
            });
            let worst = average(seeds.clone(), |s| {
                tune_web(mix.clone(), options.clone(), noise, s)
                    .0
                    .report
                    .worst_performance
            });
            conv[k] = time;
            row(
                &[
                    label.to_string(),
                    name.to_string(),
                    f(wips, 1),
                    f(time, 1),
                    f(worst, 1),
                ],
                &[10, 10, 8, 12, 12],
            );
        }
        println!(
            "  -> convergence time reduction: {:.0}%  (paper: ~35% shopping, ~38% ordering)\n",
            (conv[0] - conv[1]) / conv[0] * 100.0
        );
    }
}
