//! Table 2 — tuning with and without prior histories.
//!
//! Paper: training from historical data recorded on *another* workload
//! cuts convergence time 56% (shopping) / 17% (ordering), raises the
//! initial-stage mean WIPS, shrinks its standard deviation, and cuts
//! bad-performance iterations from 9 to 1 (shopping) / 11 to 3 (ordering).

use bench::{average, f, header, row, tune_web, tune_web_trained, WebObjective};
use harmony::prelude::*;
use harmony::tuner::TrainingMode;
use harmony_websim::WorkloadMix;

fn main() {
    let seeds = 0u64..5;
    let noise = 0.05;
    let budget = bench::WEB_TUNING_BUDGET;

    println!("Table 2: tuning with vs without prior histories\n");
    header(
        &[
            "workload",
            "histories",
            "conv(iters)",
            "init mean",
            "init std",
            "bad iters",
        ],
        &[10, 10, 12, 10, 10, 10],
    );

    for (mix, trainer_mix, label) in [
        (WorkloadMix::shopping(), WorkloadMix::browsing(), "shopping"),
        (WorkloadMix::ordering(), WorkloadMix::shopping(), "ordering"),
    ] {
        // Record a history by tuning a *different* workload ("historical
        // data which is never seen by the Active Harmony server" for the
        // target workload).
        let history = {
            let mut obj = WebObjective::new(trainer_mix.clone(), noise, 11);
            let space = obj.system().space().clone();
            let tuner = Tuner::new(space, TuningOptions::improved().with_max_iterations(budget));
            let out = tuner.run(&mut obj);
            let characteristics = obj.system_mut().observe_characteristics(400);
            out.to_history(trainer_mix.name().to_string(), characteristics)
        };

        let opts = TuningOptions::improved().with_max_iterations(budget);
        let mut conv = [0.0f64; 2];
        for (k, with) in [false, true].into_iter().enumerate() {
            let run = |s: u64| {
                if with {
                    tune_web_trained(
                        mix.clone(),
                        opts.clone(),
                        noise,
                        s,
                        &history,
                        TrainingMode::Replay(10),
                    )
                    .0
                } else {
                    tune_web(mix.clone(), opts.clone(), noise, s).0
                }
            };
            let time = average(seeds.clone(), |s| run(s).report.convergence_time as f64);
            let mean = average(seeds.clone(), |s| run(s).report.initial_mean);
            let std = average(seeds.clone(), |s| run(s).report.initial_std);
            let bad = average(seeds.clone(), |s| run(s).report.bad_iterations as f64);
            conv[k] = time;
            row(
                &[
                    label.to_string(),
                    if with { "with" } else { "without" }.to_string(),
                    f(time, 1),
                    f(mean, 1),
                    f(std, 2),
                    f(bad, 1),
                ],
                &[10, 10, 12, 10, 10, 10],
            );
        }
        println!(
            "  -> convergence speedup: {:.0}%  (paper: 56% shopping, 17% ordering)\n",
            (conv[0] - conv[1]) / conv[0] * 100.0
        );
    }
}
