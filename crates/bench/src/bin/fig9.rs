//! Figure 9 — tuning only the n most sensitive web-system parameters.
//!
//! Paper: tuning the top n of 10 parameters (n = 1, 3, 6, 10) cuts tuning
//! time by up to 71.8% while sacrificing less than 2.5% of WIPS.

use bench::{average, f, header, row, WebObjective};
use harmony::objective::Objective;
use harmony::prelude::*;
use harmony::sensitivity::{Prioritizer, SubspaceFocus};
use harmony_websim::WorkloadMix;

fn main() {
    let ns = [1usize, 3, 6, 10];
    let seeds = 0u64..3;

    println!("Figure 9: tuning only the n most sensitive parameters (web system)");
    println!("time = convergence iterations; perf = noise-free WIPS of tuned config\n");
    header(
        &["workload", "n", "time(iters)", "WIPS", "vs n=10"],
        &[10, 4, 12, 8, 8],
    );

    for (mix, label) in [
        (WorkloadMix::shopping(), "shopping"),
        (WorkloadMix::ordering(), "ordering"),
    ] {
        let ranking = {
            let mut obj = WebObjective::new(mix.clone(), 0.0, 3);
            let space = obj.system().space().clone();
            Prioritizer::new(space)
                .with_max_samples(12)
                .analyze(&mut obj)
        };
        let mut results: Vec<(usize, f64, f64)> = Vec::new();
        for &n in &ns {
            let indices = ranking.top_n(n);
            let run = |seed: u64| -> (f64, f64) {
                let mut obj = WebObjective::new(mix.clone(), 0.05, 500 + seed);
                let space = obj.system().space().clone();
                let focus = SubspaceFocus::new(
                    space.clone(),
                    indices.clone(),
                    space.default_configuration(),
                );
                let reduced = focus.reduced_space();
                let tuner = Tuner::new(
                    reduced,
                    TuningOptions::improved().with_max_iterations(bench::WEB_TUNING_BUDGET),
                );
                let mut bridged = {
                    struct B<'a> {
                        obj: &'a mut WebObjective,
                        focus: &'a SubspaceFocus,
                    }
                    impl Objective for B<'_> {
                        fn measure(&mut self, cfg: &Configuration) -> f64 {
                            self.obj.measure(&self.focus.embed(cfg))
                        }
                    }
                    B {
                        obj: &mut obj,
                        focus: &focus,
                    }
                };
                let out = tuner.run(&mut bridged);
                let clean = obj.clean(&focus.embed(&out.best_configuration));
                (out.report.convergence_time as f64, clean)
            };
            let time = average(seeds.clone(), |s| run(s).0);
            let perf = average(seeds.clone(), |s| run(s).1);
            results.push((n, time, perf));
        }
        let full = results.last().expect("n=10 ran").2;
        for (n, time, perf) in results {
            row(
                &[
                    label.to_string(),
                    n.to_string(),
                    f(time, 1),
                    f(perf, 2),
                    format!("{:+.1}%", (perf - full) / full * 100.0),
                ],
                &[10, 4, 12, 8, 8],
            );
        }
        println!();
    }
    println!("(paper shape: small n → big time savings, small WIPS sacrifice)");
}
