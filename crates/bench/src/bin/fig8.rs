//! Figure 8 — parameter sensitivity of the cluster-based web service
//! system under shopping vs ordering workloads.
//!
//! Paper: importance is workload-dependent — the MySQL network buffer
//! matters for the ordering workload (DB-heavy), the proxy cache memory
//! matters for the shopping workload (browse-heavy), and the HTTP buffer /
//! max-connections knobs matter relatively little for either.

use bench::{f, header, row, WebObjective};
use harmony::sensitivity::Prioritizer;
use harmony_websim::{WorkloadMix, PARAM_NAMES};

fn main() {
    let sweep = |mix: WorkloadMix| {
        let mut obj = WebObjective::new(mix, 0.0, 7);
        let space = obj.system().space().clone();
        Prioritizer::new(space)
            .with_max_samples(12)
            .analyze(&mut obj)
    };
    let shopping = sweep(WorkloadMix::shopping());
    let ordering = sweep(WorkloadMix::ordering());

    println!("Figure 8: parameter sensitivity in the cluster-based web service system\n");
    header(&["parameter", "shopping", "ordering"], &[24, 10, 10]);
    for (j, name) in PARAM_NAMES.iter().enumerate() {
        row(
            &[
                name.to_string(),
                f(shopping.entries()[j].sensitivity, 2),
                f(ordering.entries()[j].sensitivity, 2),
            ],
            &[24, 10, 10],
        );
    }

    println!("\nbar view (shopping '#', ordering '+'):\n");
    let labels: Vec<String> = PARAM_NAMES.iter().map(|s| s.to_string()).collect();
    let s_vals: Vec<f64> = shopping.entries().iter().map(|e| e.sensitivity).collect();
    let o_vals: Vec<f64> = ordering.entries().iter().map(|e| e.sensitivity).collect();
    print!(
        "{}",
        bench::chart::grouped_bar_chart(&labels, &[s_vals, o_vals], &['#', '+'], 46)
    );

    let idx = |n: &str| {
        PARAM_NAMES
            .iter()
            .position(|p| *p == n)
            .expect("known name")
    };
    let s =
        |rep: &harmony::sensitivity::SensitivityReport, n: &str| rep.entries()[idx(n)].sensitivity;
    println!("\nchecks against the paper's observations:");
    println!(
        "  MYSQLNetBufferLength ordering {} shopping  (paper: more important when ordering)",
        if s(&ordering, "MYSQLNetBufferLength") > s(&shopping, "MYSQLNetBufferLength") {
            ">"
        } else {
            "<"
        }
    );
    println!(
        "  PROXYCacheMem shopping {} ordering  (paper: more important when shopping)",
        if s(&shopping, "PROXYCacheMem") > s(&ordering, "PROXYCacheMem") {
            ">"
        } else {
            "<"
        }
    );
    let max_s = shopping.ranked()[0].sensitivity;
    println!(
        "  HTTPBufferSize is {:.0}% of the top shopping sensitivity (paper: relatively unimportant)",
        s(&shopping, "HTTPBufferSize") / max_s * 100.0
    );
}
