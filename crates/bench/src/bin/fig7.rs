//! Figure 7 — tuning with experience from workloads at increasing
//! characteristic distance.
//!
//! Paper: the system faces workload A and trains from stored workload A′;
//! the x-axis is the Euclidean distance between the two characteristic
//! vectors. The closer the experience, the shorter the tuning time, with
//! the tuned performance staying roughly flat.
//!
//! "Time" here is iterations until a live exploration first reaches 97%
//! of workload A's true optimum (established once by a long reference
//! run) — the quantity the paper's iteration counts track.

use bench::{average, f, header, row};
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::tuner::TrainingMode;
use harmony_linalg::stats::euclidean;
use harmony_synth::scenario::history_sensitivity_system;

fn main() {
    // Current workload A: a mixed interaction-frequency distribution.
    let a = [0.55, 0.20, 0.10, 0.05, 0.05, 0.05];
    // Direction along which A' drifts away from A (mass moves from the
    // first two interaction kinds to the DB-heavy ones).
    let dir = [-0.09, -0.03, 0.01, 0.05, 0.04, 0.02];
    let budget = 150usize;
    let seeds = 0u64..8;

    // Reference optimum of A (long, cold, noise-free run).
    let ref_best = {
        let sys = history_sensitivity_system(&a, 0.0, 0);
        let space = sys.space().clone();
        let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate_clean(cfg));
        let out =
            Tuner::new(space, TuningOptions::improved().with_max_iterations(400)).run(&mut obj);
        out.best_performance
    };

    println!("Figure 7: tuning workload A using experience from workload A'");
    println!("distance = Euclidean distance between characteristic vectors");
    println!(
        "time = live iterations to first reach 95% of A's reference optimum ({ref_best:.1})\n"
    );
    header(&["distance", "time(iters)", "performance"], &[10, 12, 12]);
    let mut xs: Vec<f64> = Vec::new();
    let mut times: Vec<f64> = Vec::new();

    for step in 0..7 {
        let scale = step as f64;
        let aprime: Vec<f64> = a
            .iter()
            .zip(&dir)
            .map(|(x, d)| (x + scale * d).max(0.0))
            .collect();
        let distance = euclidean(&a, &aprime) * 10.0;

        let time = average(seeds.clone(), |seed| {
            run_with_history(&a, &aprime, budget, seed, ref_best).0
        });
        let perf = average(seeds.clone(), |seed| {
            run_with_history(&a, &aprime, budget, seed, ref_best).1
        });
        row(&[f(distance, 2), f(time, 1), f(perf, 2)], &[10, 12, 12]);
        xs.push(distance);
        times.push(time);
    }
    println!("\ntime vs distance:");
    print!("{}", bench::chart::series_panel(&xs, &times, 48, 9));
    println!("\n(paper shape: time grows with distance; performance stays roughly flat)");
}

/// Train on A' (recording its exploration), then tune A starting from that
/// experience. Returns (iterations to 95% of the reference optimum, clean
/// tuned performance).
fn run_with_history(
    a: &[f64; 6],
    aprime: &[f64],
    budget: usize,
    seed: u64,
    ref_best: f64,
) -> (f64, f64) {
    // Record experience while tuning A'.
    let mut prior_sys = history_sensitivity_system(aprime, 0.05, 900 + seed);
    let space = prior_sys.space().clone();
    let mut prior_obj = FnObjective::new(move |cfg: &Configuration| prior_sys.evaluate(cfg));
    let tuner = Tuner::new(
        space.clone(),
        TuningOptions::improved().with_max_iterations(budget),
    );
    let prior_out = tuner.run(&mut prior_obj);
    let history = prior_out.to_history("aprime", aprime.to_vec());

    // Tune A, trained from the A' experience.
    let mut sys = history_sensitivity_system(a, 0.0, 1700 + seed);
    let clean_sys = history_sensitivity_system(a, 0.0, 0);
    let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
    let out = tuner.run_trained(&mut obj, &history, TrainingMode::SeedSimplex);

    let threshold = 0.95 * ref_best;
    let time = out
        .trace
        .iter()
        .position(|t| clean_sys.evaluate_clean(&t.config) >= threshold)
        .unwrap_or(out.trace.len());
    (
        time as f64,
        clean_sys.evaluate_clean(&out.best_configuration),
    )
}
