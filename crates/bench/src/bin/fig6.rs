//! Figure 6 — tuning only the n most sensitive synthetic parameters.
//!
//! Paper: with the rest of the parameters at defaults, tuning only the
//! top-n parameters (n = 1, 5, 9, 12, 15) saves up to 85% of tuning time
//! while losing less than 8% of performance at low perturbation; larger
//! perturbation (10%, 25%) degrades the process.

use bench::{average, f, header, row};
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::sensitivity::{Prioritizer, SubspaceFocus};
use harmony_synth::scenario::section5_system;

fn main() {
    let workload = [0.3, 0.5, 0.2];
    let perturbations = [0.0, 0.05, 0.10, 0.25];
    let ns = [1usize, 5, 9, 12, 15];
    let seeds = 0u64..3;

    println!("Figure 6: tuning only the n most sensitive parameters (synthetic data)");
    println!("time = convergence iterations; perf = noise-free performance of tuned config\n");
    header(
        &["perturb", "n", "time(iters)", "performance", "perf vs n=15"],
        &[8, 4, 12, 12, 12],
    );

    for &p in &perturbations {
        // Rank parameters once per perturbation level.
        let ranking = {
            let mut sys = section5_system(workload, p, 7);
            let space = sys.space().clone();
            let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
            Prioritizer::new(space).analyze(&mut obj)
        };
        let mut full_perf = None;
        let mut per_n: Vec<(usize, f64, f64)> = Vec::new();
        for &n in &ns {
            let indices = ranking.top_n(n);
            let time = average(seeds.clone(), |seed| {
                let mut sys = section5_system(workload, p, 100 + seed);
                let space = sys.space().clone();
                let focus = SubspaceFocus::new(
                    space.clone(),
                    indices.clone(),
                    space.default_configuration(),
                );
                let reduced = focus.reduced_space();
                let fc = focus.clone();
                let mut obj =
                    FnObjective::new(move |cfg: &Configuration| sys.evaluate(&fc.embed(cfg)));
                let tuner = Tuner::new(reduced, TuningOptions::improved().with_max_iterations(150));
                let out = tuner.run(&mut obj);
                out.report.convergence_time as f64
            });
            let perf = average(seeds.clone(), |seed| {
                let mut sys = section5_system(workload, p, 100 + seed);
                let clean = section5_system(workload, 0.0, 0);
                let space = sys.space().clone();
                let focus = SubspaceFocus::new(
                    space.clone(),
                    indices.clone(),
                    space.default_configuration(),
                );
                let reduced = focus.reduced_space();
                let fc = focus.clone();
                let mut obj =
                    FnObjective::new(move |cfg: &Configuration| sys.evaluate(&fc.embed(cfg)));
                let tuner = Tuner::new(reduced, TuningOptions::improved().with_max_iterations(150));
                let out = tuner.run(&mut obj);
                clean.evaluate_clean(&focus.embed(&out.best_configuration))
            });
            per_n.push((n, time, perf));
            if n == 15 {
                full_perf = Some(perf);
            }
        }
        let full = full_perf.expect("n=15 ran");
        for (n, time, perf) in per_n {
            row(
                &[
                    format!("{:.0}%", p * 100.0),
                    n.to_string(),
                    f(time, 1),
                    f(perf, 2),
                    format!("{:+.1}%", (perf - full) / full * 100.0),
                ],
                &[8, 4, 12, 12, 12],
            );
        }
        println!();
    }
    println!("(paper shape: time grows with n — sublinearly near the top — and the");
    println!(" performance sacrificed by small n stays small at low perturbation)");
}
