//! Perf baseline for the daemon's experience path.
//!
//! Drives N concurrent clients through classify/train/record cycles
//! against a daemon seeded with prior experience, in both database
//! schemes:
//!
//! * `legacy-lock` — the pre-snapshot design: one `RwLock` around the
//!   database, classification under a read lock, and a synchronous
//!   whole-file save on the request thread after every completed
//!   session.
//! * `snapshot` — atomic snapshot reads (classification touches only an
//!   `Arc` pointer plus the prebuilt k-d index) with WAL persistence on
//!   a background flusher.
//!
//! Each cycle is one session: `SessionStart` (a classification against
//! the shared experience — the timed operation), a few fetch/report
//! iterations, `SessionEnd` (a record), and an occasional `Stats` poll.
//! Reports classify throughput and p50/p99 `SessionStart` latency per
//! mode, and writes the comparison to `BENCH_daemon.json`.
//!
//! Flags: `--legacy-lock` measures only the legacy scheme, `--snapshot`
//! only the new one (default: both, plus the speedup). `--smoke` shrinks
//! everything for CI.

use harmony::history::{ExperienceDb, RunHistory};
use harmony_net::client::Client;
use harmony_net::protocol::SpaceSpec;
use harmony_net::server::{DaemonConfig, TuningDaemon};
use harmony_space::Configuration;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const RSL: &str = "{ harmonyBundle x { int {0 100 1} }}\n{ harmonyBundle y { int {0 100 1} }}";

/// Workload knobs; `--smoke` swaps in the small set.
struct Params {
    clients: usize,
    cycles_per_client: usize,
    seed_runs: usize,
    records_per_run: usize,
    /// Live fetch/report iterations per session.
    iterations: usize,
}

const FULL: Params = Params {
    clients: 8,
    cycles_per_client: 15,
    seed_runs: 150,
    records_per_run: 30,
    iterations: 4,
};

const SMOKE: Params = Params {
    clients: 4,
    cycles_per_client: 3,
    seed_runs: 24,
    records_per_run: 6,
    iterations: 2,
};

/// xorshift64* — deterministic seed data without pulling in a PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn unit(&mut self) -> f64 {
        (self.next() % 10_000) as f64 / 10_000.0
    }
}

/// A database of prior experience for the daemon to classify against.
fn seed_db(p: &Params) -> ExperienceDb {
    let mut rng = Rng(0x5EED);
    let mut db = ExperienceDb::new();
    for i in 0..p.seed_runs {
        let chars = vec![rng.unit(), rng.unit(), rng.unit()];
        let mut run = RunHistory::new(format!("seed{i}"), chars);
        for _ in 0..p.records_per_run {
            let cfg =
                Configuration::new(vec![(rng.next() % 101) as i64, (rng.next() % 101) as i64]);
            run.push(&cfg, rng.unit() * 1000.0);
        }
        db.add_run(run);
    }
    db
}

struct ModeResult {
    mode: &'static str,
    wall_ms: f64,
    classify_rps: f64,
    classify_p50_ms: f64,
    classify_p99_ms: f64,
    requests_per_sec: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// One full measurement of a daemon in the given mode: seed, serve,
/// hammer with concurrent clients, tear down.
fn run_mode(legacy: bool, p: &Params) -> ModeResult {
    let mode = if legacy { "legacy-lock" } else { "snapshot" };
    let dir = std::env::temp_dir().join("harmony-bench-daemon");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let db_path: PathBuf = dir.join(format!("{mode}.json"));
    let wal_path: PathBuf = dir.join(format!("{mode}.wal"));
    std::fs::remove_file(&db_path).ok();
    std::fs::remove_file(&wal_path).ok();
    seed_db(p).save(&db_path).expect("seed snapshot");

    let handle = TuningDaemon::start(DaemonConfig {
        db_path: Some(db_path.clone()),
        wal_path: Some(wal_path.clone()),
        legacy_lock: legacy,
        save_every: 1,
        max_connections: p.clients + 2,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    let addr = handle.addr();

    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..p.clients {
        let cycles = p.cycles_per_client;
        let iterations = p.iterations;
        workers.push(std::thread::spawn(move || {
            let mut rng = Rng(0xC11E47 + c as u64);
            let mut client = Client::connect(addr).expect("connect");
            let mut classify_ms = Vec::with_capacity(cycles);
            let mut requests = 0usize;
            for cycle in 0..cycles {
                let chars = vec![rng.unit(), rng.unit(), rng.unit()];
                let t = Instant::now();
                client
                    .start_session(
                        SpaceSpec::Rsl(RSL.into()),
                        format!("c{c}-{cycle}"),
                        chars,
                        Some(iterations),
                    )
                    .expect("session start");
                classify_ms.push(t.elapsed().as_secs_f64() * 1e3);
                requests += 1;
                while let Some(prop) = client.fetch().expect("fetch") {
                    let x = prop.values.get(0) as f64;
                    let y = prop.values.get(1) as f64;
                    client
                        .report(1000.0 - (x - 40.0).powi(2) - (y - 70.0).powi(2))
                        .expect("report");
                    requests += 2;
                }
                client.end_session().expect("session end");
                requests += 2; // final fetch (Done) + end
                if cycle % 5 == 4 {
                    client.stats().expect("stats");
                    requests += 1;
                }
            }
            (classify_ms, requests)
        }));
    }
    let mut classify_ms = Vec::new();
    let mut requests = 0usize;
    for w in workers {
        let (ms, reqs) = w.join().expect("client thread");
        classify_ms.extend(ms);
        requests += reqs;
    }
    let wall = started.elapsed().as_secs_f64();
    handle.shutdown();
    std::fs::remove_file(&db_path).ok();
    std::fs::remove_file(&wal_path).ok();

    classify_ms.sort_by(f64::total_cmp);
    ModeResult {
        mode,
        wall_ms: wall * 1e3,
        classify_rps: classify_ms.len() as f64 / wall,
        classify_p50_ms: percentile(&classify_ms, 0.50),
        classify_p99_ms: percentile(&classify_ms, 0.99),
        requests_per_sec: requests as f64 / wall,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let only_legacy = args.iter().any(|a| a == "--legacy-lock");
    let only_snapshot = args.iter().any(|a| a == "--snapshot");
    if let Some(bad) = args
        .iter()
        .find(|a| !matches!(a.as_str(), "--smoke" | "--legacy-lock" | "--snapshot"))
    {
        eprintln!("bench_daemon: unknown flag {bad:?} (--smoke | --legacy-lock | --snapshot)");
        std::process::exit(2);
    }
    let p = if smoke { SMOKE } else { FULL };

    let mut results: Vec<ModeResult> = Vec::new();
    if !only_snapshot {
        results.push(run_mode(true, &p));
    }
    if !only_legacy {
        results.push(run_mode(false, &p));
    }
    for r in &results {
        println!(
            "{:<12} wall {:>8.1} ms  classify {:>7.1}/s  p50 {:>6.3} ms  p99 {:>6.3} ms  \
             requests {:>7.1}/s",
            r.mode,
            r.wall_ms,
            r.classify_rps,
            r.classify_p50_ms,
            r.classify_p99_ms,
            r.requests_per_sec,
        );
    }

    let speedup = match (
        results.iter().find(|r| r.mode == "legacy-lock"),
        results.iter().find(|r| r.mode == "snapshot"),
    ) {
        (Some(legacy), Some(snap)) => {
            let s = snap.classify_rps / legacy.classify_rps;
            println!("classify speedup (snapshot / legacy-lock): {s:.2}x");
            Some(s)
        }
        _ => None,
    };

    let mut rows = String::new();
    for r in &results {
        let _ = write!(
            rows,
            "{}    {{\"mode\": \"{}\", \"wall_ms\": {:.2}, \"classify_rps\": {:.2}, \
             \"classify_p50_ms\": {:.4}, \"classify_p99_ms\": {:.4}, \
             \"requests_per_sec\": {:.2}}}",
            if rows.is_empty() { "" } else { ",\n" },
            r.mode,
            r.wall_ms,
            r.classify_rps,
            r.classify_p50_ms,
            r.classify_p99_ms,
            r.requests_per_sec,
        );
    }
    let speedup_field = match speedup {
        Some(s) => format!(",\n  \"classify_speedup\": {s:.4}"),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"daemon\",\n  \"smoke\": {smoke},\n  \"clients\": {},\n  \
         \"cycles_per_client\": {},\n  \"seed_runs\": {},\n  \"records_per_run\": {},\n  \
         \"results\": [\n{rows}\n  ]{speedup_field}\n}}\n",
        p.clients, p.cycles_per_client, p.seed_runs, p.records_per_run,
    );
    std::fs::write("BENCH_daemon.json", &json).expect("write BENCH_daemon.json");
    println!("wrote BENCH_daemon.json");

    if let Some(s) = speedup {
        // The full comparison exists to prove the snapshot scheme wins;
        // smoke runs are too small to measure anything meaningful.
        if !smoke {
            assert!(
                s >= 2.0,
                "snapshot classify throughput only {s:.2}x the legacy lock (need >= 2x)"
            );
        }
    }
}
