//! Appendix B — parameter restriction.
//!
//! Paper: expressing functional relations among parameters in the resource
//! specification language (e.g. B+C+D = A, so D is determined and C's
//! range depends on B) prunes infeasible configurations and shrinks the
//! search space (Figure 10's dashed region), speeding up tuning.

use bench::{f, header, row};
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony_space::{parse_rsl, ParamDef, ParameterSpace};

fn main() {
    println!("Appendix B: search-space reduction by parameter restriction\n");

    // ---- Example 1: A = B + C + D with A = 10 -------------------------
    let a_total = 10i64;
    // Unrestricted: three independent parameters (the naive encoding).
    let unrestricted = ParameterSpace::builder()
        .param(ParamDef::int("B", 1, 8, 1, 1))
        .param(ParamDef::int("C", 1, 8, 1, 1))
        .param(ParamDef::int("D", 1, 8, 1, 1))
        .build()
        .unwrap();
    // Restricted: the paper's RSL — D is dropped entirely (decided by B, C).
    let restricted = parse_rsl(
        "{ harmonyBundle B { int {1 8 1} }}\n\
         { harmonyBundle C { int {1 9-$B 1} }}",
    )
    .unwrap();

    header(&["encoding", "params", "space size"], &[14, 8, 12]);
    row(
        &[
            "naive".into(),
            "3".into(),
            unrestricted.unconstrained_size().to_string(),
        ],
        &[14, 8, 12],
    );
    row(
        &[
            "restricted".into(),
            "2".into(),
            restricted
                .restricted_size(u128::MAX)
                .expect("small space")
                .to_string(),
        ],
        &[14, 8, 12],
    );

    // Tuning comparison on a process-allocation objective: throughput is
    // best when I/O, CPU and network processes balance 3/4/3; infeasible
    // allocations (sum != A) would crash the naive encoding — score 0.
    let perf = |b: i64, c: i64| {
        let d = a_total - b - c;
        if d < 1 {
            return 0.0;
        }
        100.0 - 3.0 * ((b - 3).pow(2) + (c - 4).pow(2) + (d - 3).pow(2)) as f64
    };
    let budget = 60usize;

    let naive_out = {
        let mut obj = FnObjective::new(move |cfg: &Configuration| perf(cfg.get(0), cfg.get(1)));
        // Tune B and C naively over full ranges and derive D; infeasible
        // combos simply score 0 (the system rejects them).
        let space = ParameterSpace::builder()
            .param(ParamDef::int("B", 1, 8, 1, 1))
            .param(ParamDef::int("C", 1, 8, 1, 1))
            .build()
            .unwrap();
        Tuner::new(space, TuningOptions::improved().with_max_iterations(budget)).run(&mut obj)
    };
    let restricted_out = {
        let mut obj = FnObjective::new(move |cfg: &Configuration| perf(cfg.get(0), cfg.get(1)));
        Tuner::new(
            restricted.clone(),
            TuningOptions::improved().with_max_iterations(budget),
        )
        .run(&mut obj)
    };

    println!();
    header(
        &["encoding", "best perf", "conv(iters)", "bad iters"],
        &[14, 10, 12, 10],
    );
    for (name, out) in [("naive", &naive_out), ("restricted", &restricted_out)] {
        row(
            &[
                name.into(),
                f(out.best_performance, 1),
                out.report.convergence_time.to_string(),
                out.report.bad_iterations.to_string(),
            ],
            &[14, 10, 12, 10],
        );
    }

    // ---- Example 2: matrix row partition ------------------------------
    // k = 24 rows into n = 4 blocks; P_i >= 1 and sums constrained.
    println!("\nmatrix row-partition example (k = 24 rows, n = 4 blocks):");
    let k = 24i64;
    let naive_size = (1..=4).map(|_| k as u128).product::<u128>();
    let doc = format!(
        "{{ harmonyBundle P1 {{ int {{1 {} 1}} }}}}\n\
         {{ harmonyBundle P2 {{ int {{1 {}-1-$P1 1}} }}}}\n\
         {{ harmonyBundle P3 {{ int {{1 {}-1-($P1+$P2) 1}} }}}}",
        k - 4 + 1,
        k,
        k
    );
    let partition = parse_rsl(&doc).unwrap();
    let restricted_size = partition.restricted_size(u128::MAX).expect("enumerable");
    println!("  naive size (each of 4 partitions 1..{k}): {naive_size}");
    println!("  restricted size (P4 determined, ranges chained): {restricted_size}");
    println!(
        "  reduction: {:.1}x",
        naive_size as f64 / restricted_size as f64
    );
    println!("\n(paper: 'only the meaningful configurations will be explored')");
}
