//! Figure 3 — triangulation estimation, demonstrated.
//!
//! The paper's Figure 3 illustrates estimating the performance Pt at a
//! target configuration Ct from three recorded configurations C1..C3 by
//! fitting a plane through their (configuration, performance) points.
//! This demonstrator performs exactly that computation on a synthetic
//! plane, shows the recovered coefficients, and then repeats it on the
//! web-service simulator where the surface is *not* planar, comparing
//! estimate vs. truth at increasing distances from the records.

use bench::f;
use harmony::estimate::estimate_performance;
use harmony::history::TuningRecord;
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};

fn main() {
    // --- Exact reconstruction on a plane -------------------------------
    println!("Figure 3 (a): exact plane interpolation\n");
    let space = ParameterSpace::builder()
        .param(ParamDef::int("p1", 0, 20, 10, 1))
        .param(ParamDef::int("p2", 0, 20, 10, 1))
        .build()
        .unwrap();
    let plane = |a: i64, b: i64| 4.0 * a as f64 - 1.5 * b as f64 + 30.0;
    let records: Vec<TuningRecord> = [(2i64, 3i64), (15, 4), (6, 17)]
        .iter()
        .map(|&(a, b)| TuningRecord {
            values: vec![a, b],
            performance: plane(a, b),
        })
        .collect();
    for (name, r) in ["C1", "C2", "C3"].iter().zip(&records) {
        println!("  {name} = {:?}  P = {:.1}", r.values, r.performance);
    }
    let target = Configuration::new(vec![11, 9]);
    let pt = estimate_performance(&space, &records, &target).expect("estimable");
    println!(
        "  Ct = {target}  Pt (estimated) = {pt:.3}  truth = {:.3}\n",
        plane(11, 9)
    );

    // --- Interpolation error growth on the real surface ----------------
    println!("Figure 3 (b): estimation error vs distance on the web system\n");
    let sys = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.0, 0);
    let wspace = sys.space().clone();
    let base = wspace.default_configuration();
    // Records: the default plus a small neighbourhood.
    let mut records = vec![TuningRecord::new(&base, sys.evaluate_clean(&base))];
    for j in 0..wspace.len() {
        let p = wspace.param(j);
        let v = (base.get(j) + p.step() * 4).min(p.static_max());
        let cfg = base.with_value(j, v);
        records.push(TuningRecord::new(&cfg, sys.evaluate_clean(&cfg)));
    }
    println!(
        "  {:>24}  {:>9}  {:>9}  {:>8}",
        "probe", "estimate", "truth", "error"
    );
    let cache = wspace.index_of("PROXYCacheMem").expect("param exists");
    for delta in [4i64, 16, 48, 96, 160] {
        let p = wspace.param(cache);
        let v = (base.get(cache) + delta).min(p.static_max());
        let probe = base.with_value(cache, v);
        let est = estimate_performance(&wspace, &records, &probe).expect("estimable");
        let truth = sys.evaluate_clean(&probe);
        println!(
            "  {:>24}  {:>9}  {:>9}  {:>7}%",
            format!("cache_mem +{delta}"),
            f(est, 2),
            f(truth, 2),
            f((est - truth) / truth * 100.0, 2),
        );
    }
    println!("\n(the local hyperplane is exact near the records and degrades with");
    println!(" extrapolation distance — why §4.3 uses vertices close to the target)");
}
