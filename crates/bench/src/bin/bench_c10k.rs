//! c10k benchmark: connection scalability of the daemon's two serving
//! models.
//!
//! Drives many concurrent tuning sessions against a daemon running
//! either the event-driven epoll reactor (the default) or the legacy
//! thread-per-connection model (`DaemonConfig::threaded`), and measures
//! what each model can sustain:
//!
//! * **sustain** — the reactor alone, at ten thousand concurrent
//!   sessions: every connection opens a session and holds it until all
//!   sessions are live simultaneously, then runs its script to
//!   completion. Proves the reactor really carries 10k concurrent
//!   sessions on one listener.
//! * **compare** — reactor vs threaded at high (but thread-survivable)
//!   concurrency, identical workload, so the throughput ratio isolates
//!   the serving model.
//!
//! The daemon runs in a child process (spawned from this same binary
//! with `--daemon <mode>`) so its peak RSS (`VmHWM`) is attributable
//! per model and the client's ten thousand sockets don't share a file
//! table with the server's. The client side is a single-threaded,
//! poll-driven state machine over nonblocking sockets — a
//! thread-per-connection *client* at 10k would itself be the bottleneck.
//!
//! Sessions open with a `Hello` capping the protocol at v2 (JSON
//! framing) or v3 (binary framing, the daemon's preference), then run
//! `SessionStart` over a 32-parameter space, `FETCHES` idempotent
//! `Fetch`es, `SessionEnd` — each session is `FETCHES + 3` requests.
//! Nothing is reported, so no run is recorded and the experience
//! database stays empty — the copy-on-write append path is
//! `bench_daemon`'s subject; here it would only blur the
//! connection-model comparison.
//!
//! Reports connections sustained, requests/s (whole phase and the
//! steady-state loop after the all-sessions-live barrier), p95/p99
//! request RTT, and the daemon's peak RSS per model and wire format,
//! and writes `BENCH_c10k.json`. The full run asserts the reactor
//! sustains all 10k sessions, beats the threaded model by ≥ 2x on
//! requests/s, and — when both formats run — that binary framing beats
//! JSON by ≥ 1.25x on the reactor's steady-state loop throughput at the
//! compare concurrency (the connect ramp is identical TCP work in both
//! formats, so the format gate excludes it). `--format json|binary`
//! restricts the phases to one wire format (the default runs both);
//! `--smoke` shrinks everything for CI and only sanity-checks that
//! every session completes.

use harmony_net::codec::{encode_frame_as, WireFormat};
use harmony_net::poll::Poller;
use harmony_net::protocol::{Request, SpaceSpec};
use harmony_net::server::{DaemonConfig, TuningDaemon};
use harmony_net::wire::response_wire_kind;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::process::{Child, Command, Stdio};
use std::rc::Rc;
use std::time::{Duration, Instant};

/// Tuning-space width. Real spaces have tens of parameters (the paper's
/// web-system study tunes dozens), and the width is what puts payload on
/// the wire: every `Config` response carries one value per parameter, so
/// a toy two-parameter space would measure syscalls, not framing.
const PARAMS: usize = 32;

fn rsl() -> String {
    (0..PARAMS)
        .map(|i| format!("{{ harmonyBundle p{i} {{ int {{0 100 1}} }}}}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Fetches per session; the script is `Hello`, `SessionStart`,
/// `FETCHES` × `Fetch`, `SessionEnd`, so each session is `FETCHES + 3`
/// requests.
const FETCHES: usize = 6;

/// Give up on a phase after this long (a hung daemon or a lost frame
/// would otherwise wedge the bench forever).
const PHASE_DEADLINE: Duration = Duration::from_secs(300);

struct Params {
    sustain_conns: usize,
    compare_conns: usize,
}

const FULL: Params = Params {
    sustain_conns: 10_000,
    compare_conns: 6_000,
};

const SMOKE: Params = Params {
    sustain_conns: 128,
    compare_conns: 64,
};

// ---------------------------------------------------------------------
// RLIMIT_NOFILE: ten thousand client sockets need more than the default
// 1024 descriptors. `std` links libc, so — like the epoll wrapper and
// the CLI's signal(2) handling — declaring the two entry points beats a
// bindings dependency.

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

unsafe extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

const RLIMIT_NOFILE: i32 = 7;

/// Raise the soft fd limit to the hard limit. Children inherit it.
fn raise_nofile_limit() {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return;
    }
    if lim.cur < lim.max {
        lim.cur = lim.max;
        unsafe { setrlimit(RLIMIT_NOFILE, &lim) };
    }
}

// ---------------------------------------------------------------------
// Daemon child process.

/// `--daemon <mode>`: run the daemon until stdin closes, reporting the
/// bound address up front and peak RSS on the way out.
fn run_daemon(mode: &str, max_conns: usize) -> ! {
    let handle = TuningDaemon::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threaded: mode == "threaded",
        max_connections: max_conns,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    println!("ADDR {}", handle.addr());
    std::io::stdout().flush().expect("flush addr");
    // Park until the parent closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);
    handle.shutdown();
    println!("VMHWM_KB {}", peak_rss_kb());
    std::process::exit(0);
}

/// Peak resident set of this process, from `/proc/self/status` `VmHWM`.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

struct Daemon {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
}

/// Spawn this binary as a daemon child and read back its address.
fn spawn_daemon(mode: &str, max_conns: usize) -> Daemon {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .args([
            "--daemon",
            mode,
            "--max-conns-internal",
            &max_conns.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon child");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read child addr");
    let addr = line
        .strip_prefix("ADDR ")
        .and_then(|a| a.trim().parse().ok())
        .unwrap_or_else(|| panic!("bad daemon hello {line:?}"));
    Daemon {
        child,
        stdout,
        addr,
    }
}

impl Daemon {
    /// Close stdin (the child's cue to shut down) and collect its peak
    /// RSS report.
    fn stop(mut self) -> u64 {
        drop(self.child.stdin.take());
        let mut rss = 0;
        let mut line = String::new();
        while self.stdout.read_line(&mut line).unwrap_or(0) > 0 {
            if let Some(rest) = line.strip_prefix("VMHWM_KB ") {
                rss = rest.trim().parse().unwrap_or(0);
            }
            line.clear();
        }
        let _ = self.child.wait();
        rss
    }
}

// ---------------------------------------------------------------------
// Poll-driven client.

fn frame(format: WireFormat, req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame_as(format, req, &mut buf).expect("encode request");
    buf
}

/// One client connection's script position.
#[derive(PartialEq)]
enum Step {
    /// `Hello` in flight; the answer fixes the connection's wire format.
    Greeting,
    /// `SessionStart` in flight; holds at the barrier once answered.
    Starting,
    /// Parked at the barrier until every session is live.
    Holding,
    /// `Fetch` in flight, this many (including it) still to go.
    Fetching(usize),
    /// `SessionEnd` in flight.
    Ending,
    Finished,
    Failed,
}

struct Conn {
    stream: TcpStream,
    step: Step,
    /// The connection's current wire format: JSON until the daemon's
    /// `Hello` answer lands, then whatever the session negotiated.
    format: WireFormat,
    /// The format this phase negotiates (what `format` becomes once the
    /// `Hello` exchange completes).
    target: WireFormat,
    /// The phase's pre-encoded `SessionStart` frame, already in the
    /// negotiated format; shared by every connection.
    start: std::rc::Rc<Vec<u8>>,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    sent_at: Instant,
    want_write: bool,
}

impl Conn {
    fn queue(&mut self, req: &Request) {
        let f = frame(self.format, req);
        self.wbuf.extend_from_slice(&f);
        self.sent_at = Instant::now();
    }

    /// Write as much of `wbuf` as the socket accepts.
    fn flush(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        self.want_write = !self.wbuf.is_empty();
        true
    }

    /// Read everything available; `false` on error or EOF.
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Pop one complete response frame, if buffered, reduced to its
    /// variant name (`"Config"`, `"SessionSummary"`, …). The script only
    /// branches on the message *kind*, and skipping the full decode
    /// keeps the client cheap — it shares a core with the daemon under
    /// test. (It also sidesteps a wart: an unreported session's summary
    /// carries `performance: NaN`, which JSON encodes as `null` and a
    /// strict decode would refuse.) Binary frames carry the variant in
    /// their leading tag byte; JSON frames carry it as the first
    /// double-quoted string of the externally-tagged encoding.
    fn next_response(&mut self) -> Option<String> {
        if self.rbuf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(self.rbuf[..4].try_into().unwrap()) as usize;
        if self.rbuf.len() < 4 + len {
            return None;
        }
        let payload = &self.rbuf[4..4 + len];
        let tag = match self.format {
            WireFormat::Binary => response_wire_kind(payload).unwrap_or("").to_string(),
            WireFormat::Json => {
                let text = String::from_utf8_lossy(payload);
                text.split('"').nth(1).unwrap_or("").to_string()
            }
        };
        self.rbuf.drain(..4 + len);
        Some(tag)
    }
}

struct PhaseResult {
    phase: &'static str,
    mode: &'static str,
    format: &'static str,
    connections: usize,
    sustained: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Steady-state request throughput: requests answered from barrier
    /// release (every session live) to the last session's summary. The
    /// connect ramp before the barrier is TCP/accept cost, identical
    /// across wire formats, so the format comparison gates on this.
    loop_requests_per_sec: f64,
    rtt_p95_ms: f64,
    rtt_p99_ms: f64,
    daemon_peak_rss_kb: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Connections allowed to have an unanswered `SessionStart` while the
/// ramp is still connecting. A sequential client can out-connect the
/// accept queue of a daemon sharing its core — every overflowed SYN
/// then costs a ~1s retransmission timeout — and the c10k claim is
/// about concurrent *established* sessions, not about racing the
/// listener backlog. Bounding unanswered work keeps the ramp at the
/// daemon's own accept rate.
const RAMP_WINDOW: usize = 64;

/// The poll-driven client side of one phase.
struct Client {
    poller: Poller,
    by_token: HashMap<u64, Conn>,
    ready: Vec<harmony_net::poll::Readiness>,
    rtts_ms: Vec<f64>,
    requests: usize,
    sustained: usize,
    /// Connections parked at the barrier (answered `SessionStart`).
    holding: usize,
    /// Connections removed from `by_token` for any reason.
    closed: usize,
}

impl Client {
    /// One poll round: wait up to `timeout_ms`, then advance every
    /// ready connection.
    fn pump(&mut self, timeout_ms: i32) {
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        self.poller
            .wait(&mut ready, timeout_ms)
            .expect("client poll");
        for r in &ready {
            self.advance(r);
        }
        self.ready = ready;
    }

    fn advance(&mut self, r: &harmony_net::poll::Readiness) {
        let Some(conn) = self.by_token.get_mut(&r.token) else {
            return;
        };
        let mut alive = true;
        if r.writable {
            alive = conn.flush();
        }
        if alive && r.readable {
            alive = conn.fill();
            // Drain every complete response already buffered;
            // `Finished` and `Failed` end the script.
            loop {
                if !alive || matches!(conn.step, Step::Finished | Step::Failed) {
                    break;
                }
                let Some(resp) = conn.next_response() else {
                    break;
                };
                self.rtts_ms
                    .push(conn.sent_at.elapsed().as_secs_f64() * 1e3);
                self.requests += 1;
                match (&conn.step, resp.as_str()) {
                    (Step::Greeting, "Hello") => {
                        // The Hello answer travels in the pre-negotiation
                        // format; everything after speaks the negotiated
                        // one.
                        conn.format = conn.target;
                        conn.step = Step::Starting;
                        let start = Rc::clone(&conn.start);
                        conn.wbuf.extend_from_slice(&start);
                        conn.sent_at = Instant::now();
                    }
                    (Step::Starting, "SessionStarted") => {
                        // Barrier: hold until every session is live,
                        // so `conns` sessions really are concurrent.
                        conn.step = Step::Holding;
                        self.holding += 1;
                    }
                    (Step::Fetching(left), "Config") => {
                        if let Some(more) = left.checked_sub(1).filter(|&m| m > 0) {
                            conn.step = Step::Fetching(more);
                            conn.queue(&Request::Fetch);
                        } else {
                            conn.step = Step::Ending;
                            conn.queue(&Request::SessionEnd);
                        }
                    }
                    (Step::Ending, "SessionSummary") => {
                        conn.step = Step::Finished;
                    }
                    (_, other) => {
                        eprintln!("bench_c10k: unexpected response {other:?}");
                        conn.step = Step::Failed;
                    }
                }
            }
        }
        if alive && !conn.wbuf.is_empty() {
            alive = conn.flush();
        }
        if alive {
            let done = matches!(conn.step, Step::Finished | Step::Failed);
            if done {
                self.sustained += usize::from(conn.step == Step::Finished);
                self.close(r.token);
            } else {
                self.poller
                    .modify(conn.stream.as_raw_fd(), r.token, true, conn.want_write)
                    .expect("interest update");
            }
        } else {
            eprintln!("bench_c10k: connection {} died mid-session", r.token);
            self.close(r.token);
        }
    }

    fn close(&mut self, token: u64) {
        let conn = self.by_token.remove(&token).unwrap();
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.closed += 1;
    }
}

/// Drive `conns` concurrent sessions against a fresh daemon in `mode`,
/// framing everything after the handshake in `format`.
fn run_phase(
    phase: &'static str,
    mode: &'static str,
    format: WireFormat,
    conns: usize,
) -> PhaseResult {
    let daemon = spawn_daemon(mode, conns + 8);
    let addr = daemon.addr;

    // Cap the handshake at v2 for JSON so the daemon never switches the
    // connection to binary framing; v3 for binary.
    let hello_req = Request::Hello {
        version: None,
        min_version: Some(1),
        max_version: Some(if format == WireFormat::Binary { 3 } else { 2 }),
        client: "bench_c10k".into(),
    };
    let start_req = Request::SessionStart {
        space: SpaceSpec::Rsl(rsl()),
        label: "c10k".into(),
        characteristics: vec![0.5, 0.5],
        max_iterations: Some(FETCHES + 2),
        engine: None,
    };
    let start_frame = Rc::new(frame(format, &start_req));

    let started = Instant::now();
    let mut client = Client {
        poller: Poller::new().expect("client poller"),
        by_token: HashMap::with_capacity(conns),
        ready: Vec::with_capacity(1024),
        rtts_ms: Vec::with_capacity(conns * (FETCHES + 2)),
        requests: 0,
        sustained: 0,
        holding: 0,
        closed: 0,
    };
    for token in 0..conns as u64 {
        // Paced ramp: stay at most `RAMP_WINDOW` unanswered
        // `SessionStart`s ahead of the daemon.
        while (token as usize).saturating_sub(client.holding + client.closed) >= RAMP_WINDOW {
            if started.elapsed() > PHASE_DEADLINE {
                panic!(
                    "bench_c10k: {phase}/{mode}: deadline during connect ramp at {token}/{conns}"
                );
            }
            client.pump(10);
        }
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn {
            stream,
            step: Step::Greeting,
            format: WireFormat::Json,
            target: format,
            start: Rc::clone(&start_frame),
            wbuf: Vec::new(),
            wpos: 0,
            rbuf: Vec::new(),
            sent_at: Instant::now(),
            want_write: false,
        };
        conn.queue(&hello_req);
        if !conn.flush() {
            panic!("connection {token} died during Hello");
        }
        client
            .poller
            .add(conn.stream.as_raw_fd(), token, true, conn.want_write)
            .expect("register");
        client.by_token.insert(token, conn);
    }

    let mut released: Option<(Instant, usize)> = None;
    while !client.by_token.is_empty() {
        if started.elapsed() > PHASE_DEADLINE {
            eprintln!(
                "bench_c10k: {phase}/{mode}: deadline hit with {} connections unfinished",
                client.by_token.len()
            );
            break;
        }
        client.pump(100);
        if released.is_none() && client.holding >= client.by_token.len() {
            // Every session answered SessionStart: all of them are live
            // at once. Release the barrier and run the scripts out.
            released = Some((Instant::now(), client.requests));
            for (&token, conn) in client.by_token.iter_mut() {
                conn.step = Step::Fetching(FETCHES);
                conn.queue(&Request::Fetch);
                if conn.flush() {
                    let _ =
                        client
                            .poller
                            .modify(conn.stream.as_raw_fd(), token, true, conn.want_write);
                }
            }
        }
    }
    let (requests, sustained, mut rtts_ms) = (client.requests, client.sustained, client.rtts_ms);
    let wall = started.elapsed().as_secs_f64();
    let loop_rate = released
        .map(|(at, before)| (requests - before) as f64 / at.elapsed().as_secs_f64())
        .unwrap_or(0.0);
    let rss = daemon.stop();

    rtts_ms.sort_by(f64::total_cmp);
    PhaseResult {
        phase,
        mode,
        format: match format {
            WireFormat::Json => "json",
            WireFormat::Binary => "binary",
        },
        connections: conns,
        sustained,
        wall_ms: wall * 1e3,
        requests_per_sec: requests as f64 / wall,
        loop_requests_per_sec: loop_rate,
        rtt_p95_ms: percentile(&rtts_ms, 0.95),
        rtt_p99_ms: percentile(&rtts_ms, 0.99),
        daemon_peak_rss_kb: rss,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--daemon") {
        let mode = args.get(1).expect("--daemon needs a mode").clone();
        let max_conns = args
            .iter()
            .position(|a| a == "--max-conns-internal")
            .and_then(|i| args.get(i + 1))
            .and_then(|n| n.parse().ok())
            .unwrap_or(64);
        run_daemon(&mode, max_conns);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut only_format = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--format" => {
                only_format = match it.next().map(String::as_str) {
                    Some("json") => Some(WireFormat::Json),
                    Some("binary") => Some(WireFormat::Binary),
                    other => {
                        eprintln!("bench_c10k: --format needs json or binary, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            bad => {
                eprintln!("bench_c10k: unknown flag {bad:?} (--smoke | --format json|binary)");
                std::process::exit(2);
            }
        }
    }
    let p = if smoke { SMOKE } else { FULL };
    raise_nofile_limit();

    // The sustain phase runs the daemon's preferred format; the compare
    // phases measure the serving models on JSON and the wire formats on
    // the reactor. With `--format` everything runs in that one format
    // (and the cross-format speedup is not computed).
    let mut results = Vec::new();
    match only_format {
        None => {
            results.push(run_phase(
                "sustain",
                "reactor",
                WireFormat::Binary,
                p.sustain_conns,
            ));
            results.push(run_phase(
                "compare",
                "reactor",
                WireFormat::Json,
                p.compare_conns,
            ));
            results.push(run_phase(
                "compare",
                "reactor",
                WireFormat::Binary,
                p.compare_conns,
            ));
            results.push(run_phase(
                "compare",
                "threaded",
                WireFormat::Json,
                p.compare_conns,
            ));
        }
        Some(f) => {
            results.push(run_phase("sustain", "reactor", f, p.sustain_conns));
            results.push(run_phase("compare", "reactor", f, p.compare_conns));
            results.push(run_phase("compare", "threaded", f, p.compare_conns));
        }
    }
    for r in &results {
        println!(
            "{:<8} {:<9} {:<7} conns {:>6}  sustained {:>6}  wall {:>9.1} ms  requests {:>8.1}/s  \
             loop {:>8.1}/s  rtt p95 {:>7.2} ms  p99 {:>7.2} ms  daemon peak rss {:>7} kB",
            r.phase,
            r.mode,
            r.format,
            r.connections,
            r.sustained,
            r.wall_ms,
            r.requests_per_sec,
            r.loop_requests_per_sec,
            r.rtt_p95_ms,
            r.rtt_p99_ms,
            r.daemon_peak_rss_kb,
        );
    }

    let compare = |mode: &str, format: &str| {
        results
            .iter()
            .find(|r| r.phase == "compare" && r.mode == mode && r.format == format)
    };
    let reactor_json = compare("reactor", "json");
    let reactor = reactor_json
        .or_else(|| compare("reactor", "binary"))
        .expect("a reactor compare phase ran");
    let threaded = compare("threaded", "json")
        .or_else(|| compare("threaded", "binary"))
        .expect("a threaded compare phase ran");
    let speedup = reactor.requests_per_sec / threaded.requests_per_sec;
    println!("compare speedup (reactor / threaded): {speedup:.2}x");
    // The format comparison gates on steady-state loop throughput: the
    // connect ramp ahead of the barrier is TCP and accept-queue cost,
    // byte-for-byte identical work in either format, and including it
    // would dilute the thing under test (per-request framing).
    let format_speedup = match (reactor_json, compare("reactor", "binary")) {
        (Some(json), Some(binary)) => {
            let s = binary.loop_requests_per_sec / json.loop_requests_per_sec;
            println!("format speedup (binary / json, reactor steady-state loop): {s:.2}x");
            Some(s)
        }
        _ => None,
    };

    let mut rows = String::new();
    for r in &results {
        let _ = write!(
            rows,
            "{}    {{\"phase\": \"{}\", \"mode\": \"{}\", \"format\": \"{}\", \
             \"connections\": {}, \
             \"sustained\": {}, \"wall_ms\": {:.2}, \"requests_per_sec\": {:.2}, \
             \"loop_requests_per_sec\": {:.2}, \
             \"rtt_p95_ms\": {:.4}, \"rtt_p99_ms\": {:.4}, \"daemon_peak_rss_kb\": {}}}",
            if rows.is_empty() { "" } else { ",\n" },
            r.phase,
            r.mode,
            r.format,
            r.connections,
            r.sustained,
            r.wall_ms,
            r.requests_per_sec,
            r.loop_requests_per_sec,
            r.rtt_p95_ms,
            r.rtt_p99_ms,
            r.daemon_peak_rss_kb,
        );
    }
    let format_row = match format_speedup {
        Some(s) => format!(",\n  \"format_speedup\": {s:.4}"),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"c10k\",\n  \"smoke\": {smoke},\n  \
         \"requests_per_session\": {},\n  \"results\": [\n{rows}\n  ],\n  \
         \"compare_speedup\": {speedup:.4}{format_row}\n}}\n",
        FETCHES + 3,
    );
    std::fs::write("BENCH_c10k.json", &json).expect("write BENCH_c10k.json");
    println!("wrote BENCH_c10k.json");

    // Every session must complete in every phase, smoke or full: a
    // dropped connection is a correctness bug, not noise.
    for r in &results {
        assert_eq!(
            r.sustained, r.connections,
            "{}/{}/{}: only {} of {} sessions completed",
            r.phase, r.mode, r.format, r.sustained, r.connections
        );
    }
    if !smoke {
        // The full comparisons exist to prove the reactor wins at high
        // concurrency and binary framing wins on the wire; smoke runs
        // are too small to measure anything.
        assert!(
            speedup >= 2.0,
            "reactor only {speedup:.2}x the threaded model at {} connections (need >= 2x)",
            p.compare_conns
        );
        if let Some(s) = format_speedup {
            assert!(
                s >= 1.25,
                "binary framing only {s:.2}x JSON on the reactor's steady-state loop at {} \
                 connections (need >= 1.25x)",
                p.compare_conns
            );
        }
    }
}
