//! c10k benchmark: connection scalability of the daemon's two serving
//! models.
//!
//! Drives many concurrent tuning sessions against a daemon running
//! either the event-driven epoll reactor (the default) or the legacy
//! thread-per-connection model (`DaemonConfig::threaded`), and measures
//! what each model can sustain:
//!
//! * **sustain** — the reactor alone, at ten thousand concurrent
//!   sessions: every connection opens a session and holds it until all
//!   sessions are live simultaneously, then runs its script to
//!   completion. Proves the reactor really carries 10k concurrent
//!   sessions on one listener.
//! * **compare** — reactor vs threaded at high (but thread-survivable)
//!   concurrency, identical workload, so the throughput ratio isolates
//!   the serving model.
//!
//! The daemon runs in a child process (spawned from this same binary
//! with `--daemon <mode>`) so its peak RSS (`VmHWM`) is attributable
//! per model and the client's ten thousand sockets don't share a file
//! table with the server's. The client side is a single-threaded,
//! poll-driven state machine over nonblocking sockets — a
//! thread-per-connection *client* at 10k would itself be the bottleneck.
//!
//! Sessions speak raw protocol v1 (no `Hello`, so no session tokens):
//! `SessionStart`, two idempotent `Fetch`es, `SessionEnd`. Nothing is
//! reported, so no run is recorded and the experience database stays
//! empty — the copy-on-write append path is `bench_daemon`'s subject;
//! here it would only blur the connection-model comparison.
//!
//! Reports connections sustained, requests/s, p95/p99 request RTT, and
//! the daemon's peak RSS per model, and writes `BENCH_c10k.json`. The
//! full run asserts the reactor sustains all 10k sessions and beats the
//! threaded model by ≥ 2x on requests/s; `--smoke` shrinks everything
//! for CI and only sanity-checks that every session completes.

use harmony_net::poll::Poller;
use harmony_net::protocol::{Request, SpaceSpec};
use harmony_net::server::{DaemonConfig, TuningDaemon};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::AsRawFd;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const RSL: &str = "{ harmonyBundle x { int {0 100 1} }}\n{ harmonyBundle y { int {0 100 1} }}";

/// Fetches per session; the script is `SessionStart`, `FETCHES` ×
/// `Fetch`, `SessionEnd`, so each session is `FETCHES + 2` requests.
const FETCHES: usize = 2;

/// Give up on a phase after this long (a hung daemon or a lost frame
/// would otherwise wedge the bench forever).
const PHASE_DEADLINE: Duration = Duration::from_secs(300);

struct Params {
    sustain_conns: usize,
    compare_conns: usize,
}

const FULL: Params = Params {
    sustain_conns: 10_000,
    compare_conns: 6_000,
};

const SMOKE: Params = Params {
    sustain_conns: 128,
    compare_conns: 64,
};

// ---------------------------------------------------------------------
// RLIMIT_NOFILE: ten thousand client sockets need more than the default
// 1024 descriptors. `std` links libc, so — like the epoll wrapper and
// the CLI's signal(2) handling — declaring the two entry points beats a
// bindings dependency.

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

unsafe extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

const RLIMIT_NOFILE: i32 = 7;

/// Raise the soft fd limit to the hard limit. Children inherit it.
fn raise_nofile_limit() {
    let mut lim = RLimit { cur: 0, max: 0 };
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return;
    }
    if lim.cur < lim.max {
        lim.cur = lim.max;
        unsafe { setrlimit(RLIMIT_NOFILE, &lim) };
    }
}

// ---------------------------------------------------------------------
// Daemon child process.

/// `--daemon <mode>`: run the daemon until stdin closes, reporting the
/// bound address up front and peak RSS on the way out.
fn run_daemon(mode: &str, max_conns: usize) -> ! {
    let handle = TuningDaemon::start(DaemonConfig {
        listen: "127.0.0.1:0".into(),
        threaded: mode == "threaded",
        max_connections: max_conns,
        ..DaemonConfig::default()
    })
    .expect("daemon starts");
    println!("ADDR {}", handle.addr());
    std::io::stdout().flush().expect("flush addr");
    // Park until the parent closes our stdin.
    let mut sink = Vec::new();
    let _ = std::io::stdin().lock().read_to_end(&mut sink);
    handle.shutdown();
    println!("VMHWM_KB {}", peak_rss_kb());
    std::process::exit(0);
}

/// Peak resident set of this process, from `/proc/self/status` `VmHWM`.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or(0)
}

struct Daemon {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
}

/// Spawn this binary as a daemon child and read back its address.
fn spawn_daemon(mode: &str, max_conns: usize) -> Daemon {
    let exe = std::env::current_exe().expect("own path");
    let mut child = Command::new(exe)
        .args([
            "--daemon",
            mode,
            "--max-conns-internal",
            &max_conns.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon child");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read child addr");
    let addr = line
        .strip_prefix("ADDR ")
        .and_then(|a| a.trim().parse().ok())
        .unwrap_or_else(|| panic!("bad daemon hello {line:?}"));
    Daemon {
        child,
        stdout,
        addr,
    }
}

impl Daemon {
    /// Close stdin (the child's cue to shut down) and collect its peak
    /// RSS report.
    fn stop(mut self) -> u64 {
        drop(self.child.stdin.take());
        let mut rss = 0;
        let mut line = String::new();
        while self.stdout.read_line(&mut line).unwrap_or(0) > 0 {
            if let Some(rest) = line.strip_prefix("VMHWM_KB ") {
                rss = rest.trim().parse().unwrap_or(0);
            }
            line.clear();
        }
        let _ = self.child.wait();
        rss
    }
}

// ---------------------------------------------------------------------
// Poll-driven client.

fn frame(req: &Request) -> Vec<u8> {
    let payload = serde_json::to_vec(req).expect("encode request");
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&payload);
    buf
}

/// One client connection's script position.
#[derive(PartialEq)]
enum Step {
    /// `SessionStart` in flight; holds at the barrier once answered.
    Starting,
    /// Parked at the barrier until every session is live.
    Holding,
    /// `Fetch` in flight, this many (including it) still to go.
    Fetching(usize),
    /// `SessionEnd` in flight.
    Ending,
    Finished,
    Failed,
}

struct Conn {
    stream: TcpStream,
    step: Step,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    sent_at: Instant,
    want_write: bool,
}

impl Conn {
    fn queue(&mut self, req: &Request) {
        self.wbuf.extend_from_slice(&frame(req));
        self.sent_at = Instant::now();
    }

    /// Write as much of `wbuf` as the socket accepts.
    fn flush(&mut self) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        }
        self.want_write = !self.wbuf.is_empty();
        true
    }

    /// Read everything available; `false` on error or EOF.
    fn fill(&mut self) -> bool {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return false,
                Ok(n) => self.rbuf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Pop one complete response frame, if buffered, reduced to its
    /// externally-tagged enum tag (`"Config"`, `"SessionSummary"`, …).
    /// The script only branches on the message *kind*, and skipping the
    /// full decode keeps the client cheap — it shares a core with the
    /// daemon under test. (It also sidesteps a wart: an unreported
    /// session's summary carries `performance: NaN`, which JSON encodes
    /// as `null` and a strict decode would refuse.)
    fn next_response(&mut self) -> Option<String> {
        if self.rbuf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(self.rbuf[..4].try_into().unwrap()) as usize;
        if self.rbuf.len() < 4 + len {
            return None;
        }
        let payload = &self.rbuf[4..4 + len];
        // `{"Tag":{…}}` for struct variants, `"Tag"` for unit variants:
        // either way the tag is the first double-quoted string.
        let text = String::from_utf8_lossy(payload);
        let tag = text.split('"').nth(1).unwrap_or("").to_string();
        self.rbuf.drain(..4 + len);
        Some(tag)
    }
}

struct PhaseResult {
    phase: &'static str,
    mode: &'static str,
    connections: usize,
    sustained: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    rtt_p95_ms: f64,
    rtt_p99_ms: f64,
    daemon_peak_rss_kb: u64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Connections allowed to have an unanswered `SessionStart` while the
/// ramp is still connecting. A sequential client can out-connect the
/// accept queue of a daemon sharing its core — every overflowed SYN
/// then costs a ~1s retransmission timeout — and the c10k claim is
/// about concurrent *established* sessions, not about racing the
/// listener backlog. Bounding unanswered work keeps the ramp at the
/// daemon's own accept rate.
const RAMP_WINDOW: usize = 64;

/// The poll-driven client side of one phase.
struct Client {
    poller: Poller,
    by_token: HashMap<u64, Conn>,
    ready: Vec<harmony_net::poll::Readiness>,
    rtts_ms: Vec<f64>,
    requests: usize,
    sustained: usize,
    /// Connections parked at the barrier (answered `SessionStart`).
    holding: usize,
    /// Connections removed from `by_token` for any reason.
    closed: usize,
}

impl Client {
    /// One poll round: wait up to `timeout_ms`, then advance every
    /// ready connection.
    fn pump(&mut self, timeout_ms: i32) {
        let mut ready = std::mem::take(&mut self.ready);
        ready.clear();
        self.poller
            .wait(&mut ready, timeout_ms)
            .expect("client poll");
        for r in &ready {
            self.advance(r);
        }
        self.ready = ready;
    }

    fn advance(&mut self, r: &harmony_net::poll::Readiness) {
        let Some(conn) = self.by_token.get_mut(&r.token) else {
            return;
        };
        let mut alive = true;
        if r.writable {
            alive = conn.flush();
        }
        if alive && r.readable {
            alive = conn.fill();
            // Drain every complete response already buffered;
            // `Finished` and `Failed` end the script.
            loop {
                if !alive || matches!(conn.step, Step::Finished | Step::Failed) {
                    break;
                }
                let Some(resp) = conn.next_response() else {
                    break;
                };
                self.rtts_ms
                    .push(conn.sent_at.elapsed().as_secs_f64() * 1e3);
                self.requests += 1;
                match (&conn.step, resp.as_str()) {
                    (Step::Starting, "SessionStarted") => {
                        // Barrier: hold until every session is live,
                        // so `conns` sessions really are concurrent.
                        conn.step = Step::Holding;
                        self.holding += 1;
                    }
                    (Step::Fetching(left), "Config") => {
                        if let Some(more) = left.checked_sub(1).filter(|&m| m > 0) {
                            conn.step = Step::Fetching(more);
                            conn.queue(&Request::Fetch);
                        } else {
                            conn.step = Step::Ending;
                            conn.queue(&Request::SessionEnd);
                        }
                    }
                    (Step::Ending, "SessionSummary") => {
                        conn.step = Step::Finished;
                    }
                    (_, other) => {
                        eprintln!("bench_c10k: unexpected response {other:?}");
                        conn.step = Step::Failed;
                    }
                }
            }
        }
        if alive && !conn.wbuf.is_empty() {
            alive = conn.flush();
        }
        if alive {
            let done = matches!(conn.step, Step::Finished | Step::Failed);
            if done {
                self.sustained += usize::from(conn.step == Step::Finished);
                self.close(r.token);
            } else {
                self.poller
                    .modify(conn.stream.as_raw_fd(), r.token, true, conn.want_write)
                    .expect("interest update");
            }
        } else {
            eprintln!("bench_c10k: connection {} died mid-session", r.token);
            self.close(r.token);
        }
    }

    fn close(&mut self, token: u64) {
        let conn = self.by_token.remove(&token).unwrap();
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.closed += 1;
    }
}

/// Drive `conns` concurrent sessions against a fresh daemon in `mode`.
fn run_phase(phase: &'static str, mode: &'static str, conns: usize) -> PhaseResult {
    let daemon = spawn_daemon(mode, conns + 8);
    let addr = daemon.addr;

    let start_req = Request::SessionStart {
        space: SpaceSpec::Rsl(RSL.into()),
        label: "c10k".into(),
        characteristics: vec![0.5, 0.5],
        max_iterations: Some(4),
    };

    let started = Instant::now();
    let mut client = Client {
        poller: Poller::new().expect("client poller"),
        by_token: HashMap::with_capacity(conns),
        ready: Vec::with_capacity(1024),
        rtts_ms: Vec::with_capacity(conns * (FETCHES + 2)),
        requests: 0,
        sustained: 0,
        holding: 0,
        closed: 0,
    };
    for token in 0..conns as u64 {
        // Paced ramp: stay at most `RAMP_WINDOW` unanswered
        // `SessionStart`s ahead of the daemon.
        while (token as usize).saturating_sub(client.holding + client.closed) >= RAMP_WINDOW {
            if started.elapsed() > PHASE_DEADLINE {
                panic!(
                    "bench_c10k: {phase}/{mode}: deadline during connect ramp at {token}/{conns}"
                );
            }
            client.pump(10);
        }
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        let mut conn = Conn {
            stream,
            step: Step::Starting,
            wbuf: Vec::new(),
            wpos: 0,
            rbuf: Vec::new(),
            sent_at: Instant::now(),
            want_write: false,
        };
        conn.queue(&start_req);
        if !conn.flush() {
            panic!("connection {token} died during SessionStart");
        }
        client
            .poller
            .add(conn.stream.as_raw_fd(), token, true, conn.want_write)
            .expect("register");
        client.by_token.insert(token, conn);
    }

    let mut released = false;
    while !client.by_token.is_empty() {
        if started.elapsed() > PHASE_DEADLINE {
            eprintln!(
                "bench_c10k: {phase}/{mode}: deadline hit with {} connections unfinished",
                client.by_token.len()
            );
            break;
        }
        client.pump(100);
        if !released && client.holding >= client.by_token.len() {
            // Every session answered SessionStart: all of them are live
            // at once. Release the barrier and run the scripts out.
            released = true;
            for (&token, conn) in client.by_token.iter_mut() {
                conn.step = Step::Fetching(FETCHES);
                conn.queue(&Request::Fetch);
                if conn.flush() {
                    let _ =
                        client
                            .poller
                            .modify(conn.stream.as_raw_fd(), token, true, conn.want_write);
                }
            }
        }
    }
    let (requests, sustained, mut rtts_ms) = (client.requests, client.sustained, client.rtts_ms);
    let wall = started.elapsed().as_secs_f64();
    let rss = daemon.stop();

    rtts_ms.sort_by(f64::total_cmp);
    PhaseResult {
        phase,
        mode,
        connections: conns,
        sustained,
        wall_ms: wall * 1e3,
        requests_per_sec: requests as f64 / wall,
        rtt_p95_ms: percentile(&rtts_ms, 0.95),
        rtt_p99_ms: percentile(&rtts_ms, 0.99),
        daemon_peak_rss_kb: rss,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--daemon") {
        let mode = args.get(1).expect("--daemon needs a mode").clone();
        let max_conns = args
            .iter()
            .position(|a| a == "--max-conns-internal")
            .and_then(|i| args.get(i + 1))
            .and_then(|n| n.parse().ok())
            .unwrap_or(64);
        run_daemon(&mode, max_conns);
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(bad) = args.iter().find(|a| !matches!(a.as_str(), "--smoke")) {
        eprintln!("bench_c10k: unknown flag {bad:?} (--smoke)");
        std::process::exit(2);
    }
    let p = if smoke { SMOKE } else { FULL };
    raise_nofile_limit();

    let results = [
        run_phase("sustain", "reactor", p.sustain_conns),
        run_phase("compare", "reactor", p.compare_conns),
        run_phase("compare", "threaded", p.compare_conns),
    ];
    for r in &results {
        println!(
            "{:<8} {:<9} conns {:>6}  sustained {:>6}  wall {:>9.1} ms  requests {:>8.1}/s  \
             rtt p95 {:>7.2} ms  p99 {:>7.2} ms  daemon peak rss {:>7} kB",
            r.phase,
            r.mode,
            r.connections,
            r.sustained,
            r.wall_ms,
            r.requests_per_sec,
            r.rtt_p95_ms,
            r.rtt_p99_ms,
            r.daemon_peak_rss_kb,
        );
    }

    let reactor = &results[1];
    let threaded = &results[2];
    let speedup = reactor.requests_per_sec / threaded.requests_per_sec;
    println!("compare speedup (reactor / threaded): {speedup:.2}x");

    let mut rows = String::new();
    for r in &results {
        let _ = write!(
            rows,
            "{}    {{\"phase\": \"{}\", \"mode\": \"{}\", \"connections\": {}, \
             \"sustained\": {}, \"wall_ms\": {:.2}, \"requests_per_sec\": {:.2}, \
             \"rtt_p95_ms\": {:.4}, \"rtt_p99_ms\": {:.4}, \"daemon_peak_rss_kb\": {}}}",
            if rows.is_empty() { "" } else { ",\n" },
            r.phase,
            r.mode,
            r.connections,
            r.sustained,
            r.wall_ms,
            r.requests_per_sec,
            r.rtt_p95_ms,
            r.rtt_p99_ms,
            r.daemon_peak_rss_kb,
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"c10k\",\n  \"smoke\": {smoke},\n  \
         \"requests_per_session\": {},\n  \"results\": [\n{rows}\n  ],\n  \
         \"compare_speedup\": {speedup:.4}\n}}\n",
        FETCHES + 2,
    );
    std::fs::write("BENCH_c10k.json", &json).expect("write BENCH_c10k.json");
    println!("wrote BENCH_c10k.json");

    // Every session must complete in every phase, smoke or full: a
    // dropped connection is a correctness bug, not noise.
    for r in &results {
        assert_eq!(
            r.sustained, r.connections,
            "{}/{}: only {} of {} sessions completed",
            r.phase, r.mode, r.sustained, r.connections
        );
    }
    if !smoke {
        // The full comparison exists to prove the reactor wins at high
        // concurrency; smoke runs are too small to measure anything.
        assert!(
            speedup >= 2.0,
            "reactor only {speedup:.2}x the threaded model at {} connections (need >= 2x)",
            p.compare_conns
        );
    }
}
