//! Headline claim — "these changes allow the Active Harmony system to
//! reduce the time spent tuning from 35% up to 50% and at the same time,
//! reduce the variation in performance while tuning."
//!
//! Runs the full server pipeline (prioritize → classify → train → tune)
//! against the plain original pipeline on the web service system and
//! reports the combined effect.

use bench::{average, f, header, row, WebObjective};
use harmony::history::DataAnalyzer;
use harmony::prelude::*;
use harmony::server::ServerOptions;
use harmony::tuner::TrainingMode;
use harmony_websim::WorkloadMix;

fn main() {
    let seeds = 0u64..5;
    let noise = 0.05;
    let budget = bench::WEB_TUNING_BUDGET;

    println!("Headline: original pipeline vs fully improved pipeline\n");
    header(
        &[
            "workload",
            "pipeline",
            "WIPS",
            "conv(iters)",
            "init std",
            "bad iters",
        ],
        &[10, 10, 8, 12, 10, 10],
    );

    for (mix, prior_mix, label) in [
        (WorkloadMix::shopping(), WorkloadMix::browsing(), "shopping"),
        (WorkloadMix::ordering(), WorkloadMix::shopping(), "ordering"),
    ] {
        let run_original = |seed: u64| -> TuningOutcome {
            let mut obj = WebObjective::new(mix.clone(), noise, seed);
            let space = obj.system().space().clone();
            Tuner::new(space, TuningOptions::original().with_max_iterations(budget)).run(&mut obj)
        };
        let run_improved = |seed: u64| -> TuningOutcome {
            // Full server: prior experience + improved init + top-6 focus.
            let mut server_obj = WebObjective::new(mix.clone(), noise, 100 + seed);
            let space = server_obj.system().space().clone();
            let mut server = HarmonyServer::new(
                space,
                ServerOptions {
                    tuning: TuningOptions::improved().with_max_iterations(budget),
                    training: TrainingMode::Replay(10),
                    analyzer: DataAnalyzer::new(),
                    focus_top_n: Some(6),
                },
            );
            // Prioritize once (amortized cost, reported separately).
            let mut probe_obj = WebObjective::new(mix.clone(), noise, 7);
            server.set_sensitivity(
                harmony::sensitivity::Prioritizer::new(server.space().clone())
                    .with_max_samples(10)
                    .analyze(&mut probe_obj),
            );
            // Seed the experience database from the prior workload.
            let mut prior_obj = WebObjective::new(prior_mix.clone(), noise, 200 + seed);
            let chars = prior_obj.system_mut().observe_characteristics(400);
            let _ = server.tune_session(&mut prior_obj, prior_mix.name(), &chars);
            // The measured session.
            let chars = server_obj.system_mut().observe_characteristics(400);
            server
                .tune_session(&mut server_obj, mix.name(), &chars)
                .tuning
        };

        let orig_conv = average(seeds.clone(), |s| {
            run_original(s).report.convergence_time as f64
        });
        let impr_conv = average(seeds.clone(), |s| {
            run_improved(s).report.convergence_time as f64
        });
        for (name, runner) in [
            (
                "original",
                &(|s: u64| run_original(s)) as &dyn Fn(u64) -> TuningOutcome,
            ),
            (
                "improved",
                &(|s: u64| run_improved(s)) as &dyn Fn(u64) -> TuningOutcome,
            ),
        ] {
            let wips = average(seeds.clone(), |s| runner(s).report.best_performance);
            let conv = average(seeds.clone(), |s| runner(s).report.convergence_time as f64);
            let std = average(seeds.clone(), |s| runner(s).report.initial_std);
            let bad = average(seeds.clone(), |s| runner(s).report.bad_iterations as f64);
            row(
                &[
                    label.to_string(),
                    name.to_string(),
                    f(wips, 1),
                    f(conv, 1),
                    f(std, 2),
                    f(bad, 1),
                ],
                &[10, 10, 8, 12, 10, 10],
            );
        }
        println!(
            "  -> tuning time reduction: {:.0}%  (paper claim: 35% up to 50%)\n",
            (orig_conv - impr_conv) / orig_conv * 100.0
        );
    }
}
