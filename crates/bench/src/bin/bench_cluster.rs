//! Failover baseline for the sharded, replicated experience tier.
//!
//! Spawns a 3-daemon cluster as real child processes (each one a ring
//! member with replication factor 2), seeds it with completed runs
//! spread across the shard space, then starts a live session on member
//! 0 and SIGKILLs that member mid-tune. The client fails over through
//! its endpoint list, a replica adopts the session from the last
//! shipped snapshot, and the run finishes on a survivor.
//!
//! Two properties are asserted in-process (and re-checked by CI against
//! `BENCH_cluster.json`):
//!
//! * `zero_loss` — every run recorded before the kill, plus the
//!   failed-over run, is queryable on the survivors afterwards.
//! * `trajectory_identical` — the interrupted session walks exactly the
//!   trajectory of an undisturbed single-daemon run: same
//!   configurations in the same order, same best performance to the
//!   last bit.
//!
//! Flags: `--smoke` shrinks the seed workload for CI. The hidden
//! `--node` mode is how the parent re-executes itself as a ring member.

use harmony_net::client::{Client, RetryPolicy};
use harmony_net::protocol::SpaceSpec;
use harmony_net::server::{DaemonConfig, TuningDaemon};
use std::collections::HashSet;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

const RSL: &str =
    "{ harmonyBundle cache { int {1 20 1} }}\n{ harmonyBundle threads { int {1 20 1} }}";

/// Live-session budget (the one interrupted by the kill).
const BUDGET: usize = 40;
/// Iterations driven before member 0 is killed.
const BEFORE_KILL: usize = 7;
/// Ring members and replication factor.
const MEMBERS: usize = 3;
const REPLICATION: usize = 2;

/// Deterministic synthetic objective, optimum at cache=14, threads=6.
fn perf(values: &[i64]) -> f64 {
    let c = values[0] as f64;
    let t = values[1] as f64;
    200.0 - (c - 14.0).powi(2) - 2.0 * (t - 6.0).powi(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--node") {
        run_node(&args[1..]);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed_sessions = if smoke { 3 } else { 12 };

    // Reserve distinct loopback ports, then release them for the nodes.
    let addrs: Vec<String> = {
        let listeners: Vec<TcpListener> = (0..MEMBERS)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
            .collect();
        listeners
            .iter()
            .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
            .collect()
    };

    let mut children: Vec<Child> = (0..MEMBERS).map(|i| spawn_node(&addrs, i)).collect();
    for addr in &addrs {
        await_listening(addr);
    }
    println!(
        "cluster up: {} members, replication {REPLICATION}",
        addrs.len()
    );

    // Seed: completed runs spread across the shard space, driven
    // against alternating members.
    for i in 0..seed_sessions {
        let mut client = Client::connect(addrs[i % MEMBERS].as_str()).expect("seed client");
        drive_session(
            &mut client,
            &format!("seed-{i}"),
            vec![0.05 + 0.9 * i as f64 / seed_sessions as f64, 0.5],
            if smoke { 8 } else { 15 },
        );
    }
    println!("seeded {seed_sessions} completed runs");

    // Reference: the identical session against a lone daemon, no
    // cluster, no priors — the trajectory the failover must reproduce.
    let clean = TuningDaemon::start(DaemonConfig::default()).expect("clean daemon");
    let mut direct = Client::connect(clean.addr()).expect("clean client");
    let (clean_trace, clean_best) = drive_traced(&mut direct, "clean", BUDGET, usize::MAX, None);
    clean.shutdown();

    // The measured run: start on member 0, kill member 0 mid-tune.
    let mut builder = Client::builder(addrs[0].as_str())
        .connect_timeout(Duration::from_secs(2))
        .retry(RetryPolicy::default().with_max_retries(12).with_seed(9));
    for addr in &addrs[1..] {
        builder = builder.endpoint(addr.as_str());
    }
    let mut client = builder.connect().expect("ring client");
    let kill = |children: &mut Vec<Child>| {
        let mut victim = children.remove(0);
        victim.kill().expect("SIGKILL member 0");
        victim.wait().expect("reap member 0");
        Instant::now()
    };
    let mut killed_at = None;
    let mut failover_ms = 0.0;
    let (trace, best) = drive_traced(
        &mut client,
        "failover",
        BUDGET,
        BEFORE_KILL,
        Some(&mut |iteration: usize| {
            if iteration == BEFORE_KILL {
                killed_at = Some(kill(&mut children));
                println!("killed member 0 after {BEFORE_KILL} iterations");
            } else if let Some(t0) = killed_at.take() {
                // First iteration served after the kill: its fetch paid
                // for the reconnect, redirect chain, and adoption.
                failover_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            }
        }),
    );
    println!("failover resumed in {failover_ms:.1}ms, session finished on a survivor");

    // Zero loss: every seed run and the failed-over run must be on the
    // survivors.
    let mut surviving: HashSet<String> = HashSet::new();
    for addr in &addrs[1..] {
        let mut c = Client::connect(addr.as_str()).expect("survivor client");
        for run in c.db_runs().expect("survivor DbQuery") {
            surviving.insert(run.label);
        }
    }
    let mut expected: Vec<String> = (0..seed_sessions).map(|i| format!("seed-{i}")).collect();
    expected.push("failover".into());
    let lost: Vec<&String> = expected
        .iter()
        .filter(|l| !surviving.contains(*l))
        .collect();
    let zero_loss = lost.is_empty();
    println!(
        "runs recorded before + during the kill: {}, surviving: {}",
        expected.len(),
        expected.len() - lost.len()
    );

    let trajectory_identical = clean_trace == trace && clean_best == best;

    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"smoke\": {smoke},\n  \"members\": {MEMBERS},\n  \
         \"replication\": {REPLICATION},\n  \"seed_runs\": {seed_sessions},\n  \
         \"iterations_before_kill\": {BEFORE_KILL},\n  \"trajectory_len\": {},\n  \
         \"failover_ms\": {failover_ms:.1},\n  \"zero_loss\": {zero_loss},\n  \
         \"trajectory_identical\": {trajectory_identical}\n}}\n",
        trace.len(),
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    println!("wrote BENCH_cluster.json");

    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }

    assert!(
        zero_loss,
        "recorded runs lost to a single daemon death: {lost:?}"
    );
    assert!(
        trajectory_identical,
        "failover perturbed the search: clean {} iterations vs {} \
         (best {clean_best:?} vs {best:?})",
        clean_trace.len(),
        trace.len(),
    );
}

/// One fetched configuration and the performance bits it measured.
type TraceStep = (Vec<i64>, u64);
/// A session summary fingerprint: iterations, best values, best bits.
type Fingerprint = (usize, Vec<i64>, u64);

/// Drive a full session, returning the exact trajectory and the summary
/// fingerprint (iterations, best values, best performance bits). `hook`
/// runs after each report with the number of completed iterations.
fn drive_traced(
    client: &mut Client,
    label: &str,
    budget: usize,
    hook_at: usize,
    mut hook: Option<&mut dyn FnMut(usize)>,
) -> (Vec<TraceStep>, Fingerprint) {
    client
        .start_session(SpaceSpec::Rsl(RSL.into()), label, vec![], Some(budget))
        .expect("session starts");
    let mut trace = Vec::new();
    let mut done = 0usize;
    while let Some(p) = client.fetch().expect("fetch") {
        let y = perf(p.values.values());
        trace.push((p.values.values().to_vec(), y.to_bits()));
        client.report(y).expect("report");
        done += 1;
        if done >= hook_at {
            if let Some(hook) = hook.as_mut() {
                hook(done);
            }
        }
    }
    let summary = client.end_session().expect("session ends");
    let fingerprint = (
        summary.iterations,
        summary.best.values().to_vec(),
        summary.performance.to_bits(),
    );
    (trace, fingerprint)
}

/// Drive one short seed session to completion.
fn drive_session(client: &mut Client, label: &str, characteristics: Vec<f64>, budget: usize) {
    client
        .start_session(
            SpaceSpec::Rsl(RSL.into()),
            label,
            characteristics,
            Some(budget),
        )
        .expect("seed session starts");
    while let Some(p) = client.fetch().expect("seed fetch") {
        client.report(perf(p.values.values())).expect("seed report");
    }
    client.end_session().expect("seed session ends");
}

/// Re-execute this binary as ring member `i`.
fn spawn_node(addrs: &[String], i: usize) -> Child {
    let peers: Vec<String> = addrs
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, a)| a.clone())
        .collect();
    Command::new(std::env::current_exe().expect("own path"))
        .args([
            "--node",
            &addrs[i],
            "--node-peers",
            &peers.join(","),
            "--node-replicate",
            &REPLICATION.to_string(),
        ])
        .spawn()
        .expect("spawn ring member")
}

/// Child-process mode: serve one ring member until killed.
fn run_node(args: &[String]) {
    let mut addr = None;
    let mut peers = Vec::new();
    let mut replication = 1;
    let mut it = args.iter();
    // The first positional is the listen/ring address (already consumed
    // `--node` in main).
    if let Some(a) = it.next() {
        addr = Some(a.clone());
    }
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--node-peers" => {
                peers = it
                    .next()
                    .expect("--node-peers value")
                    .split(',')
                    .map(String::from)
                    .collect();
            }
            "--node-replicate" => {
                replication = it
                    .next()
                    .expect("--node-replicate value")
                    .parse()
                    .expect("replication factor");
            }
            other => panic!("unknown node flag {other}"),
        }
    }
    let addr = addr.expect("--node <addr>");
    let config = DaemonConfig::builder()
        .listen(addr.clone())
        .cluster(addr, peers, replication)
        .build()
        .expect("node config");
    let _handle = TuningDaemon::start(config).expect("node daemon");
    // Park until the parent kills us: the daemon threads do the work.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Block until `addr` accepts connections (the member is serving).
fn await_listening(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(_) => return,
            Err(e) if Instant::now() >= deadline => {
                panic!("member {addr} never came up: {e}")
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}
