//! Figure 4 — performance distribution: synthetic data vs the
//! cluster-based web service system.
//!
//! Paper: normalized performance (1..50) from exhaustive search is
//! bucketed into 10 bins; the synthetic distribution approximates the real
//! system's. Here "real" is the websim (coarse space, exhaustively
//! enumerated in parallel) and "synthetic" is the DataGen-style web-like
//! rule system on a matching coarse grid.

use bench::{f, header, row};
use harmony::search::par_exhaustive_search;
use harmony_linalg::stats::{normalize_to_range, Histogram};
use harmony_space::{ParamDef, ParameterSpace};
use harmony_synth::scenario::{weblike_space, weblike_system};
use harmony_websim::demands::DemandModel;
use harmony_websim::params::{webservice_space_coarse, WebServiceConfig};
use harmony_websim::{analytic, WorkloadMix};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // Real system: exhaustive over the coarse websim space, shopping mix.
    let coarse = webservice_space_coarse();
    let mix = WorkloadMix::shopping();
    let web = par_exhaustive_search(
        &coarse,
        |cfg| {
            let model = DemandModel::new(WebServiceConfig::decode(&coarse, cfg));
            analytic::evaluate(&model, &mix).wips
        },
        threads,
    )
    .expect("coarse space is non-empty");
    let web_perfs: Vec<f64> = web.trace.iter().map(|t| t.performance).collect();

    // Synthetic: web-like rule system on a comparable coarse grid.
    let fine = weblike_space();
    let coarse_synth = ParameterSpace::new(
        fine.params()
            .iter()
            .map(|p| {
                let span = p.static_max() - p.static_min();
                let step = (span / 6).max(1);
                let hi = p.static_min() + (span / step) * step;
                ParamDef::int(p.name(), p.static_min(), hi, p.static_min(), step)
            })
            .collect(),
    )
    .expect("coarse synthetic space valid");
    let synth_sys = weblike_system(&[0.25, 0.20, 0.15, 0.20, 0.10, 0.10], 0.0, 0);
    let synth = par_exhaustive_search(&coarse_synth, |cfg| synth_sys.evaluate_clean(cfg), threads)
        .expect("synthetic space is non-empty");
    let synth_perfs: Vec<f64> = synth.trace.iter().map(|t| t.performance).collect();

    // Normalize to 1..50 and bucket into 10 bins, as in the paper.
    let mut tv = 0.0;
    println!("Figure 4: performance distribution (fraction of search space per bucket)");
    println!(
        "web system: {} configurations; synthetic: {} configurations\n",
        web_perfs.len(),
        synth_perfs.len()
    );
    header(&["bucket", "web service", "synthetic"], &[8, 12, 12]);
    let bucketize = |perfs: &[f64]| {
        let normalized = normalize_to_range(perfs, 1.0, 50.0);
        let mut h = Histogram::new(1.0, 50.0, 10);
        h.add_all(&normalized);
        h.fractions()
    };
    let hw = bucketize(&web_perfs);
    let hs = bucketize(&synth_perfs);
    for b in 0..10 {
        row(
            &[
                format!("{}-{}", b * 5 + 1, b * 5 + 5),
                f(hw[b] * 100.0, 1) + "%",
                f(hs[b] * 100.0, 1) + "%",
            ],
            &[8, 12, 12],
        );
        tv += (hw[b] - hs[b]).abs();
    }
    println!(
        "\ntotal variation distance between the two distributions: {:.3}",
        tv / 2.0
    );
    println!("(paper: 'approximately the same' — expect a small value, < 0.25)");
}
