//! Engine tournament baseline: every registered search engine, raced
//! (hyperparameters included) across the websim workload mixes.
//!
//! Runs the same meta-tuning tournament as `harmony-cli tournament` and
//! records, per (workload mix, engine): the best WIPS the winning
//! hyperparameter candidate reached, the measurements it spent
//! (iterations to converge when it converged before its budget), and the
//! winning hyperparameters. Writes the machine-readable comparison to
//! `BENCH_engines.json` and the deterministic leaderboard to stdout.
//!
//! Everything is seeded: two runs with the same flags produce
//! byte-identical leaderboards and JSON at any `--jobs`. `--smoke`
//! shrinks the budget and candidate field for CI.

use harmony_engines::{render_leaderboard, run_tournament, RaceResult, TournamentOptions};
use harmony_exec::Executor;
use harmony_websim::WorkloadMix;
use std::fmt::Write as _;

/// Workload knobs; `--smoke` swaps in the small set.
struct Params {
    budget: usize,
    candidates: usize,
}

const FULL: Params = Params {
    budget: 120,
    candidates: 4,
};

const SMOKE: Params = Params {
    budget: 30,
    candidates: 2,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(bad) = args.iter().find(|a| !matches!(a.as_str(), "--smoke")) {
        eprintln!("bench_engines: unknown flag {bad:?} (--smoke)");
        std::process::exit(2);
    }
    let p = if smoke { SMOKE } else { FULL };

    let opts = TournamentOptions {
        budget: p.budget,
        candidates: p.candidates,
        seed: 42,
        mixes: vec![
            WorkloadMix::browsing(),
            WorkloadMix::shopping(),
            WorkloadMix::ordering(),
        ],
    };
    let jobs = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    let results = run_tournament(&opts, &Executor::new(jobs));
    print!("{}", render_leaderboard(&results, &opts));

    // Determinism is the contract the leaderboard artifact rests on:
    // prove it here by re-running at a different job count.
    let again = run_tournament(&opts, &Executor::new(1));
    assert_eq!(
        results, again,
        "tournament must be byte-identical for a fixed seed at any job count"
    );
    for mix in &opts.mixes {
        for name in harmony_engines::ENGINE_NAMES {
            assert!(
                results
                    .iter()
                    .any(|r| r.mix == mix.name() && r.engine == name),
                "missing race: {name} on {}",
                mix.name()
            );
        }
    }

    let mut rows = String::new();
    for r in &results {
        let RaceResult {
            mix,
            engine,
            best_wips,
            evaluations,
            converged,
            hyper,
        } = r;
        let hyper_json = hyper
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            rows,
            "{}    {{\"mix\": \"{mix}\", \"engine\": \"{engine}\", \
             \"best_wips\": {best_wips:.3}, \"iterations_to_converge\": {evaluations}, \
             \"converged\": {converged}, \"hyper\": {{{hyper_json}}}}}",
            if rows.is_empty() { "" } else { ",\n" },
        );
    }
    let json = format!(
        "{{\n  \"bench\": \"engines\",\n  \"smoke\": {smoke},\n  \"seed\": {},\n  \
         \"budget\": {},\n  \"candidates\": {},\n  \"results\": [\n{rows}\n  ]\n}}\n",
        opts.seed, opts.budget, opts.candidates,
    );
    std::fs::write("BENCH_engines.json", &json).expect("write BENCH_engines.json");
    println!("wrote BENCH_engines.json");

    // Sanity gate for the full run: every engine must actually search
    // (finite, positive WIPS) within its budget.
    if !smoke {
        for r in &results {
            assert!(
                r.best_wips.is_finite() && r.best_wips > 0.0,
                "{} found no throughput on {}",
                r.engine,
                r.mix
            );
            assert!(
                r.evaluations <= opts.budget,
                "{} overspent its budget on {}",
                r.engine,
                r.mix
            );
        }
    }
}
