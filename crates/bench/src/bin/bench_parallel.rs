//! Perf baseline for the execution engine.
//!
//! Times the same exhaustive sweep and sensitivity analysis sequentially
//! and on 1/2/4/8 worker threads, checks that every parallel result is
//! bit-identical to the sequential one, measures the memo-cache hit rate
//! of a repeated sweep, and writes the lot to `BENCH_parallel.json`.
//!
//! The objective blocks (sleeps) for a fixed wall time per call, the
//! shape of the measurements this system actually takes — external
//! commands and remote systems where the worker waits rather than
//! computes. Blocked workers overlap even on a one-core machine, so the
//! reported speedups reflect the engine's scheduling, not the host's
//! core count (which is recorded in the output for context).

use harmony::search::exhaustive_search_with;
use harmony::sensitivity::Prioritizer;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Wall time each evaluation blocks for, in microseconds.
const EVAL_SLEEP_US: u64 = 1_000;

/// Timing repetitions; the minimum is reported.
const REPS: usize = 3;

fn space() -> ParameterSpace {
    ParameterSpace::builder()
        .param(ParamDef::int("a", 0, 7, 0, 1))
        .param(ParamDef::int("b", 0, 7, 0, 1))
        .build()
        .unwrap()
}

fn expensive(cfg: &Configuration) -> f64 {
    std::thread::sleep(Duration::from_micros(EVAL_SLEEP_US));
    -(((cfg.get(0) - 5).pow(2) + (cfg.get(1) - 2).pow(2)) as f64)
}

/// Best-of-`REPS` wall time of `f`, in milliseconds.
fn time_ms<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let s = space();
    let seq_exec = Executor::new(1);
    let seq_sweep = exhaustive_search_with(&s, &expensive, &seq_exec, None).unwrap();
    let seq_sens = Prioritizer::new(s.clone()).analyze_with(&expensive, &seq_exec, None);

    let sweep_seq_ms = time_ms(|| exhaustive_search_with(&s, &expensive, &seq_exec, None));
    let sens_seq_ms =
        time_ms(|| Prioritizer::new(s.clone()).analyze_with(&expensive, &seq_exec, None));

    let mut rows = String::new();
    for jobs in [1usize, 2, 4, 8] {
        let executor = Executor::new(jobs);

        let par_sweep = exhaustive_search_with(&s, &expensive, &executor, None).unwrap();
        assert_eq!(
            par_sweep, seq_sweep,
            "sweep must be bit-identical at jobs={jobs}"
        );
        let par_sens = Prioritizer::new(s.clone()).analyze_with(&expensive, &executor, None);
        assert_eq!(
            par_sens, seq_sens,
            "sensitivity must be bit-identical at jobs={jobs}"
        );

        let sweep_ms = time_ms(|| exhaustive_search_with(&s, &expensive, &executor, None));
        let sens_ms =
            time_ms(|| Prioritizer::new(s.clone()).analyze_with(&expensive, &executor, None));

        // Cache behaviour: a cold sweep populates, a second sweep hits.
        let cache = MemoCache::new(4096);
        exhaustive_search_with(&s, &expensive, &executor, Some(&cache));
        exhaustive_search_with(&s, &expensive, &executor, Some(&cache));
        let lookups = cache.hits() + cache.misses();
        let hit_rate = cache.hits() as f64 / lookups as f64;
        let cached_ms = time_ms(|| exhaustive_search_with(&s, &expensive, &executor, Some(&cache)));

        let sweep_speedup = sweep_seq_ms / sweep_ms;
        let sens_speedup = sens_seq_ms / sens_ms;
        println!(
            "jobs {jobs}: sweep {sweep_ms:.2} ms ({sweep_speedup:.2}x), \
             sensitivity {sens_ms:.2} ms ({sens_speedup:.2}x), \
             cached sweep {cached_ms:.3} ms, hit rate {hit_rate:.3}"
        );
        let _ = write!(
            rows,
            "{}    {{\"jobs\": {jobs}, \"sweep_ms\": {sweep_ms:.4}, \
             \"sweep_speedup\": {sweep_speedup:.4}, \"sensitivity_ms\": {sens_ms:.4}, \
             \"sensitivity_speedup\": {sens_speedup:.4}, \"cached_sweep_ms\": {cached_ms:.4}, \
             \"cache_hit_rate\": {hit_rate:.4}}}",
            if rows.is_empty() { "" } else { ",\n" },
        );
    }

    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"sweep_configs\": {},\n  \
         \"eval_sleep_us\": {EVAL_SLEEP_US},\n  \"host_cores\": {cores},\n  \
         \"sequential\": {{\"sweep_ms\": {sweep_seq_ms:.4}, \"sensitivity_ms\": {sens_seq_ms:.4}}},\n  \
         \"results\": [\n{rows}\n  ]\n}}\n",
        seq_sweep.trace.len(),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}
