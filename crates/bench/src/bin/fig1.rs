//! Figure 1 — improved search refinement, visualized.
//!
//! The paper's Figure 1 is a diagram: (a) the original initial
//! exploration at the extreme values of a two-parameter space, (b) the
//! improved configurations spread over the interior. This demonstrator
//! prints both exploration patterns on the actual grid the kernel uses.

use harmony::kernel::InitStrategy;
use harmony_space::{ParamDef, ParameterSpace};

fn main() {
    let space = ParameterSpace::builder()
        .param(ParamDef::int("Parameter1", 0, 20, 10, 1))
        .param(ParamDef::int("Parameter2", 0, 20, 10, 1))
        .build()
        .expect("valid 2-parameter space");

    for (label, strategy) in [
        ("(a) original: extreme values", InitStrategy::ExtremeCorners),
        ("(b) improved: evenly spread", InitStrategy::EvenSpread),
    ] {
        println!("Figure 1 {label}\n");
        let points = strategy.initial_points(&space);
        let configs: Vec<(i64, i64)> = points
            .iter()
            .map(|p| {
                let cfg = space.project(p);
                (cfg.get(0), cfg.get(1))
            })
            .collect();
        // 21×21 grid, marker digit = exploration order.
        for y in (0..=20i64).rev() {
            let mut line = String::from("  ");
            for x in 0..=20i64 {
                match configs.iter().position(|&(cx, cy)| cx == x && cy == y) {
                    Some(i) => line.push_str(&(i + 1).to_string()),
                    None => line.push('.'),
                }
            }
            println!("{line}");
        }
        println!();
    }
    println!("(the rectangle is the allowed range; digits are the order of the");
    println!(" initial configuration explorations, as in the paper's Figure 1)");
}
