//! Criterion: the execution engine — sequential vs parallel batch
//! evaluation, and the memoized hot path, with a deterministic objective
//! that *blocks* like a real measurement.
//!
//! Tuning measurements here are external commands (the CLI spawns one
//! process per exploration) or remote systems: the worker waits far more
//! than it computes. Blocked workers overlap even on a single core, so
//! the engine's speedup tracks the job count rather than the machine's
//! core count — which is also what makes the benches meaningful on
//! one-core CI runners.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::search::exhaustive_search_with;
use harmony::sensitivity::Prioritizer;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use std::hint::black_box;
use std::time::Duration;

fn space() -> ParameterSpace {
    ParameterSpace::builder()
        .param(ParamDef::int("a", 0, 7, 0, 1))
        .param(ParamDef::int("b", 0, 7, 0, 1))
        .build()
        .unwrap()
}

/// Deterministic objective costing ~1 ms of wall time per call, blocked
/// rather than computing — the shape of a real external measurement.
fn expensive(cfg: &Configuration) -> f64 {
    std::thread::sleep(Duration::from_millis(1));
    -(((cfg.get(0) - 5).pow(2) + (cfg.get(1) - 2).pow(2)) as f64)
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_exhaustive_sweep");
    let s = space();
    for jobs in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let executor = Executor::new(jobs);
            b.iter(|| black_box(exhaustive_search_with(&s, &expensive, &executor, None)));
        });
    }
    g.finish();
}

fn bench_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_sensitivity_sweep");
    let s = space();
    for jobs in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            let executor = Executor::new(jobs);
            b.iter(|| {
                black_box(Prioritizer::new(s.clone()).analyze_with(&expensive, &executor, None))
            });
        });
    }
    g.finish();
}

fn bench_cached_hot(c: &mut Criterion) {
    c.bench_function("exec_exhaustive_sweep_cached_hot", |b| {
        let s = space();
        let executor = Executor::new(4);
        let cache = MemoCache::new(4096);
        // Warm the cache; the measured sweeps are then pure hits.
        exhaustive_search_with(&s, &expensive, &executor, Some(&cache));
        b.iter(|| {
            black_box(exhaustive_search_with(
                &s,
                &expensive,
                &executor,
                Some(&cache),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_exhaustive,
    bench_sensitivity,
    bench_cached_hot
);
criterion_main!(benches);
