//! Criterion: ablations over the design choices DESIGN.md calls out —
//! initial-simplex strategy, history training mode, and Appendix-B
//! restriction. Each benchmark runs a fixed-iteration tuning session, so
//! wall time compares per-iteration cost while the printed iteration
//! counts in the `bin/` regenerators compare convergence behaviour.

use criterion::{criterion_group, criterion_main, Criterion};
use harmony::kernel::InitStrategy;
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::tuner::TrainingMode;
use harmony_space::{parse_rsl, ParamDef, ParameterSpace};
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};
use std::hint::black_box;

fn web_objective(seed: u64) -> (ParameterSpace, impl FnMut(&Configuration) -> f64) {
    let mut sys = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.05, seed);
    let space = sys.space().clone();
    (space, move |cfg: &Configuration| sys.evaluate(cfg))
}

fn bench_init_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_init");
    g.sample_size(10);
    for (name, init) in [
        ("extreme_corners", InitStrategy::ExtremeCorners),
        ("even_spread", InitStrategy::EvenSpread),
        ("diagonal", InitStrategy::Diagonal),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (space, eval) = web_objective(1);
                let mut obj = FnObjective::new(eval);
                let mut opts = TuningOptions::improved().with_max_iterations(60);
                opts.init = init;
                black_box(Tuner::new(space, opts).run(&mut obj))
            });
        });
    }
    g.finish();
}

fn bench_history_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_history");
    g.sample_size(10);
    // Record a history once.
    let history = {
        let (space, eval) = web_objective(9);
        let mut obj = FnObjective::new(eval);
        let out =
            Tuner::new(space, TuningOptions::improved().with_max_iterations(80)).run(&mut obj);
        out.to_history("prior", vec![0.5; 14])
    };
    for (name, mode) in [
        ("cold", TrainingMode::None),
        ("seeded", TrainingMode::SeedSimplex),
        ("replay10", TrainingMode::Replay(10)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (space, eval) = web_objective(2);
                let mut obj = FnObjective::new(eval);
                let tuner = Tuner::new(space, TuningOptions::improved().with_max_iterations(60));
                black_box(tuner.run_trained(&mut obj, &history, mode))
            });
        });
    }
    g.finish();
}

fn bench_restriction_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_restriction");
    let naive = ParameterSpace::builder()
        .param(ParamDef::int("B", 1, 8, 1, 1))
        .param(ParamDef::int("C", 1, 8, 1, 1))
        .build()
        .unwrap();
    let restricted =
        parse_rsl("{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}")
            .unwrap();
    let perf = |cfg: &Configuration| {
        let (b, c) = (cfg.get(0), cfg.get(1));
        if b + c > 9 {
            0.0
        } else {
            100.0 - ((b - 3).pow(2) + (c - 4).pow(2)) as f64
        }
    };
    for (name, space) in [("naive", naive), ("restricted", restricted)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut obj = FnObjective::new(perf);
                black_box(
                    Tuner::new(
                        space.clone(),
                        TuningOptions::improved().with_max_iterations(40),
                    )
                    .run(&mut obj),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_init_ablation,
    bench_history_ablation,
    bench_restriction_ablation
);
criterion_main!(benches);
