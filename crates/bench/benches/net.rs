//! Criterion: wire-protocol overhead of the tuning daemon over loopback.
//!
//! Two views of the same question — how much does remoting the kernel
//! cost per exploration?
//!
//! * `net_round_trip` — latency of a single request/response exchange
//!   for each message kind.
//! * `net_session` — throughput of whole fetch→measure→report sessions,
//!   where the "measurement" is free, so the numbers isolate protocol
//!   and daemon overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::prelude::*;
use harmony_net::client::Client;
use harmony_net::protocol::SpaceSpec;
use harmony_net::server::{DaemonConfig, DaemonHandle, TuningDaemon};
use harmony_net::NetError;
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use std::hint::black_box;

fn space(dims: usize) -> ParameterSpace {
    ParameterSpace::new(
        (0..dims)
            .map(|i| ParamDef::int(format!("p{i}"), 0, 1000, 500, 1))
            .collect(),
    )
    .unwrap()
}

fn paraboloid(cfg: &Configuration) -> f64 {
    cfg.values()
        .iter()
        .enumerate()
        .map(|(i, &v)| -((v - 300 - 40 * i as i64).pow(2) as f64))
        .sum()
}

fn start_daemon(iterations: usize) -> DaemonHandle {
    TuningDaemon::start(DaemonConfig {
        tuning: TuningOptions::improved().with_max_iterations(iterations),
        ..DaemonConfig::default()
    })
    .expect("daemon binds a loopback port")
}

/// Latency of individual request/response exchanges on a live session.
fn bench_round_trip(c: &mut Criterion) {
    let handle = start_daemon(1_000_000);
    let mut client = Client::connect(handle.addr()).unwrap();
    let start = |client: &mut Client| {
        client
            .start_session(SpaceSpec::Explicit(space(5)), "bench", vec![], None)
            .unwrap()
    };
    start(&mut client);

    let mut g = c.benchmark_group("net_round_trip");
    g.bench_function("fetch_report", |b| {
        b.iter(|| {
            // The search may converge mid-bench; roll into a new session
            // so every iteration measures a real fetch/report pair.
            let proposal = match client.fetch().unwrap() {
                Some(p) => p,
                None => {
                    client.end_session().unwrap();
                    start(&mut client);
                    client.fetch().unwrap().expect("fresh session proposes")
                }
            };
            let perf = paraboloid(black_box(&proposal.values));
            client.report(perf).unwrap();
        });
    });
    g.bench_function("db_query", |b| {
        b.iter(|| black_box(client.db_runs().unwrap()));
    });
    g.bench_function("sensitivity", |b| {
        b.iter(|| black_box(client.sensitivity().unwrap()));
    });
    g.finish();
    drop(client);
    handle.shutdown();
}

/// Whole-session throughput: connect, tune to the budget, record.
fn bench_sessions(c: &mut Criterion) {
    let mut g = c.benchmark_group("net_session");
    g.sample_size(20);
    for iterations in [10usize, 40] {
        let handle = start_daemon(iterations);
        let addr = handle.addr();
        g.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, _| {
                b.iter(|| {
                    let mut client = Client::connect(addr).unwrap();
                    let (_, summary) = client
                        .tune_with(
                            SpaceSpec::Explicit(space(5)),
                            "bench",
                            vec![],
                            None,
                            |cfg| Ok::<f64, NetError>(paraboloid(cfg)),
                        )
                        .unwrap();
                    black_box(summary)
                });
            },
        );
        handle.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench_round_trip, bench_sessions);
criterion_main!(benches);
