//! Criterion: §4.3 triangulation estimation — cost vs dimension and
//! record-set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::estimate::estimate_performance;
use harmony::history::TuningRecord;
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use std::hint::black_box;

fn space(dims: usize) -> ParameterSpace {
    ParameterSpace::new(
        (0..dims)
            .map(|i| ParamDef::int(format!("p{i}"), 0, 100, 50, 1))
            .collect(),
    )
    .unwrap()
}

fn records(dims: usize, count: usize) -> Vec<TuningRecord> {
    // Deterministic pseudo-random records on an affine-ish surface.
    let mut s = 12345u64;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) % 101) as i64
    };
    (0..count)
        .map(|_| {
            let values: Vec<i64> = (0..dims).map(|_| next()).collect();
            let perf: f64 = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
                .sum();
            TuningRecord {
                values,
                performance: perf,
            }
        })
        .collect()
}

fn bench_dims(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimate_dims");
    for dims in [2usize, 5, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, &dims| {
            let sp = space(dims);
            let recs = records(dims, 100);
            let target = Configuration::new(vec![33; dims]);
            b.iter(|| black_box(estimate_performance(&sp, &recs, &target)));
        });
    }
    g.finish();
}

fn bench_record_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimate_records");
    for count in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, &count| {
            let sp = space(8);
            let recs = records(8, count);
            let target = Configuration::new(vec![33; 8]);
            b.iter(|| black_box(estimate_performance(&sp, &recs, &target)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dims, bench_record_count);
criterion_main!(benches);
