//! Criterion: web-system evaluation throughput — analytic MVA vs
//! discrete-event simulation (the ~100× fidelity gap DESIGN.md cites).

use criterion::{criterion_group, criterion_main, Criterion};
use harmony_websim::demands::DemandModel;
use harmony_websim::des::{self, DesConfig};
use harmony_websim::params::{webservice_space, WebServiceConfig};
use harmony_websim::{analytic, WorkloadMix};
use std::hint::black_box;

fn model() -> DemandModel {
    let s = webservice_space();
    DemandModel::new(WebServiceConfig::decode(&s, &s.default_configuration()))
}

fn bench_analytic(c: &mut Criterion) {
    let m = model();
    let mix = WorkloadMix::shopping();
    c.bench_function("websim_analytic", |b| {
        b.iter(|| black_box(analytic::evaluate(&m, &mix)));
    });
}

fn bench_des(c: &mut Criterion) {
    let m = model();
    let mix = WorkloadMix::shopping();
    let horizon = DesConfig {
        warmup: 2.0,
        measure: 20.0,
        ..DesConfig::default()
    };
    let mut g = c.benchmark_group("websim_des");
    g.sample_size(10);
    g.bench_function("20s_horizon", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(des::evaluate_with(&m, &mix, &horizon, seed))
        });
    });
    g.finish();
}

fn bench_demand_model(c: &mut Criterion) {
    let m = model();
    let mix = WorkloadMix::ordering();
    c.bench_function("websim_mix_demands", |b| {
        b.iter(|| black_box(m.mix_demands(&mix)));
    });
}

criterion_group!(benches, bench_analytic, bench_des, bench_demand_model);
criterion_main!(benches);
