//! Criterion: simplex-kernel step throughput across dimensionalities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::kernel::{InitStrategy, SimplexKernel};
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use std::hint::black_box;

fn space(dims: usize) -> ParameterSpace {
    ParameterSpace::new(
        (0..dims)
            .map(|i| ParamDef::int(format!("p{i}"), 0, 1000, 500, 1))
            .collect(),
    )
    .unwrap()
}

fn paraboloid(cfg: &Configuration) -> f64 {
    cfg.values()
        .iter()
        .enumerate()
        .map(|(i, &v)| -((v - 300 - 40 * i as i64).pow(2) as f64))
        .sum()
}

fn bench_kernel_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_step");
    for dims in [2usize, 5, 10, 20] {
        g.bench_with_input(BenchmarkId::from_parameter(dims), &dims, |b, &dims| {
            b.iter(|| {
                let mut k = SimplexKernel::new(space(dims), InitStrategy::EvenSpread);
                for _ in 0..50 {
                    let cfg = k.next_config();
                    let v = paraboloid(&cfg);
                    k.observe(black_box(v));
                }
                black_box(k.best())
            });
        });
    }
    g.finish();
}

fn bench_init_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_init");
    for (name, strat) in [
        ("extreme", InitStrategy::ExtremeCorners),
        ("even", InitStrategy::EvenSpread),
        ("diagonal", InitStrategy::Diagonal),
    ] {
        g.bench_function(name, |b| {
            let s = space(10);
            b.iter(|| black_box(strat.initial_points(&s)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernel_steps, bench_init_strategies);
criterion_main!(benches);
