//! Criterion: experience-database classification and compression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::history::{kmeans, ExperienceDb, RunHistory};
use harmony_space::Configuration;
use std::hint::black_box;

fn db_with(runs: usize) -> ExperienceDb {
    let mut db = ExperienceDb::new();
    let mut s = 999u64;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 33) as f64) / (u32::MAX as f64)
    };
    for i in 0..runs {
        let ch: Vec<f64> = (0..14).map(|_| next()).collect();
        let mut run = RunHistory::new(format!("run{i}"), ch);
        for _ in 0..20 {
            run.push(
                &Configuration::new(vec![(next() * 100.0) as i64; 10]),
                next() * 100.0,
            );
        }
        db.add_run(run);
    }
    db
}

fn bench_classify(c: &mut Criterion) {
    let mut g = c.benchmark_group("db_classify");
    for runs in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(runs), &runs, |b, &runs| {
            let db = db_with(runs);
            let observed = vec![0.5f64; 14];
            b.iter(|| black_box(db.classify(&observed)));
        });
    }
    g.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmeans");
    for n in [50usize, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    (0..14)
                        .map(|j| ((i * 7 + j * 13) % 100) as f64 / 100.0)
                        .collect()
                })
                .collect();
            b.iter(|| black_box(kmeans(&pts, 8, 30)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_classify, bench_kmeans);
criterion_main!(benches);
