//! Criterion: parameter prioritizing tool — sequential vs scoped-thread
//! parallel sweeps on the §5 synthetic system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::objective::FnObjective;
use harmony::sensitivity::Prioritizer;
use harmony_synth::scenario::section5_system;
use std::hint::black_box;

fn bench_sequential(c: &mut Criterion) {
    c.bench_function("sensitivity_sequential", |b| {
        let sys = section5_system([0.3, 0.5, 0.2], 0.0, 0);
        let space = sys.space().clone();
        b.iter(|| {
            let mut obj = FnObjective::new(|cfg| sys.evaluate_clean(cfg));
            black_box(Prioritizer::new(space.clone()).analyze(&mut obj))
        });
    });
}

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sensitivity_parallel");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                let sys = section5_system([0.3, 0.5, 0.2], 0.0, 0);
                let space = sys.space().clone();
                b.iter(|| {
                    black_box(
                        Prioritizer::new(space.clone())
                            .analyze_parallel(|cfg| sys.evaluate_clean(cfg), threads),
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sequential, bench_parallel);
criterion_main!(benches);
