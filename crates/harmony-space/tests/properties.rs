//! Property-based tests for the parameter-space crate.

use harmony_space::{parse_rsl, rsl::write_rsl, Expr, ParamDef, ParameterSpace};
use proptest::prelude::*;

/// Strategy: a small unrestricted space with varied steps.
fn arb_space() -> impl Strategy<Value = ParameterSpace> {
    proptest::collection::vec((0i64..30, 1i64..40, 1i64..6), 1..5).prop_map(|dims| {
        ParameterSpace::new(
            dims.into_iter()
                .enumerate()
                .map(|(i, (lo, span, step))| {
                    ParamDef::int(format!("p{i}"), lo, lo + span, lo, step)
                })
                .collect(),
        )
        .expect("valid space")
    })
}

proptest! {
    #[test]
    fn rsl_write_parse_roundtrip(space in arb_space()) {
        let doc = write_rsl(&space);
        let back = parse_rsl(&doc).expect("written RSL must reparse");
        prop_assert_eq!(space.len(), back.len());
        for (a, b) in space.params().iter().zip(back.params()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.static_min(), b.static_min());
            prop_assert_eq!(a.static_max(), b.static_max());
            prop_assert_eq!(a.step(), b.step());
            prop_assert_eq!(a.default(), b.default());
        }
    }

    #[test]
    fn snap_is_idempotent_and_on_grid(space in arb_space(), x in -1e5f64..1e5) {
        for p in space.params() {
            let v = p.snap(x);
            prop_assert!(v >= p.static_min() && v <= p.static_max());
            prop_assert_eq!((v - p.static_min()) % p.step(), 0);
            prop_assert_eq!(p.snap(v as f64), v);
        }
    }

    #[test]
    fn denormalize_normalize_roundtrip(space in arb_space(), frac in 0.0f64..1.0) {
        for p in space.params() {
            let v = p.denormalize(frac);
            let back = p.denormalize(p.normalize(v));
            prop_assert_eq!(v, back, "param {} frac {}", p.name(), frac);
        }
    }

    #[test]
    fn static_values_are_exactly_the_grid(space in arb_space()) {
        for p in space.params() {
            let vals = p.static_values();
            prop_assert_eq!(vals.len() as u64, p.static_cardinality());
            prop_assert_eq!(*vals.first().unwrap(), p.static_min());
            prop_assert!(*vals.last().unwrap() <= p.static_max());
            for w in vals.windows(2) {
                prop_assert_eq!(w[1] - w[0], p.step());
            }
        }
    }

    #[test]
    fn expr_eval_is_deterministic(a in -50i64..50, b in -50i64..50) {
        for src in ["$X+$Y", "$X*$Y-3", "min($X,$Y)", "max($X,-$Y)/7"] {
            let e = Expr::parse(src).unwrap();
            let env = |n: &str| match n {
                "X" => Some(a),
                "Y" => Some(b),
                _ => None,
            };
            let v1 = e.eval_with(&env);
            let v2 = e.eval_with(&env);
            prop_assert_eq!(v1, v2);
        }
    }

    #[test]
    fn unconstrained_size_is_product_of_cardinalities(space in arb_space()) {
        let product: u128 = space.params().iter().map(|p| p.static_cardinality() as u128).product();
        prop_assert_eq!(space.unconstrained_size(), product);
        // For unrestricted spaces the restricted count agrees.
        if product <= 20_000 {
            prop_assert_eq!(space.restricted_size(u128::MAX), Some(product));
        }
    }
}
