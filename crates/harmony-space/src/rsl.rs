//! Parser for the Active Harmony resource specification language (RSL).
//!
//! The RSL "is used to communicate between the system to be tuned and
//! Active Harmony tuning server" (Appendix B). A document is a sequence of
//! bundles:
//!
//! ```text
//! { harmonyBundle B { int {1 8 1} }}
//! { harmonyBundle C { int {1 9-$B 1} }}
//! { harmonyBundle S { enum {heap quick merge} }}
//! ```
//!
//! * `int { MIN MAX STEP }` — integer parameter. `MIN`/`MAX` are
//!   [`Expr`]essions (whitespace-free) and may reference earlier bundles
//!   via `$name`, which is the Appendix-B *parameter restriction*. An
//!   optional fourth field gives the default value (a constant expression);
//!   it defaults to the lower static bound.
//! * `enum { LABEL... }` — categorical parameter; the optional trailing
//!   `= LABEL` picks the default.
//!
//! Static bounds of restricted parameters are derived by interval
//! arithmetic over the already-declared parameters, so normalization and
//! simplex projection always have a concrete envelope to work with.

use crate::expr::{Expr, ExprError};
use crate::param::ParamDef;
use crate::space::{ParameterSpace, SpaceError};
use std::fmt;

/// Errors from RSL parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum RslError {
    /// Lexical/structural problem, with a human-readable message.
    Syntax(String),
    /// A bound expression failed to parse or evaluate.
    Expr(ExprError),
    /// The resulting space failed validation.
    Space(SpaceError),
}

impl fmt::Display for RslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RslError::Syntax(m) => write!(f, "RSL syntax error: {m}"),
            RslError::Expr(e) => write!(f, "RSL expression error: {e}"),
            RslError::Space(e) => write!(f, "RSL space error: {e}"),
        }
    }
}

impl std::error::Error for RslError {}

impl From<ExprError> for RslError {
    fn from(e: ExprError) -> Self {
        RslError::Expr(e)
    }
}

impl From<SpaceError> for RslError {
    fn from(e: SpaceError) -> Self {
        RslError::Space(e)
    }
}

/// Parse an RSL document into a [`ParameterSpace`].
///
/// ```
/// use harmony_space::parse_rsl;
/// let space = parse_rsl(
///     "{ harmonyBundle B { int {1 8 1} }}\n\
///      { harmonyBundle C { int {1 9-$B 1} }}",
/// ).unwrap();
/// assert_eq!(space.len(), 2);
/// assert!(space.is_restricted());
/// assert_eq!(space.restricted_size(u128::MAX), Some(36));
/// ```
pub fn parse_rsl(input: &str) -> Result<ParameterSpace, RslError> {
    let tokens = lex(input)?;
    let mut pos = 0;
    let mut defs: Vec<ParamDef> = Vec::new();
    while pos < tokens.len() {
        let (def, next) = parse_bundle(&tokens, pos, &defs)?;
        defs.push(def);
        pos = next;
    }
    if defs.is_empty() {
        return Err(RslError::Syntax(
            "no harmonyBundle declarations found".into(),
        ));
    }
    Ok(ParameterSpace::new(defs)?)
}

/// Write a [`ParameterSpace`] back out as an RSL document.
///
/// The output reparses to an equivalent space (`parse_rsl(&write_rsl(&s))`
/// preserves names, bounds, steps and defaults), which makes RSL usable as
/// an interchange format between tools. Categorical labels must be RSL
/// words (no whitespace or braces) for the roundtrip to hold —
/// enum-bundle labels parsed from RSL always are.
///
/// ```
/// use harmony_space::{parse_rsl, rsl::write_rsl};
/// let doc = "{ harmonyBundle B { int {1 8 1} }}\n\
///            { harmonyBundle C { int {1 9-$B 1} }}";
/// let space = parse_rsl(doc).unwrap();
/// let rewritten = parse_rsl(&write_rsl(&space)).unwrap();
/// assert_eq!(space.restricted_size(u128::MAX), rewritten.restricted_size(u128::MAX));
/// ```
pub fn write_rsl(space: &ParameterSpace) -> String {
    use crate::param::ParamKind;
    let mut out = String::new();
    for p in space.params() {
        match p.kind() {
            ParamKind::Int => {
                out.push_str(&format!(
                    "{{ harmonyBundle {} {{ int {{{} {} {} {}}} }}}}\n",
                    p.name(),
                    p.min_expr(),
                    p.max_expr(),
                    p.step(),
                    p.default(),
                ));
            }
            ParamKind::Categorical(labels) => {
                let default_label = p.label(p.default()).unwrap_or(&labels[0]);
                out.push_str(&format!(
                    "{{ harmonyBundle {} {{ enum {{{} = {}}} }}}}\n",
                    p.name(),
                    labels.join(" "),
                    default_label,
                ));
            }
        }
    }
    out
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Open,
    Close,
    Word(String),
}

fn lex(input: &str) -> Result<Vec<Tok>, RslError> {
    let mut out = Vec::new();
    let mut word = String::new();
    let flush = |word: &mut String, out: &mut Vec<Tok>| {
        if !word.is_empty() {
            out.push(Tok::Word(std::mem::take(word)));
        }
    };
    for c in input.chars() {
        match c {
            '{' => {
                flush(&mut word, &mut out);
                out.push(Tok::Open);
            }
            '}' => {
                flush(&mut word, &mut out);
                out.push(Tok::Close);
            }
            c if c.is_whitespace() => flush(&mut word, &mut out),
            '#' => {
                // Comments run to end of line; implemented by consuming in
                // the caller-visible stream. Simplest: mark with a sentinel
                // handled below. We instead strip comments up front.
                return lex(&strip_comments(input));
            }
            c => word.push(c),
        }
    }
    flush(&mut word, &mut out);
    Ok(out)
}

fn strip_comments(input: &str) -> String {
    input
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Parse `{ harmonyBundle NAME { KIND {...} } }` starting at `pos`.
fn parse_bundle(
    tokens: &[Tok],
    mut pos: usize,
    earlier: &[ParamDef],
) -> Result<(ParamDef, usize), RslError> {
    expect(tokens, &mut pos, &Tok::Open)?;
    let kw = expect_word(tokens, &mut pos)?;
    if kw != "harmonyBundle" {
        return Err(RslError::Syntax(format!(
            "expected 'harmonyBundle', got {kw:?}"
        )));
    }
    let name = expect_word(tokens, &mut pos)?;
    expect(tokens, &mut pos, &Tok::Open)?;
    let kind = expect_word(tokens, &mut pos)?;
    let def = match kind.as_str() {
        "int" => parse_int_body(tokens, &mut pos, &name, earlier)?,
        "enum" => parse_enum_body(tokens, &mut pos, &name)?,
        other => return Err(RslError::Syntax(format!("unknown bundle kind {other:?}"))),
    };
    expect(tokens, &mut pos, &Tok::Close)?; // close kind wrapper
    expect(tokens, &mut pos, &Tok::Close)?; // close bundle
    Ok((def, pos))
}

fn parse_int_body(
    tokens: &[Tok],
    pos: &mut usize,
    name: &str,
    earlier: &[ParamDef],
) -> Result<ParamDef, RslError> {
    expect(tokens, pos, &Tok::Open)?;
    let mut fields = Vec::new();
    while let Some(Tok::Word(w)) = tokens.get(*pos) {
        fields.push(w.clone());
        *pos += 1;
    }
    expect(tokens, pos, &Tok::Close)?;
    if fields.len() != 3 && fields.len() != 4 {
        return Err(RslError::Syntax(format!(
            "int bundle {name:?} needs 'min max step' (+ optional default), got {} fields",
            fields.len()
        )));
    }
    let min = Expr::parse(&fields[0])?;
    let max = Expr::parse(&fields[1])?;
    let step = Expr::parse(&fields[2])?
        .eval_const()
        .map_err(|_| RslError::Syntax(format!("int bundle {name:?}: step must be a constant")))?;
    if step <= 0 {
        return Err(RslError::Syntax(format!(
            "int bundle {name:?}: step must be positive"
        )));
    }

    // Derive the static envelope by interval arithmetic over earlier
    // parameters' static bounds.
    let resolve = |n: &str| -> Option<(i64, i64)> {
        earlier
            .iter()
            .find(|p| p.name() == n)
            .map(|p| (p.static_min(), p.static_max()))
    };
    let (static_min, min_hi) = min.eval_interval(&resolve)?;
    let (max_lo, static_max) = max.eval_interval(&resolve)?;
    if static_min > static_max {
        return Err(RslError::Syntax(format!(
            "int bundle {name:?}: bounds can never satisfy min <= max (static [{static_min}, {static_max}])"
        )));
    }
    // The default must be statically feasible; prefer the declared default,
    // else a value that lies inside every possible range if one exists
    // (min's upper envelope .. max's lower envelope), else the static min.
    let default = if fields.len() == 4 {
        Expr::parse(&fields[3])?.eval_const().map_err(|_| {
            RslError::Syntax(format!("int bundle {name:?}: default must be a constant"))
        })?
    } else if min_hi <= max_lo {
        // Middle of the always-feasible band, snapped onto the step grid.
        let mid = min_hi + (max_lo - min_hi) / 2;
        static_min + ((mid - static_min) / step) * step
    } else {
        static_min
    };
    if default < static_min || default > static_max {
        return Err(RslError::Syntax(format!(
            "int bundle {name:?}: default {default} outside static bounds [{static_min}, {static_max}]"
        )));
    }
    Ok(ParamDef::restricted(
        name.to_string(),
        min,
        max,
        default,
        step,
        static_min,
        static_max,
    ))
}

fn parse_enum_body(tokens: &[Tok], pos: &mut usize, name: &str) -> Result<ParamDef, RslError> {
    expect(tokens, pos, &Tok::Open)?;
    let mut labels: Vec<String> = Vec::new();
    let mut default_label: Option<String> = None;
    while let Some(Tok::Word(w)) = tokens.get(*pos) {
        if w == "=" {
            *pos += 1;
            default_label = Some(expect_word(tokens, pos)?);
            continue;
        }
        labels.push(w.clone());
        *pos += 1;
    }
    expect(tokens, pos, &Tok::Close)?;
    if labels.is_empty() {
        return Err(RslError::Syntax(format!(
            "enum bundle {name:?} has no labels"
        )));
    }
    let default = match default_label {
        None => 0,
        Some(l) => labels.iter().position(|x| *x == l).ok_or_else(|| {
            RslError::Syntax(format!(
                "enum bundle {name:?}: default {l:?} not in label list"
            ))
        })?,
    };
    Ok(ParamDef::categorical(name.to_string(), labels, default))
}

fn expect(tokens: &[Tok], pos: &mut usize, want: &Tok) -> Result<(), RslError> {
    match tokens.get(*pos) {
        Some(t) if t == want => {
            *pos += 1;
            Ok(())
        }
        other => Err(RslError::Syntax(format!(
            "expected {want:?}, got {other:?}"
        ))),
    }
}

fn expect_word(tokens: &[Tok], pos: &mut usize) -> Result<String, RslError> {
    match tokens.get(*pos) {
        Some(Tok::Word(w)) => {
            *pos += 1;
            Ok(w.clone())
        }
        other => Err(RslError::Syntax(format!("expected a word, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;

    #[test]
    fn parses_simple_bundle() {
        let s = parse_rsl("{ harmonyBundle B { int {1 10 1} }}").unwrap();
        assert_eq!(s.len(), 1);
        let p = s.param(0);
        assert_eq!(p.name(), "B");
        assert_eq!(p.static_min(), 1);
        assert_eq!(p.static_max(), 10);
        assert_eq!(p.step(), 1);
    }

    #[test]
    fn parses_paper_appendix_b_document() {
        // Straight from the paper (before the D line is removed).
        let doc = "\
            { harmonyBundle B { int {1 8 1} }}\n\
            { harmonyBundle C { int {1 9-$B 1} }}\n";
        let s = parse_rsl(doc).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.is_restricted());
        assert_eq!(s.restricted_size(u128::MAX), Some(36));
        assert!(s.is_feasible(&Configuration::new(vec![6, 3])).unwrap());
        assert!(!s.is_feasible(&Configuration::new(vec![6, 6])).unwrap());
    }

    #[test]
    fn parses_matrix_partition_document() {
        // k = 20 rows into n = 3 blocks (Appendix B scientific library).
        let doc = "\
            { harmonyBundle P1 { int {1 20-3+1 1} }}\n\
            { harmonyBundle P2 { int {1 20-1-$P1 1} }}\n";
        let s = parse_rsl(doc).unwrap();
        // P1 in [1,18], P2 in [1, 19-P1]; feasible pairs: sum_{p1=1}^{18}(19-p1) = 171.
        assert_eq!(s.restricted_size(u128::MAX), Some(171));
    }

    #[test]
    fn default_field_and_step() {
        let s = parse_rsl("{ harmonyBundle M { int {0 100 25 50} }}").unwrap();
        let p = s.param(0);
        assert_eq!(p.default(), 50);
        assert_eq!(p.step(), 25);
        assert_eq!(p.static_values(), vec![0, 25, 50, 75, 100]);
    }

    #[test]
    fn enum_bundle() {
        let s = parse_rsl("{ harmonyBundle sort { enum {heap quick merge = quick} }}").unwrap();
        let p = s.param(0);
        assert_eq!(p.default(), 1);
        assert_eq!(p.label(0), Some("heap"));
        assert_eq!(p.static_cardinality(), 3);
    }

    #[test]
    fn comments_are_ignored() {
        let s =
            parse_rsl("# tuning spec\n{ harmonyBundle B { int {1 4 1} }} # trailing\n").unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn syntax_errors() {
        assert!(matches!(parse_rsl(""), Err(RslError::Syntax(_))));
        assert!(matches!(
            parse_rsl("{ bundle B { int {1 2 1} }}"),
            Err(RslError::Syntax(_))
        ));
        assert!(matches!(
            parse_rsl("{ harmonyBundle B { int {1 2} }}"),
            Err(RslError::Syntax(_))
        ));
        assert!(matches!(
            parse_rsl("{ harmonyBundle B { int {1 2 0} }}"),
            Err(RslError::Syntax(_))
        ));
        assert!(matches!(
            parse_rsl("{ harmonyBundle B { float {1 2 1} }}"),
            Err(RslError::Syntax(_))
        ));
        assert!(matches!(
            parse_rsl("{ harmonyBundle B { enum {} }}"),
            Err(RslError::Syntax(_))
        ));
    }

    #[test]
    fn forward_reference_rejected() {
        let doc = "\
            { harmonyBundle C { int {1 9-$B 1} }}\n\
            { harmonyBundle B { int {1 8 1} }}\n";
        assert!(matches!(
            parse_rsl(doc),
            Err(RslError::Space(_)) | Err(RslError::Expr(_))
        ));
    }

    #[test]
    fn write_rsl_roundtrips_structurally() {
        let doc = "\
            { harmonyBundle B { int {1 8 1} }}\n\
            { harmonyBundle C { int {1 9-$B 1} }}\n\
            { harmonyBundle M { int {0 100 25 50} }}\n\
            { harmonyBundle sort { enum {heap quick merge = quick} }}\n";
        let space = parse_rsl(doc).unwrap();
        let rewritten = parse_rsl(&write_rsl(&space)).unwrap();
        assert_eq!(space.len(), rewritten.len());
        for (a, b) in space.params().iter().zip(rewritten.params()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.static_min(), b.static_min());
            assert_eq!(a.static_max(), b.static_max());
            assert_eq!(a.step(), b.step());
            assert_eq!(a.default(), b.default());
            assert_eq!(a.kind(), b.kind());
        }
        assert_eq!(
            space.restricted_size(u128::MAX),
            rewritten.restricted_size(u128::MAX)
        );
    }

    #[test]
    fn restricted_default_is_always_feasible_band() {
        // C in [1, 9-$B] with B in [1,8]: always-feasible band for C is
        // [1, 1]; default must be inside it.
        let doc = "\
            { harmonyBundle B { int {1 8 1} }}\n\
            { harmonyBundle C { int {1 9-$B 1} }}\n";
        let s = parse_rsl(doc).unwrap();
        let d = s.default_configuration();
        assert!(s.is_feasible(&d).unwrap(), "default {d} must be feasible");
    }
}
