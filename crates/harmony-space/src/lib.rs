#![warn(missing_docs)]

//! Parameter-space model for the Active Harmony tuning system.
//!
//! Active Harmony treats every tunable parameter as "a variable in an
//! independent dimension" (§2 of the paper). A parameter is declared with
//! four values — minimum, maximum, default, and the distance between two
//! neighbour values (§3) — and the collection of parameters forms a
//! [`ParameterSpace`] over which the simplex kernel searches.
//!
//! This crate also implements the paper's Appendix B: the **resource
//! specification language** (RSL) used to communicate the tunable
//! parameters to the Harmony server, including the *parameter restriction*
//! extension where the bounds of one parameter may be arithmetic functions
//! of previously declared parameters:
//!
//! ```text
//! { harmonyBundle B { int {1 8 1} }}
//! { harmonyBundle C { int {1 9-$B 1} }}
//! ```
//!
//! # Quick example
//!
//! ```
//! use harmony_space::{ParameterSpace, ParamDef};
//!
//! let space = ParameterSpace::builder()
//!     .param(ParamDef::int("cache_mb", 1, 64, 8, 1))
//!     .param(ParamDef::int("connections", 1, 100, 10, 1))
//!     .build()
//!     .unwrap();
//! assert_eq!(space.len(), 2);
//! assert_eq!(space.unconstrained_size(), 64 * 100);
//! let cfg = space.default_configuration();
//! assert_eq!(cfg.values(), &[8, 10]);
//! ```

pub mod config;
pub mod expr;
pub mod param;
pub mod rsl;
pub mod space;

pub use config::Configuration;
pub use expr::{Expr, ExprError};
pub use param::{ParamDef, ParamKind};
pub use rsl::{parse_rsl, write_rsl, RslError};
pub use space::{ParameterSpace, SpaceBuilder, SpaceError, SpaceIter};
