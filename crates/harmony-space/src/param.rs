//! Parameter definitions.

use crate::expr::Expr;
use serde::{Deserialize, Serialize};

/// What kind of values a parameter takes.
///
/// The paper tunes integer-valued knobs (buffer sizes, process counts) and
/// algorithm choices ("heap sort vs. quick sort", §2); the latter are
/// modelled as categorical parameters whose integer code indexes a label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParamKind {
    /// Plain integer knob.
    Int,
    /// Categorical choice; the value is an index into the label list.
    Categorical(Vec<String>),
}

/// One tunable parameter: name, bounds, default, and neighbour distance.
///
/// Bounds are [`Expr`]essions so that Appendix-B restrictions like
/// `{ int {1 9-$B 1} }` are representable; unrestricted parameters use
/// constant expressions. `static_min`/`static_max` give the outermost
/// envelope of the bounds and are what normalization uses ("each parameter
/// value is normalized … so that parameters with a wide range of values are
/// not given excessive weight", §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDef {
    name: String,
    kind: ParamKind,
    min: Expr,
    max: Expr,
    default: i64,
    step: i64,
    static_min: i64,
    static_max: i64,
}

impl ParamDef {
    /// An unrestricted integer parameter.
    ///
    /// # Panics
    /// Panics if `min > max`, `step <= 0`, or the default lies outside the
    /// bounds — these are programmer errors in the space declaration.
    pub fn int(name: impl Into<String>, min: i64, max: i64, default: i64, step: i64) -> Self {
        assert!(min <= max, "ParamDef {:?}: min > max", name.into());
        Self::checked(
            name.into(),
            ParamKind::Int,
            Expr::constant(min),
            Expr::constant(max),
            default,
            step,
            min,
            max,
        )
    }

    /// A categorical parameter over a list of labels; default is an index.
    ///
    /// # Panics
    /// Panics if `labels` is empty or the default index is out of range.
    pub fn categorical(name: impl Into<String>, labels: Vec<String>, default: usize) -> Self {
        assert!(!labels.is_empty(), "categorical parameter needs labels");
        assert!(default < labels.len(), "categorical default out of range");
        let max = labels.len() as i64 - 1;
        Self::checked(
            name.into(),
            ParamKind::Categorical(labels),
            Expr::constant(0),
            Expr::constant(max),
            default as i64,
            1,
            0,
            max,
        )
    }

    /// An integer parameter with expression bounds (Appendix B restriction).
    ///
    /// `static_min`/`static_max` must bound every value the expressions can
    /// take; they are used for normalization and simplex projection.
    ///
    /// # Panics
    /// Panics if `step <= 0` or `static_min > static_max`.
    pub fn restricted(
        name: impl Into<String>,
        min: Expr,
        max: Expr,
        default: i64,
        step: i64,
        static_min: i64,
        static_max: i64,
    ) -> Self {
        Self::checked(
            name.into(),
            ParamKind::Int,
            min,
            max,
            default,
            step,
            static_min,
            static_max,
        )
    }

    #[allow(clippy::too_many_arguments)] // private constructor mirroring the field list
    fn checked(
        name: String,
        kind: ParamKind,
        min: Expr,
        max: Expr,
        default: i64,
        step: i64,
        static_min: i64,
        static_max: i64,
    ) -> Self {
        assert!(step > 0, "ParamDef {name}: step must be positive");
        assert!(
            static_min <= static_max,
            "ParamDef {name}: static bounds inverted"
        );
        assert!(
            (static_min..=static_max).contains(&default),
            "ParamDef {name}: default {default} outside [{static_min}, {static_max}]"
        );
        ParamDef {
            name,
            kind,
            min,
            max,
            default,
            step,
            static_min,
            static_max,
        }
    }

    /// Parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Value kind.
    pub fn kind(&self) -> &ParamKind {
        &self.kind
    }

    /// Lower-bound expression.
    pub fn min_expr(&self) -> &Expr {
        &self.min
    }

    /// Upper-bound expression.
    pub fn max_expr(&self) -> &Expr {
        &self.max
    }

    /// Default value.
    pub fn default(&self) -> i64 {
        self.default
    }

    /// Distance between two neighbour values.
    pub fn step(&self) -> i64 {
        self.step
    }

    /// Outermost lower bound (used for normalization).
    pub fn static_min(&self) -> i64 {
        self.static_min
    }

    /// Outermost upper bound (used for normalization).
    pub fn static_max(&self) -> i64 {
        self.static_max
    }

    /// True if the bounds reference other parameters.
    pub fn is_restricted(&self) -> bool {
        !self.min.references().is_empty() || !self.max.references().is_empty()
    }

    /// Number of admissible values under the *static* bounds.
    pub fn static_cardinality(&self) -> u64 {
        ((self.static_max - self.static_min) / self.step) as u64 + 1
    }

    /// All admissible values under the static bounds, in ascending order.
    pub fn static_values(&self) -> Vec<i64> {
        (0..self.static_cardinality() as i64)
            .map(|i| self.static_min + i * self.step)
            .collect()
    }

    /// Normalize a value onto `[0, 1]` using the static bounds; a
    /// zero-width range maps to 0.5.
    pub fn normalize(&self, v: i64) -> f64 {
        if self.static_max == self.static_min {
            return 0.5;
        }
        (v - self.static_min) as f64 / (self.static_max - self.static_min) as f64
    }

    /// Inverse of [`normalize`](Self::normalize): map a fraction in `[0, 1]`
    /// back to the nearest admissible value on the step grid.
    pub fn denormalize(&self, frac: f64) -> i64 {
        let raw = self.static_min as f64
            + frac.clamp(0.0, 1.0) * (self.static_max - self.static_min) as f64;
        self.snap(raw)
    }

    /// Snap a continuous coordinate to the nearest admissible value on this
    /// parameter's step grid, clamped into the static bounds. This is the
    /// paper's "nearest integer point" adaptation of the simplex method.
    pub fn snap(&self, x: f64) -> i64 {
        let clamped = x.clamp(self.static_min as f64, self.static_max as f64);
        let steps = ((clamped - self.static_min as f64) / self.step as f64).round() as i64;
        // Clamp the step *count*, not the value: when the range is not a
        // multiple of the step, static_max itself is off-grid and value
        // clamping would produce an inadmissible point.
        let max_steps = (self.static_max - self.static_min) / self.step;
        self.static_min + steps.clamp(0, max_steps) * self.step
    }

    /// Label for a categorical value; `None` for integer parameters or
    /// out-of-range codes.
    pub fn label(&self, v: i64) -> Option<&str> {
        match &self.kind {
            ParamKind::Int => None,
            ParamKind::Categorical(labels) => usize::try_from(v)
                .ok()
                .and_then(|i| labels.get(i))
                .map(String::as_str),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_param_basics() {
        let p = ParamDef::int("buf", 1, 10, 5, 1);
        assert_eq!(p.name(), "buf");
        assert_eq!(p.default(), 5);
        assert_eq!(p.static_cardinality(), 10);
        assert_eq!(p.static_values(), (1..=10).collect::<Vec<_>>());
        assert!(!p.is_restricted());
    }

    #[test]
    fn stepped_param_values() {
        let p = ParamDef::int("mem", 0, 100, 20, 25);
        assert_eq!(p.static_values(), vec![0, 25, 50, 75, 100]);
        assert_eq!(p.static_cardinality(), 5);
    }

    #[test]
    fn normalization_roundtrip() {
        let p = ParamDef::int("x", 10, 50, 10, 10);
        assert_eq!(p.normalize(10), 0.0);
        assert_eq!(p.normalize(50), 1.0);
        assert!((p.normalize(30) - 0.5).abs() < 1e-12);
        for v in p.static_values() {
            assert_eq!(p.denormalize(p.normalize(v)), v);
        }
    }

    #[test]
    fn snap_to_grid() {
        let p = ParamDef::int("x", 0, 100, 0, 10);
        assert_eq!(p.snap(4.9), 0);
        assert_eq!(p.snap(5.1), 10);
        assert_eq!(p.snap(-50.0), 0);
        assert_eq!(p.snap(1e9), 100);
        assert_eq!(p.snap(95.0), 100); // .5 rounds away from zero
    }

    #[test]
    fn degenerate_single_value_param() {
        let p = ParamDef::int("fixed", 7, 7, 7, 1);
        assert_eq!(p.static_cardinality(), 1);
        assert_eq!(p.normalize(7), 0.5);
        assert_eq!(p.snap(123.0), 7);
    }

    #[test]
    fn categorical_labels() {
        let p = ParamDef::categorical(
            "sort",
            vec!["heap".into(), "quick".into(), "merge".into()],
            1,
        );
        assert_eq!(p.default(), 1);
        assert_eq!(p.label(0), Some("heap"));
        assert_eq!(p.label(2), Some("merge"));
        assert_eq!(p.label(3), None);
        assert_eq!(p.label(-1), None);
        assert_eq!(p.static_cardinality(), 3);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn zero_step_panics() {
        let _ = ParamDef::int("bad", 0, 10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn default_out_of_bounds_panics() {
        let _ = ParamDef::int("bad", 0, 10, 11, 1);
    }
}
