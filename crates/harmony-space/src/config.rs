//! Configurations: one concrete assignment of values to all parameters.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the search space: the i-th entry is the value of the i-th
/// parameter of the [`ParameterSpace`](crate::ParameterSpace) it belongs to.
///
/// Configurations are plain data — all space-aware operations
/// (normalization, feasibility, projection) live on the space so that a
/// configuration can be stored, serialized into the experience database,
/// and replayed later.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Configuration(Vec<i64>);

impl Configuration {
    /// Wrap a value vector.
    pub fn new(values: Vec<i64>) -> Self {
        Configuration(values)
    }

    /// The raw values.
    pub fn values(&self) -> &[i64] {
        &self.0
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the configuration has no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value of parameter `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> i64 {
        self.0[i]
    }

    /// Replace the value of parameter `i`, returning a new configuration.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn with_value(&self, i: usize, v: i64) -> Self {
        let mut vals = self.0.clone();
        vals[i] = v;
        Configuration(vals)
    }

    /// View as a continuous point (`f64` per coordinate) for the simplex
    /// kernel.
    pub fn to_point(&self) -> Vec<f64> {
        self.0.iter().map(|&v| v as f64).collect()
    }

    /// Consume and return the backing vector.
    pub fn into_values(self) -> Vec<i64> {
        self.0
    }
}

impl From<Vec<i64>> for Configuration {
    fn from(v: Vec<i64>) -> Self {
        Configuration(v)
    }
}

impl fmt::Debug for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Configuration{:?}", self.0)
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Configuration::new(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.get(1), 2);
        assert_eq!(c.values(), &[1, 2, 3]);
        assert_eq!(c.to_point(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn with_value_is_persistent() {
        let c = Configuration::new(vec![1, 2, 3]);
        let d = c.with_value(0, 9);
        assert_eq!(c.get(0), 1);
        assert_eq!(d.get(0), 9);
        assert_eq!(d.get(2), 3);
    }

    #[test]
    fn display_formats_values() {
        let c = Configuration::new(vec![4, 5]);
        assert_eq!(c.to_string(), "[4, 5]");
        assert_eq!(Configuration::new(vec![]).to_string(), "[]");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Configuration::new(vec![1, 2]);
        let b = Configuration::new(vec![1, 3]);
        assert!(a < b);
    }
}
