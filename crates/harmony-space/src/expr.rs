//! Arithmetic expressions over parameter references.
//!
//! Appendix B of the paper extends the resource specification language "so
//! it can support basic functional relations among parameters", e.g.
//! `{ harmonyBundle C { int {1 9-$B 1} }}`. An [`Expr`] is the AST of such
//! a bound; `$B` refers to the value of an earlier-declared parameter.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Evaluation error for an [`Expr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A `$name` reference could not be resolved.
    UnknownParam(String),
    /// Division by zero.
    DivisionByZero,
    /// Parse failure with a human-readable explanation.
    Parse(String),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::UnknownParam(p) => write!(f, "unknown parameter reference ${p}"),
            ExprError::DivisionByZero => write!(f, "division by zero"),
            ExprError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for ExprError {}

/// Arithmetic expression over integer constants and `$param` references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Reference to an earlier parameter's value (`$B`).
    Param(String),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Truncating integer quotient.
    Div(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Binary minimum.
    Min(Box<Expr>, Box<Expr>),
    /// Binary maximum.
    Max(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a literal.
    pub fn constant(v: i64) -> Self {
        Expr::Const(v)
    }

    /// Convenience constructor for a `$name` reference.
    pub fn param(name: impl Into<String>) -> Self {
        Expr::Param(name.into())
    }

    /// Evaluate with a resolver mapping parameter names to values.
    pub fn eval_with(&self, resolve: &dyn Fn(&str) -> Option<i64>) -> Result<i64, ExprError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Param(name) => resolve(name).ok_or_else(|| ExprError::UnknownParam(name.clone())),
            Expr::Add(a, b) => Ok(a.eval_with(resolve)?.wrapping_add(b.eval_with(resolve)?)),
            Expr::Sub(a, b) => Ok(a.eval_with(resolve)?.wrapping_sub(b.eval_with(resolve)?)),
            Expr::Mul(a, b) => Ok(a.eval_with(resolve)?.wrapping_mul(b.eval_with(resolve)?)),
            Expr::Div(a, b) => {
                let d = b.eval_with(resolve)?;
                if d == 0 {
                    return Err(ExprError::DivisionByZero);
                }
                Ok(a.eval_with(resolve)? / d)
            }
            Expr::Neg(a) => Ok(-a.eval_with(resolve)?),
            Expr::Min(a, b) => Ok(a.eval_with(resolve)?.min(b.eval_with(resolve)?)),
            Expr::Max(a, b) => Ok(a.eval_with(resolve)?.max(b.eval_with(resolve)?)),
        }
    }

    /// Evaluate a constant expression (no parameter references).
    pub fn eval_const(&self) -> Result<i64, ExprError> {
        self.eval_with(&|_| None)
    }

    /// Conservative interval evaluation: given `[lo, hi]` ranges for every
    /// referenced parameter, return an interval guaranteed to contain every
    /// value the expression can take. Used to derive the static bounds of
    /// Appendix-B restricted parameters.
    pub fn eval_interval(
        &self,
        resolve: &dyn Fn(&str) -> Option<(i64, i64)>,
    ) -> Result<(i64, i64), ExprError> {
        match self {
            Expr::Const(v) => Ok((*v, *v)),
            Expr::Param(name) => resolve(name).ok_or_else(|| ExprError::UnknownParam(name.clone())),
            Expr::Add(a, b) => {
                let (al, ah) = a.eval_interval(resolve)?;
                let (bl, bh) = b.eval_interval(resolve)?;
                Ok((al.saturating_add(bl), ah.saturating_add(bh)))
            }
            Expr::Sub(a, b) => {
                let (al, ah) = a.eval_interval(resolve)?;
                let (bl, bh) = b.eval_interval(resolve)?;
                Ok((al.saturating_sub(bh), ah.saturating_sub(bl)))
            }
            Expr::Mul(a, b) => {
                let (al, ah) = a.eval_interval(resolve)?;
                let (bl, bh) = b.eval_interval(resolve)?;
                let cands = [
                    al.saturating_mul(bl),
                    al.saturating_mul(bh),
                    ah.saturating_mul(bl),
                    ah.saturating_mul(bh),
                ];
                Ok((*cands.iter().min().unwrap(), *cands.iter().max().unwrap()))
            }
            Expr::Div(a, b) => {
                let (al, ah) = a.eval_interval(resolve)?;
                let (bl, bh) = b.eval_interval(resolve)?;
                // Candidate divisors: the interval endpoints plus ±1 when
                // the interval straddles zero (closest-to-zero nonzero
                // divisors produce the extreme quotients).
                let mut divs: Vec<i64> = Vec::with_capacity(4);
                for d in [bl, bh] {
                    if d != 0 {
                        divs.push(d);
                    }
                }
                if bl < 0 && bh > 0 {
                    divs.push(-1);
                    divs.push(1);
                } else if bl == 0 && bh > 0 {
                    divs.push(1);
                } else if bh == 0 && bl < 0 {
                    divs.push(-1);
                }
                if divs.is_empty() {
                    return Err(ExprError::DivisionByZero);
                }
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                for n in [al, ah] {
                    for &d in &divs {
                        let q = n / d;
                        lo = lo.min(q);
                        hi = hi.max(q);
                    }
                }
                Ok((lo, hi))
            }
            Expr::Neg(a) => {
                let (l, h) = a.eval_interval(resolve)?;
                Ok((h.saturating_neg(), l.saturating_neg()))
            }
            Expr::Min(a, b) => {
                let (al, ah) = a.eval_interval(resolve)?;
                let (bl, bh) = b.eval_interval(resolve)?;
                Ok((al.min(bl), ah.min(bh)))
            }
            Expr::Max(a, b) => {
                let (al, ah) = a.eval_interval(resolve)?;
                let (bl, bh) = b.eval_interval(resolve)?;
                Ok((al.max(bl), ah.max(bh)))
            }
        }
    }

    /// Names of all parameters this expression references, sorted/deduped.
    pub fn references(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Param(name) => {
                out.insert(name.clone());
            }
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Div(a, b)
            | Expr::Min(a, b)
            | Expr::Max(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Neg(a) => a.collect_refs(out),
        }
    }

    /// Parse an expression from RSL surface syntax.
    ///
    /// Grammar (precedence low→high): `+ -` | `* /` | unary `-` | atoms.
    /// Atoms: integer literals, `$name`, `min(a, b)`, `max(a, b)`,
    /// parenthesized expressions.
    ///
    /// ```
    /// use harmony_space::Expr;
    /// let e = Expr::parse("10-$B-$C").unwrap();
    /// let v = e.eval_with(&|n| match n { "B" => Some(3), "C" => Some(4), _ => None }).unwrap();
    /// assert_eq!(v, 3);
    /// ```
    pub fn parse(input: &str) -> Result<Self, ExprError> {
        let mut p = Parser {
            tokens: tokenize(input)?,
            pos: 0,
        };
        let e = p.expr()?;
        if p.pos != p.tokens.len() {
            return Err(ExprError::Parse(format!(
                "unexpected trailing token {:?}",
                p.tokens[p.pos]
            )));
        }
        Ok(e)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Param(n) => write!(f, "${n}"),
            Expr::Add(a, b) => write!(f, "({a}+{b})"),
            Expr::Sub(a, b) => write!(f, "({a}-{b})"),
            Expr::Mul(a, b) => write!(f, "({a}*{b})"),
            Expr::Div(a, b) => write!(f, "({a}/{b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
            Expr::Min(a, b) => write!(f, "min({a},{b})"),
            Expr::Max(a, b) => write!(f, "max({a},{b})"),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(i64),
    Ident(String),
    Param(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ExprError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '$' => {
                i += 1;
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if start == i {
                    return Err(ExprError::Parse("'$' with no parameter name".into()));
                }
                out.push(Token::Param(input[start..i].to_string()));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i]
                    .parse()
                    .map_err(|_| ExprError::Parse(format!("bad number {:?}", &input[start..i])))?;
                out.push(Token::Num(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => return Err(ExprError::Parse(format!("unexpected character {other:?}"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Token) -> Result<(), ExprError> {
        match self.next() {
            Some(ref got) if got == t => Ok(()),
            got => Err(ExprError::Parse(format!("expected {t:?}, got {got:?}"))),
        }
    }

    fn expr(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Minus) => {
                    self.pos += 1;
                    let rhs = self.term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ExprError> {
        let mut lhs = self.unary()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.pos += 1;
                    let rhs = self.unary()?;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Slash) => {
                    self.pos += 1;
                    let rhs = self.unary()?;
                    lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn unary(&mut self) -> Result<Expr, ExprError> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Expr, ExprError> {
        match self.next() {
            Some(Token::Num(n)) => Ok(Expr::Const(n)),
            Some(Token::Param(name)) => Ok(Expr::Param(name)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) if name == "min" || name == "max" => {
                self.expect(&Token::LParen)?;
                let a = self.expr()?;
                self.expect(&Token::Comma)?;
                let b = self.expr()?;
                self.expect(&Token::RParen)?;
                if name == "min" {
                    Ok(Expr::Min(Box::new(a), Box::new(b)))
                } else {
                    Ok(Expr::Max(Box::new(a), Box::new(b)))
                }
            }
            Some(Token::Ident(name)) => Err(ExprError::Parse(format!(
                "unknown identifier {name:?} (parameter references need '$')"
            ))),
            other => Err(ExprError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env<'a>(pairs: &'a [(&'a str, i64)]) -> impl Fn(&str) -> Option<i64> + 'a {
        move |name| pairs.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    #[test]
    fn constants_and_arithmetic() {
        assert_eq!(Expr::parse("42").unwrap().eval_const().unwrap(), 42);
        assert_eq!(Expr::parse("2+3*4").unwrap().eval_const().unwrap(), 14);
        assert_eq!(Expr::parse("(2+3)*4").unwrap().eval_const().unwrap(), 20);
        assert_eq!(Expr::parse("10-4-3").unwrap().eval_const().unwrap(), 3); // left assoc
        assert_eq!(Expr::parse("7/2").unwrap().eval_const().unwrap(), 3); // truncating
        assert_eq!(Expr::parse("-5+2").unwrap().eval_const().unwrap(), -3);
        assert_eq!(Expr::parse("--5").unwrap().eval_const().unwrap(), 5);
    }

    #[test]
    fn paper_appendix_b_bound() {
        // { harmonyBundle C { int {1 9-$B 1} }}
        let e = Expr::parse("9-$B").unwrap();
        let f = env(&[("B", 3)]);
        assert_eq!(e.eval_with(&f).unwrap(), 6);
        assert_eq!(
            e.references().into_iter().collect::<Vec<_>>(),
            vec!["B".to_string()]
        );
    }

    #[test]
    fn paper_matrix_partition_bound() {
        // { harmonyBundle Pn-1 { int {1 k-1-($P1+$P2+...) 1} }}
        let e = Expr::parse("100-1-($P1+$P2)").unwrap();
        let f = env(&[("P1", 30), ("P2", 20)]);
        assert_eq!(e.eval_with(&f).unwrap(), 49);
    }

    #[test]
    fn min_max_functions() {
        let e = Expr::parse("min($A, 10)").unwrap();
        assert_eq!(e.eval_with(&env(&[("A", 3)])).unwrap(), 3);
        assert_eq!(e.eval_with(&env(&[("A", 30)])).unwrap(), 10);
        let e = Expr::parse("max(1, $A-5)").unwrap();
        assert_eq!(e.eval_with(&env(&[("A", 2)])).unwrap(), 1);
    }

    #[test]
    fn unknown_param_error() {
        let e = Expr::parse("$missing").unwrap();
        assert_eq!(
            e.eval_const(),
            Err(ExprError::UnknownParam("missing".into()))
        );
    }

    #[test]
    fn division_by_zero_error() {
        let e = Expr::parse("1/($A-$A)").unwrap();
        assert_eq!(
            e.eval_with(&env(&[("A", 5)])),
            Err(ExprError::DivisionByZero)
        );
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(Expr::parse("2+"), Err(ExprError::Parse(_))));
        assert!(matches!(Expr::parse("$"), Err(ExprError::Parse(_))));
        assert!(matches!(Expr::parse("foo"), Err(ExprError::Parse(_))));
        assert!(matches!(Expr::parse("(1"), Err(ExprError::Parse(_))));
        assert!(matches!(Expr::parse("1 2"), Err(ExprError::Parse(_))));
        assert!(matches!(Expr::parse("min(1)"), Err(ExprError::Parse(_))));
        assert!(matches!(Expr::parse("2 @ 3"), Err(ExprError::Parse(_))));
    }

    #[test]
    fn display_roundtrip() {
        for src in ["9-$B", "min($A,10)", "2*(3+$X)", "-$Y"] {
            let e = Expr::parse(src).unwrap();
            let printed = e.to_string();
            let re = Expr::parse(&printed).unwrap();
            assert_eq!(e, re, "display of {src} did not reparse equal");
        }
    }

    #[test]
    fn interval_arithmetic_is_sound() {
        let ranges = |name: &str| -> Option<(i64, i64)> {
            match name {
                "A" => Some((1, 8)),
                "B" => Some((-3, 3)),
                _ => None,
            }
        };
        // Exhaustively check soundness: every concrete evaluation must fall
        // inside the interval result.
        for src in [
            "9-$A",
            "$A*$B",
            "$A+$B-2",
            "min($A,4)-max($B,0)",
            "-$A",
            "20/$A",
        ] {
            let e = Expr::parse(src).unwrap();
            let (lo, hi) = e.eval_interval(&ranges).unwrap();
            for a in 1..=8i64 {
                for b in -3..=3i64 {
                    let pairs = [("A", a), ("B", b)];
                    let f = env(&pairs);
                    let v = e.eval_with(&f).unwrap();
                    assert!(
                        (lo..=hi).contains(&v),
                        "{src}: value {v} outside [{lo}, {hi}] at A={a}, B={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn interval_division_straddling_zero() {
        let ranges = |name: &str| -> Option<(i64, i64)> { (name == "B").then_some((-3, 3)) };
        let e = Expr::parse("10/$B").unwrap();
        let (lo, hi) = e.eval_interval(&ranges).unwrap();
        assert!(
            lo <= -10 && hi >= 10,
            "interval [{lo}, {hi}] must cover ±10"
        );
        // All-zero divisor is an error.
        let zero = |name: &str| -> Option<(i64, i64)> { (name == "B").then_some((0, 0)) };
        assert_eq!(e.eval_interval(&zero), Err(ExprError::DivisionByZero));
    }

    #[test]
    fn references_collects_all() {
        let e = Expr::parse("$A + min($B, $C) * -$A").unwrap();
        let refs: Vec<String> = e.references().into_iter().collect();
        assert_eq!(
            refs,
            vec!["A".to_string(), "B".to_string(), "C".to_string()]
        );
    }
}
