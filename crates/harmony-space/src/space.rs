//! The parameter space: an ordered collection of parameters plus the
//! Appendix-B restriction semantics.

use crate::config::Configuration;
use crate::expr::ExprError;
use crate::param::ParamDef;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors arising while building or querying a space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// Two parameters share a name.
    DuplicateName(String),
    /// A bound expression references a parameter that is not declared
    /// earlier in the space ("the value for parameter D is decided after
    /// the values for parameter B and C are known" — references must be
    /// backward).
    ForwardReference {
        /// The parameter whose bound is at fault.
        param: String,
        /// The name it tried to reference.
        referenced: String,
    },
    /// A bound expression failed to evaluate.
    Eval(ExprError),
    /// A configuration has the wrong number of values.
    DimensionMismatch {
        /// The space's parameter count.
        expected: usize,
        /// The configuration's value count.
        got: usize,
    },
    /// The space has no parameters.
    Empty,
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::DuplicateName(n) => write!(f, "duplicate parameter name {n:?}"),
            SpaceError::ForwardReference { param, referenced } => write!(
                f,
                "parameter {param:?} references {referenced:?}, which is not declared before it"
            ),
            SpaceError::Eval(e) => write!(f, "bound evaluation failed: {e}"),
            SpaceError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "configuration has {got} values, space has {expected} parameters"
                )
            }
            SpaceError::Empty => write!(f, "parameter space has no parameters"),
        }
    }
}

impl std::error::Error for SpaceError {}

impl From<ExprError> for SpaceError {
    fn from(e: ExprError) -> Self {
        SpaceError::Eval(e)
    }
}

/// An ordered set of tunable parameters.
///
/// Order matters: restricted parameters may reference only
/// earlier-declared parameters, and the kernel decides values "for the
/// parameter B first … then the value for the parameter C based on it"
/// (Appendix B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterSpace {
    params: Vec<ParamDef>,
    #[serde(skip)]
    by_name: HashMap<String, usize>,
}

/// Builder for [`ParameterSpace`].
#[derive(Debug, Default)]
pub struct SpaceBuilder {
    params: Vec<ParamDef>,
}

impl SpaceBuilder {
    /// Append one parameter.
    pub fn param(mut self, def: ParamDef) -> Self {
        self.params.push(def);
        self
    }

    /// Append many parameters.
    pub fn params(mut self, defs: impl IntoIterator<Item = ParamDef>) -> Self {
        self.params.extend(defs);
        self
    }

    /// Validate and build the space.
    pub fn build(self) -> Result<ParameterSpace, SpaceError> {
        if self.params.is_empty() {
            return Err(SpaceError::Empty);
        }
        let mut by_name = HashMap::with_capacity(self.params.len());
        for (i, p) in self.params.iter().enumerate() {
            if by_name.insert(p.name().to_string(), i).is_some() {
                return Err(SpaceError::DuplicateName(p.name().to_string()));
            }
            for bound in [p.min_expr(), p.max_expr()] {
                for r in bound.references() {
                    match by_name.get(&r) {
                        Some(&j) if j < i => {}
                        _ => {
                            return Err(SpaceError::ForwardReference {
                                param: p.name().to_string(),
                                referenced: r,
                            })
                        }
                    }
                }
            }
        }
        Ok(ParameterSpace {
            params: self.params,
            by_name,
        })
    }
}

impl ParameterSpace {
    /// Start building a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder::default()
    }

    /// Build directly from a parameter list.
    pub fn new(params: Vec<ParamDef>) -> Result<Self, SpaceError> {
        SpaceBuilder { params }.build()
    }

    /// Rebuild the name index (needed after deserialization, where the
    /// index is skipped).
    pub fn reindex(&mut self) {
        self.by_name = self
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name().to_string(), i))
            .collect();
    }

    /// Number of parameters (the dimensionality of the search).
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// True if the space has no parameters (never true for a built space).
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// All parameter definitions, in declaration order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// The i-th parameter.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn param(&self, i: usize) -> &ParamDef {
        &self.params[i]
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if self.by_name.is_empty() && !self.params.is_empty() {
            // Deserialized space whose caller forgot reindex(); fall back
            // to a linear scan rather than returning wrong answers.
            return self.params.iter().position(|p| p.name() == name);
        }
        self.by_name.get(name).copied()
    }

    /// True if any parameter carries an Appendix-B restriction.
    pub fn is_restricted(&self) -> bool {
        self.params.iter().any(|p| p.is_restricted())
    }

    /// The all-defaults configuration.
    pub fn default_configuration(&self) -> Configuration {
        Configuration::new(self.params.iter().map(|p| p.default()).collect())
    }

    /// Size of the search space ignoring restrictions: the paper's `k^n`
    /// ("for a system with 10 parameters where each parameter has 2
    /// possible values, the size of the search space would be 2^10").
    pub fn unconstrained_size(&self) -> u128 {
        self.params
            .iter()
            .map(|p| p.static_cardinality() as u128)
            .product()
    }

    /// Exact number of feasible configurations under restrictions, or
    /// `None` once the running count exceeds `limit` (the space may be
    /// astronomically large; callers choose how much counting they can
    /// afford).
    pub fn restricted_size(&self, limit: u128) -> Option<u128> {
        let mut prefix = Vec::with_capacity(self.len());
        let mut count = 0u128;
        if self.count_rec(0, &mut prefix, &mut count, limit) {
            Some(count)
        } else {
            None
        }
    }

    fn count_rec(
        &self,
        depth: usize,
        prefix: &mut Vec<i64>,
        count: &mut u128,
        limit: u128,
    ) -> bool {
        if depth == self.len() {
            *count += 1;
            return *count <= limit;
        }
        let p = &self.params[depth];
        if !p.is_restricted() && self.params[depth..].iter().all(|q| !q.is_restricted()) {
            // No restrictions remain: the tail contributes a plain product.
            let tail: u128 = self.params[depth..]
                .iter()
                .map(|q| q.static_cardinality() as u128)
                .product();
            *count += tail;
            return *count <= limit;
        }
        let Ok((lo, hi)) = self.effective_bounds(depth, prefix) else {
            return true; // unevaluable branch contributes nothing
        };
        let mut v = self.grid_ceil(depth, lo);
        while v <= hi {
            prefix.push(v);
            let ok = self.count_rec(depth + 1, prefix, count, limit);
            prefix.pop();
            if !ok {
                return false;
            }
            v += p.step();
        }
        true
    }

    /// Effective `[lo, hi]` bounds of parameter `i` given the values of the
    /// parameters before it. The expression bounds are intersected with the
    /// static bounds; an inverted (empty) range is reported as-is so the
    /// caller can detect infeasibility (`lo > hi`).
    pub fn effective_bounds(&self, i: usize, prefix: &[i64]) -> Result<(i64, i64), SpaceError> {
        debug_assert!(prefix.len() >= i.min(self.len()), "prefix too short");
        let p = &self.params[i];
        let resolve = |name: &str| -> Option<i64> {
            self.index_of(name)
                .filter(|&j| j < prefix.len())
                .map(|j| prefix[j])
        };
        let lo = p.min_expr().eval_with(&resolve)?;
        let hi = p.max_expr().eval_with(&resolve)?;
        Ok((lo.max(p.static_min()), hi.min(p.static_max())))
    }

    /// Smallest on-grid value of parameter `i` that is `>= lo`.
    fn grid_ceil(&self, i: usize, lo: i64) -> i64 {
        let p = &self.params[i];
        let lo = lo.max(p.static_min());
        let delta = lo - p.static_min();
        let k = (delta + p.step() - 1).div_euclid(p.step());
        p.static_min() + k * p.step()
    }

    /// Largest on-grid value of parameter `i` that is `<= hi`.
    fn grid_floor(&self, i: usize, hi: i64) -> i64 {
        let p = &self.params[i];
        let hi = hi.min(p.static_max());
        let delta = hi - p.static_min();
        let k = delta.div_euclid(p.step());
        p.static_min() + k * p.step()
    }

    /// Is this configuration inside the (restricted) space and on-grid?
    pub fn is_feasible(&self, cfg: &Configuration) -> Result<bool, SpaceError> {
        if cfg.len() != self.len() {
            return Err(SpaceError::DimensionMismatch {
                expected: self.len(),
                got: cfg.len(),
            });
        }
        for (i, p) in self.params.iter().enumerate() {
            let v = cfg.get(i);
            let (lo, hi) = self.effective_bounds(i, &cfg.values()[..i])?;
            if v < lo || v > hi {
                return Ok(false);
            }
            if (v - p.static_min()) % p.step() != 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Project a continuous point onto the nearest feasible configuration.
    ///
    /// This is the paper's adaptation of the simplex method to discrete
    /// spaces: "using the resulting values from the nearest integer point
    /// in the space to approximate the performance at the selected point in
    /// the continuous space" (§2). Parameters are decided in declaration
    /// order so that restricted bounds can be evaluated against the already
    /// decided prefix. A collapsed (empty) effective range snaps to the
    /// nearest admissible grid value of its lower bound.
    ///
    /// # Panics
    /// Panics if `point.len() != self.len()`.
    pub fn project(&self, point: &[f64]) -> Configuration {
        assert_eq!(point.len(), self.len(), "project: dimension mismatch");
        let mut values = Vec::with_capacity(self.len());
        for (i, p) in self.params.iter().enumerate() {
            let snapped = p.snap(point[i]);
            let v = match self.effective_bounds(i, &values) {
                Ok((lo, hi)) if lo <= hi => {
                    let glo = self.grid_ceil(i, lo);
                    let ghi = self.grid_floor(i, hi);
                    if glo > ghi {
                        // Range narrower than one step: take the closest
                        // in-range endpoint's grid neighbour.
                        p.snap(lo as f64).clamp(p.static_min(), p.static_max())
                    } else {
                        snapped.clamp(glo, ghi)
                    }
                }
                // Empty or unevaluable range: fall back to static bounds.
                _ => snapped,
            };
            values.push(v);
        }
        Configuration::new(values)
    }

    /// Map a point of per-parameter fractions in `[0, 1]` to a feasible
    /// configuration. Fraction `f` of parameter `i` selects position `f`
    /// within its *effective* range given the earlier choices, so a uniform
    /// source distribution covers exactly the restricted space.
    pub fn from_fractions(&self, fracs: &[f64]) -> Configuration {
        assert_eq!(
            fracs.len(),
            self.len(),
            "from_fractions: dimension mismatch"
        );
        let mut values = Vec::with_capacity(self.len());
        for (i, p) in self.params.iter().enumerate() {
            let (lo, hi) = match self.effective_bounds(i, &values) {
                Ok((lo, hi)) if lo <= hi => (lo, hi),
                _ => (p.static_min(), p.static_max()),
            };
            let glo = self.grid_ceil(i, lo);
            let ghi = self.grid_floor(i, hi);
            let v = if glo > ghi {
                p.snap(lo as f64)
            } else {
                let steps = (ghi - glo) / p.step();
                let k = (fracs[i].clamp(0.0, 1.0) * (steps + 1) as f64) as i64;
                glo + k.min(steps) * p.step()
            };
            values.push(v);
        }
        Configuration::new(values)
    }

    /// Normalize a configuration onto the unit cube using static bounds.
    pub fn normalize(&self, cfg: &Configuration) -> Vec<f64> {
        assert_eq!(cfg.len(), self.len(), "normalize: dimension mismatch");
        self.params
            .iter()
            .zip(cfg.values())
            .map(|(p, &v)| p.normalize(v))
            .collect()
    }

    /// Euclidean distance between two configurations in normalized space.
    pub fn normalized_distance(&self, a: &Configuration, b: &Configuration) -> f64 {
        let na = self.normalize(a);
        let nb = self.normalize(b);
        na.iter()
            .zip(&nb)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// Iterate every feasible configuration in lexicographic order.
    ///
    /// Intended for exhaustive search on small spaces (Figure 4); the
    /// iterator is lazy, so callers may also just take a prefix.
    pub fn iter(&self) -> SpaceIter<'_> {
        SpaceIter::new(self)
    }
}

/// Lazy lexicographic iterator over all feasible configurations.
pub struct SpaceIter<'a> {
    space: &'a ParameterSpace,
    /// Current odometer value; `None` once exhausted.
    current: Option<Vec<i64>>,
}

impl<'a> SpaceIter<'a> {
    fn new(space: &'a ParameterSpace) -> Self {
        // Seed with the first feasible configuration, if any.
        let mut values = Vec::with_capacity(space.len());
        let mut ok = true;
        for i in 0..space.len() {
            match space.effective_bounds(i, &values) {
                Ok((lo, hi)) if lo <= hi => {
                    let glo = space.grid_ceil(i, lo);
                    if glo > space.grid_floor(i, hi) {
                        ok = false;
                        break;
                    }
                    values.push(glo);
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        SpaceIter {
            space,
            current: if ok { Some(values) } else { None },
        }
    }

    /// Advance the odometer (try to increment the deepest digit; on
    /// overflow, carry left). Returns false when exhausted.
    fn advance(&mut self) -> bool {
        let Some(mut values) = self.current.take() else {
            return false;
        };
        let n = self.space.len();
        let mut depth = n;
        loop {
            if depth == 0 {
                return false;
            }
            depth -= 1;
            let p = self.space.param(depth);
            let (_, hi) = match self.space.effective_bounds(depth, &values[..depth]) {
                Ok(b) => b,
                Err(_) => {
                    continue; // treat as overflow, carry further left
                }
            };
            let next = values[depth] + p.step();
            if next <= self.space.grid_floor(depth, hi) {
                values[depth] = next;
                // Re-seed the digits to the right at their minima.
                let mut i = depth + 1;
                while i < n {
                    match self.space.effective_bounds(i, &values[..i]) {
                        Ok((lo, hi)) if lo <= hi => {
                            let glo = self.space.grid_ceil(i, lo);
                            if glo > self.space.grid_floor(i, hi) {
                                break; // infeasible suffix: keep carrying
                            }
                            values[i] = glo;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                if i == n {
                    self.current = Some(values);
                    return true;
                }
                // Suffix infeasible for this digit value: keep incrementing
                // at the same depth.
                depth += 1;
            }
        }
    }
}

impl Iterator for SpaceIter<'_> {
    type Item = Configuration;

    fn next(&mut self) -> Option<Configuration> {
        let out = self
            .current
            .as_ref()
            .map(|v| Configuration::new(v.clone()))?;
        self.advance();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn simple_space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("a", 0, 4, 2, 2)) // {0, 2, 4}
            .param(ParamDef::int("b", 1, 3, 1, 1)) // {1, 2, 3}
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validations() {
        let dup = ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 1, 0, 1))
            .param(ParamDef::int("x", 0, 1, 0, 1))
            .build();
        assert!(matches!(dup, Err(SpaceError::DuplicateName(_))));

        let fwd = ParameterSpace::builder()
            .param(ParamDef::restricted(
                "a",
                Expr::parse("$b").unwrap(),
                Expr::constant(10),
                5,
                1,
                0,
                10,
            ))
            .param(ParamDef::int("b", 0, 10, 5, 1))
            .build();
        assert!(matches!(fwd, Err(SpaceError::ForwardReference { .. })));

        assert!(matches!(
            ParameterSpace::builder().build(),
            Err(SpaceError::Empty)
        ));
    }

    #[test]
    fn sizes() {
        let s = simple_space();
        assert_eq!(s.unconstrained_size(), 9);
        assert_eq!(s.restricted_size(1_000), Some(9));
        assert_eq!(s.restricted_size(5), None); // over the cap
    }

    #[test]
    fn paper_appendix_b_space_size() {
        // B+C+D = 10 with each >= 1: B in [1,8], C in [1, 9-B].
        // Feasible (B, C): sum over B of (9-B) = 8+7+...+1 = 36
        // versus 8*8 = 64 unconstrained.
        let s = ParameterSpace::builder()
            .param(ParamDef::int("B", 1, 8, 1, 1))
            .param(ParamDef::restricted(
                "C",
                Expr::constant(1),
                Expr::parse("9-$B").unwrap(),
                1,
                1,
                1,
                8,
            ))
            .build()
            .unwrap();
        assert!(s.is_restricted());
        assert_eq!(s.unconstrained_size(), 64);
        assert_eq!(s.restricted_size(u128::MAX), Some(36));
        assert_eq!(s.iter().count(), 36);
    }

    #[test]
    fn feasibility() {
        let s = simple_space();
        assert!(s.is_feasible(&Configuration::new(vec![2, 3])).unwrap());
        assert!(!s.is_feasible(&Configuration::new(vec![3, 3])).unwrap()); // off-grid
        assert!(!s.is_feasible(&Configuration::new(vec![6, 1])).unwrap()); // out of range
        assert!(s.is_feasible(&Configuration::new(vec![1])).is_err()); // wrong dim
    }

    #[test]
    fn restricted_feasibility() {
        let s = ParameterSpace::builder()
            .param(ParamDef::int("B", 1, 8, 1, 1))
            .param(ParamDef::restricted(
                "C",
                Expr::constant(1),
                Expr::parse("9-$B").unwrap(),
                1,
                1,
                1,
                8,
            ))
            .build()
            .unwrap();
        assert!(s.is_feasible(&Configuration::new(vec![6, 3])).unwrap());
        // "configurations that include B=6 and C=6 will be discarded
        // automatically" — 6+6 exceeds the budget.
        assert!(!s.is_feasible(&Configuration::new(vec![6, 6])).unwrap());
    }

    #[test]
    fn projection_snaps_and_clamps() {
        let s = simple_space();
        assert_eq!(s.project(&[2.9, 0.2]).values(), &[2, 1]);
        assert_eq!(s.project(&[-10.0, 10.0]).values(), &[0, 3]);
        assert_eq!(s.project(&[3.5, 2.0]).values(), &[4, 2]);
    }

    #[test]
    fn projection_respects_restriction() {
        let s = ParameterSpace::builder()
            .param(ParamDef::int("B", 1, 8, 1, 1))
            .param(ParamDef::restricted(
                "C",
                Expr::constant(1),
                Expr::parse("9-$B").unwrap(),
                1,
                1,
                1,
                8,
            ))
            .build()
            .unwrap();
        // B projects to 6, so C is capped at 3 even though 7 was requested.
        let cfg = s.project(&[6.2, 7.0]);
        assert_eq!(cfg.values(), &[6, 3]);
        assert!(s.is_feasible(&cfg).unwrap());
    }

    #[test]
    fn iterator_counts_match_and_are_feasible() {
        let s = simple_space();
        let all: Vec<Configuration> = s.iter().collect();
        assert_eq!(all.len(), 9);
        for c in &all {
            assert!(s.is_feasible(c).unwrap());
        }
        // Lexicographic order, first and last elements.
        assert_eq!(all[0].values(), &[0, 1]);
        assert_eq!(all[8].values(), &[4, 3]);
        // No duplicates.
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn from_fractions_covers_space() {
        let s = simple_space();
        assert_eq!(s.from_fractions(&[0.0, 0.0]).values(), &[0, 1]);
        assert_eq!(s.from_fractions(&[0.99, 0.99]).values(), &[4, 3]);
        assert_eq!(s.from_fractions(&[0.5, 0.5]).values(), &[2, 2]);
    }

    #[test]
    fn normalized_distance_is_metric_like() {
        let s = simple_space();
        let a = Configuration::new(vec![0, 1]);
        let b = Configuration::new(vec![4, 3]);
        let d = s.normalized_distance(&a, &b);
        assert!((d - (2.0f64).sqrt()).abs() < 1e-12); // both coords differ by full range
        assert_eq!(s.normalized_distance(&a, &a), 0.0);
        assert_eq!(s.normalized_distance(&a, &b), s.normalized_distance(&b, &a));
    }

    #[test]
    fn default_configuration_is_feasible() {
        let s = simple_space();
        assert!(s.is_feasible(&s.default_configuration()).unwrap());
    }

    #[test]
    fn index_of_finds_params() {
        let s = simple_space();
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
    }
}
