//! Metric handles for the evaluation engine, registered lazily in the
//! process-global [`harmony_obs`] registry.
//!
//! Metric names exported here:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `harmony_exec_batches_total` | counter | evaluation batches submitted to an executor |
//! | `harmony_exec_evaluations_total` | counter | configurations submitted across all batches |
//! | `harmony_exec_batch_seconds` | histogram | wall time per `evaluate_batch` call |
//! | `harmony_exec_queue_depth` | gauge | configurations claimed-or-waiting in in-flight batches |
//! | `harmony_exec_cache_hits_total` | counter | memo-cache lookups answered without a measurement |
//! | `harmony_exec_cache_misses_total` | counter | memo-cache lookups that required a measurement |
//! | `harmony_exec_cache_evictions_total` | counter | entries dropped by the capacity bound |
//! | `harmony_exec_cache_entries` | gauge | entries currently resident across all caches |
//! | `harmony_exec_pool_panics_total` | counter | task-pool jobs that panicked (caught; worker survives) |

use harmony_obs::metrics::{global, Counter, Gauge, Histogram, LATENCY_SECONDS};
use std::sync::{Arc, OnceLock};

macro_rules! handle {
    ($fn_name:ident, $kind:ty, $init:expr) => {
        pub(crate) fn $fn_name() -> &'static Arc<$kind> {
            static H: OnceLock<Arc<$kind>> = OnceLock::new();
            H.get_or_init(|| $init)
        }
    };
}

handle!(
    batches_total,
    Counter,
    global().counter(
        "harmony_exec_batches_total",
        "Evaluation batches submitted to an executor.",
    )
);

handle!(
    evaluations_total,
    Counter,
    global().counter(
        "harmony_exec_evaluations_total",
        "Configurations submitted for evaluation across all batches.",
    )
);

handle!(
    batch_seconds,
    Histogram,
    global().histogram(
        "harmony_exec_batch_seconds",
        "Wall time per evaluate_batch call.",
        LATENCY_SECONDS,
    )
);

handle!(
    queue_depth,
    Gauge,
    global().gauge(
        "harmony_exec_queue_depth",
        "Configurations claimed-or-waiting in in-flight batches.",
    )
);

handle!(
    cache_hits_total,
    Counter,
    global().counter(
        "harmony_exec_cache_hits_total",
        "Memo-cache lookups answered without a measurement.",
    )
);

handle!(
    cache_misses_total,
    Counter,
    global().counter(
        "harmony_exec_cache_misses_total",
        "Memo-cache lookups that required a measurement.",
    )
);

handle!(
    cache_evictions_total,
    Counter,
    global().counter(
        "harmony_exec_cache_evictions_total",
        "Memo-cache entries dropped by the capacity bound.",
    )
);

handle!(
    cache_entries,
    Gauge,
    global().gauge(
        "harmony_exec_cache_entries",
        "Memo-cache entries currently resident across all caches.",
    )
);

handle!(
    pool_panics_total,
    Counter,
    global().counter(
        "harmony_exec_pool_panics_total",
        "Task-pool jobs that panicked (caught; the worker survives).",
    )
);

/// Touch every metric handle so the series appear in the registry (and
/// therefore in a daemon's `Stats` exposition) before first use.
pub fn preregister() {
    batches_total();
    evaluations_total();
    batch_seconds();
    queue_depth();
    cache_hits_total();
    cache_misses_total();
    cache_evictions_total();
    cache_entries();
    pool_panics_total();
}
