//! A persistent bounded worker pool for heterogeneous tasks.
//!
//! [`Executor`](crate::Executor) is batch-scoped: it spawns scoped
//! threads per `evaluate_batch` call and tears them down when the batch
//! returns, which is the right shape for a tuning kernel that works in
//! bursts. A server event loop needs the opposite shape — a fixed set
//! of long-lived workers draining an unbounded queue of small,
//! unrelated jobs — so [`TaskPool`] provides it: `N` named threads, one
//! shared FIFO, submit-and-forget semantics, and an orderly shutdown
//! that drains everything already queued.
//!
//! The pool is deliberately minimal: jobs are boxed `FnOnce` closures,
//! results travel back through whatever channel the caller baked into
//! the closure, and a panicking job takes down neither its worker nor
//! the pool (the panic is caught, counted, and logged).

use harmony_obs::event::{event, Level};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of worker threads draining one shared job queue.
///
/// Jobs run in submission order (single FIFO) but complete in whatever
/// order the workers finish them. Dropping the pool closes the queue
/// and joins the workers, so every job submitted before the drop still
/// runs.
pub struct TaskPool {
    tx: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl TaskPool {
    /// Spawn a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> TaskPool {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("harmony-task-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn task-pool worker")
            })
            .collect();
        TaskPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Queue a job. Never blocks; the queue is unbounded, so callers
    /// that need backpressure must bound admission themselves (the
    /// daemon does, at its connection cap).
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        if let Some(tx) = &self.tx {
            // The only way a send fails is every worker having exited,
            // which only happens after shutdown took `tx`.
            let _ = tx.send(Box::new(job));
        }
    }

    /// Close the queue and join the workers after they drain it.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.tx.take();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>) {
    loop {
        // Lock only to receive: the guard is a temporary that drops
        // before the job runs, so workers never serialize on job bodies.
        let job = match rx.lock().expect("task queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => break, // queue closed and drained
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        if result.is_err() {
            crate::obs::pool_panics_total().inc();
            event(Level::Error, "exec.task_panicked").emit();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_submitted_job() {
        let pool = TaskPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_drains_the_queue() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = TaskPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_worker() {
        let pool = TaskPool::new(1);
        let before = crate::obs::pool_panics_total().get();
        pool.submit(|| panic!("job goes boom"));
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        });
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 1, "worker survived");
        assert!(crate::obs::pool_panics_total().get() > before);
    }

    #[test]
    fn at_least_one_worker() {
        let pool = TaskPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
