//! Sharded exact-config memo cache.

use crate::obs;
use harmony_space::Configuration;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shard count: enough to keep lock contention negligible at the job
/// counts the executor runs (a handful of threads), small enough that a
/// tiny capacity still spreads usefully.
const SHARDS: usize = 16;

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<Vec<i64>, f64>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Vec<i64>>,
}

/// An exact-match memo cache over discrete configurations.
///
/// Keys are the raw parameter values; two configurations hit the same
/// entry iff they are value-identical — there is no interpolation here
/// (that is [`estimate`](https://docs.rs/harmony)'s job), just a memo of
/// what has already been measured. Entries are spread over
/// mutex-guarded shards by key hash, each shard FIFO-evicting once it
/// exceeds its slice of the capacity, so concurrent workers rarely
/// contend on the same lock.
///
/// Hit/miss/eviction counts feed both the per-cache accessors and the
/// process-global `harmony_exec_cache_*` metrics.
#[derive(Debug)]
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MemoCache {
    /// A cache bounded to roughly `capacity` entries (rounded up to a
    /// multiple of the shard count).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "memo cache capacity must be positive");
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity: capacity.div_ceil(SHARDS),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, values: &[i64]) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        values.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// The memoized performance of `config`, if present. Counts a hit
    /// or a miss either way.
    pub fn get(&self, config: &Configuration) -> Option<f64> {
        let shard = self.shard(config.values()).lock().expect("cache poisoned");
        match shard.map.get(config.values()).copied() {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::cache_hits_total().inc();
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::cache_misses_total().inc();
                None
            }
        }
    }

    /// Memoize a measurement. First write wins: re-inserting an already
    /// cached configuration keeps the original value, so every reader
    /// sees one consistent performance per configuration.
    pub fn insert(&self, config: &Configuration, value: f64) {
        let mut shard = self.shard(config.values()).lock().expect("cache poisoned");
        if shard.map.contains_key(config.values()) {
            return;
        }
        shard.map.insert(config.values().to_vec(), value);
        shard.order.push_back(config.values().to_vec());
        obs::cache_entries().inc();
        while shard.map.len() > self.shard_capacity {
            if let Some(old) = shard.order.pop_front() {
                shard.map.remove(&old);
                obs::cache_evictions_total().inc();
                obs::cache_entries().dec();
            }
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").map.len())
            .sum()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity bound (after per-shard rounding).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(v: i64) -> Configuration {
        Configuration::new(vec![v, v * 7])
    }

    #[test]
    fn get_insert_roundtrip_with_accounting() {
        let cache = MemoCache::new(64);
        assert_eq!(cache.get(&cfg(1)), None);
        cache.insert(&cfg(1), 42.0);
        assert_eq!(cache.get(&cfg(1)), Some(42.0));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn first_write_wins() {
        let cache = MemoCache::new(64);
        cache.insert(&cfg(5), 1.0);
        cache.insert(&cfg(5), 2.0);
        assert_eq!(cache.get(&cfg(5)), Some(1.0));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_bound_evicts_fifo_per_shard() {
        let cache = MemoCache::new(16); // one entry per shard
        for v in 0..1000 {
            cache.insert(&cfg(v), v as f64);
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.capacity() >= 16);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        MemoCache::new(0);
    }

    #[test]
    fn concurrent_use_is_consistent() {
        let cache = MemoCache::new(4096);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                scope.spawn(move || {
                    for v in 0..200 {
                        cache.insert(&cfg(v), v as f64);
                        assert_eq!(cache.get(&cfg(v)), Some(v as f64), "thread {t}");
                    }
                });
            }
        });
        assert_eq!(cache.len(), 200);
        assert_eq!(cache.hits(), 1600);
    }
}
