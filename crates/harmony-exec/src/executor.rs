//! The order-preserving scoped worker pool.

use crate::cache::MemoCache;
use crate::obs;
use harmony_obs::event::monotonic_us;
use harmony_obs::trace::{self, stage, TraceContext};
use harmony_space::Configuration;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A batch evaluator over a fixed number of jobs.
///
/// Workers are scoped threads spawned per batch (`std::thread::scope`),
/// claiming work items through a shared atomic cursor and reporting
/// results tagged with their input index — so the output order is the
/// input order and, for a pure evaluation function, the parallel result
/// is bit-identical to the sequential one.
///
/// A panicking evaluation does not poison anything: the remaining items
/// are abandoned, every worker drains, and the panic is re-raised in
/// the caller once the pool has been torn down. The next
/// [`evaluate_batch`](Executor::evaluate_batch) on the same executor
/// starts clean.
#[derive(Debug, Clone)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor running `jobs` evaluations concurrently (clamped to
    /// at least 1). `Executor::new(1)` is exactly the sequential loop.
    pub fn new(jobs: usize) -> Self {
        Executor { jobs: jobs.max(1) }
    }

    /// The configured concurrency.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluate every configuration, returning performances in input
    /// order (`out[i] == eval(&configs[i])`).
    ///
    /// # Panics
    /// Re-raises the first panic any evaluation raised, after all
    /// workers have drained.
    pub fn evaluate_batch<F>(&self, configs: &[Configuration], eval: &F) -> Vec<f64>
    where
        F: Fn(&Configuration) -> f64 + Sync,
    {
        obs::batches_total().inc();
        obs::evaluations_total().add(configs.len() as u64);
        let _timer = obs::batch_seconds().start_timer();
        // When the caller is inside a trace, every batch item gets a
        // queue-wait span (submission → claimed by a worker) and a run
        // span (claimed → done) under the caller's current span — the
        // "was it slow, or just waiting for a slot?" attribution.
        let tctx = if trace::is_enabled() {
            trace::current()
        } else {
            None
        };
        let batch_start = monotonic_us();
        let workers = self.jobs.min(configs.len());
        if workers <= 1 {
            return configs
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let claimed = monotonic_us();
                    let v = eval(c);
                    if let Some(ctx) = &tctx {
                        record_item(ctx, i, batch_start, claimed, false);
                    }
                    v
                })
                .collect();
        }

        let queue = obs::queue_depth();
        queue.add(configs.len() as i64);
        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        let mut results = vec![0.0f64; configs.len()];
        let mut processed = 0usize;
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;

        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (cursor, abort, tctx) = (&cursor, &abort, &tctx);
                    scope.spawn(move || {
                        let mut local: Vec<(usize, f64)> = Vec::new();
                        let mut caught: Option<Box<dyn std::any::Any + Send>> = None;
                        while !abort.load(Ordering::Relaxed) {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= configs.len() {
                                break;
                            }
                            let claimed = monotonic_us();
                            match catch_unwind(AssertUnwindSafe(|| eval(&configs[i]))) {
                                Ok(v) => {
                                    local.push((i, v));
                                    queue.dec();
                                    if let Some(ctx) = tctx {
                                        record_item(ctx, i, batch_start, claimed, false);
                                    }
                                }
                                Err(p) => {
                                    abort.store(true, Ordering::Relaxed);
                                    caught = Some(p);
                                    queue.dec();
                                    if let Some(ctx) = tctx {
                                        record_item(ctx, i, batch_start, claimed, true);
                                    }
                                    break;
                                }
                            }
                        }
                        (local, caught)
                    })
                })
                .collect();
            for h in handles {
                let (local, caught) = h.join().expect("executor worker cannot panic");
                processed += local.len();
                for (i, v) in local {
                    results[i] = v;
                }
                if let Some(p) = caught {
                    processed += 1;
                    panic_payload.get_or_insert(p);
                }
            }
        });

        // Items never claimed (abandoned after a panic) are still on the
        // gauge; take them off so the depth returns to zero.
        queue.add(processed as i64 - configs.len() as i64);
        if let Some(p) = panic_payload {
            resume_unwind(p);
        }
        results
    }

    /// Like [`evaluate_batch`](Self::evaluate_batch), but consult
    /// `cache` before any measurement and record results into it.
    ///
    /// Duplicate misses within one batch are measured once and share the
    /// value — the same answer a sequential consult-then-measure loop
    /// would produce, where the first measurement seeds the cache for
    /// every later occurrence.
    pub fn evaluate_batch_cached<F>(
        &self,
        configs: &[Configuration],
        cache: &MemoCache,
        eval: &F,
    ) -> Vec<f64>
    where
        F: Fn(&Configuration) -> f64 + Sync,
    {
        let cached: Vec<Option<f64>> = configs.iter().map(|c| cache.get(c)).collect();
        // Unique missing configurations, in first-occurrence order.
        let mut miss_slot: HashMap<&Configuration, usize> = HashMap::new();
        let mut misses: Vec<Configuration> = Vec::new();
        for (c, hit) in configs.iter().zip(&cached) {
            if hit.is_none() && !miss_slot.contains_key(c) {
                miss_slot.insert(c, misses.len());
                misses.push(c.clone());
            }
        }
        let measured = self.evaluate_batch(&misses, eval);
        for (c, &v) in misses.iter().zip(&measured) {
            cache.insert(c, v);
        }
        configs
            .iter()
            .zip(cached)
            .map(|(c, hit)| hit.unwrap_or_else(|| measured[miss_slot[c]]))
            .collect()
    }
}

impl Default for Executor {
    /// The sequential executor.
    fn default() -> Self {
        Executor::new(1)
    }
}

/// One batch item's trace attribution: a `queue.wait` span from batch
/// submission to the moment a worker claimed the item, and an
/// `exec.run` span from the claim to now (the evaluation just ended).
/// `detail` is the item's batch index.
fn record_item(ctx: &TraceContext, index: usize, batch_start: u64, claimed: u64, error: bool) {
    let detail = index.to_string();
    trace::record_span(
        ctx.trace_id,
        trace::new_id(),
        ctx.span_id,
        stage::QUEUE_WAIT,
        &detail,
        batch_start,
        claimed,
        false,
    );
    trace::record_span(
        ctx.trace_id,
        trace::new_id(),
        ctx.span_id,
        stage::EXEC_RUN,
        &detail,
        claimed,
        monotonic_us(),
        error,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs(n: i64) -> Vec<Configuration> {
        (0..n)
            .map(|i| Configuration::new(vec![i, i * 3 % 17]))
            .collect()
    }

    fn eval(c: &Configuration) -> f64 {
        (c.get(0) * 31 + c.get(1)) as f64 * 0.125
    }

    #[test]
    fn preserves_input_order_at_any_job_count() {
        let cfgs = configs(100);
        let expected: Vec<f64> = cfgs.iter().map(eval).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = Executor::new(jobs).evaluate_batch(&cfgs, &eval);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let out = Executor::new(4).evaluate_batch(&[], &eval);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_jobs_clamps_to_sequential() {
        let ex = Executor::new(0);
        assert_eq!(ex.jobs(), 1);
        let cfgs = configs(5);
        assert_eq!(
            ex.evaluate_batch(&cfgs, &eval),
            cfgs.iter().map(eval).collect::<Vec<_>>()
        );
    }

    #[test]
    fn panic_propagates_and_does_not_poison_the_pool() {
        let ex = Executor::new(4);
        let cfgs = configs(50);
        let bomb = |c: &Configuration| {
            if c.get(0) == 23 {
                panic!("objective exploded");
            }
            eval(c)
        };
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| ex.evaluate_batch(&cfgs, &bomb)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "objective exploded");
        // The same executor keeps working afterwards.
        let ok = ex.evaluate_batch(&cfgs, &eval);
        assert_eq!(ok, cfgs.iter().map(eval).collect::<Vec<_>>());
    }

    #[test]
    fn cached_batches_measure_each_unique_config_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let counted = |c: &Configuration| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval(c)
        };
        let cache = MemoCache::new(1024);
        let ex = Executor::new(4);
        // Batch with each config twice.
        let mut cfgs = configs(20);
        cfgs.extend(configs(20));
        let expected: Vec<f64> = cfgs.iter().map(eval).collect();
        let got = ex.evaluate_batch_cached(&cfgs, &cache, &counted);
        assert_eq!(got, expected);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            20,
            "duplicates share one measurement"
        );
        // A second pass is answered entirely from the cache.
        let again = ex.evaluate_batch_cached(&cfgs, &cache, &counted);
        assert_eq!(again, expected);
        assert_eq!(calls.load(Ordering::Relaxed), 20);
    }
}
