#![warn(missing_docs)]

//! Parallel evaluation engine for the harmony workspace.
//!
//! Every expensive step of the tuning pipeline — §3 sensitivity probes,
//! §4.1 initial-simplex evaluation, exhaustive/random search, Appendix-B
//! factorial designs — is a batch of *independent* objective
//! evaluations. This crate supplies the two pieces that exploit that
//! shape without changing any result:
//!
//! * [`Executor`] — a scoped worker pool whose
//!   [`evaluate_batch`](Executor::evaluate_batch) preserves input order:
//!   slot `i` of the output is exactly `eval(&configs[i])`, so for a
//!   pure evaluation function the parallel result is bit-identical to
//!   the sequential one regardless of the job count.
//! * [`TaskPool`] — the complementary long-lived shape: a fixed set of
//!   workers draining one FIFO of submit-and-forget jobs, used by the
//!   daemon's event-driven reactor to keep slow request handling off
//!   its event loop.
//! * [`MemoCache`] — a sharded exact-config memo cache keyed on the
//!   discrete parameter values, with a capacity bound (FIFO eviction per
//!   shard) and hit/miss accounting. The discrete space revisits
//!   configurations constantly (projection collapses nearby continuous
//!   proposals onto the same grid point); the cache answers those
//!   repeats without paying for a measurement.
//!
//! Both are instrumented through the process-global [`harmony_obs`]
//! metrics registry (`harmony_exec_*` series); call [`preregister`] at
//! daemon start so the series are visible in a `Stats` exposition
//! before the first batch runs.
//!
//! # Caching vs. noisy objectives
//!
//! Memoization changes semantics for *noisy* objectives: a cached
//! configuration always answers with its first measured value instead
//! of a fresh sample. That is exactly what the paper's experience reuse
//! wants inside one tuning session (the kernel should not chase noise
//! on a configuration it already paid for), but it silently defeats
//! repeat-averaging defences — so the sensitivity tool's noise floor is
//! always measured uncached, and callers that need fresh samples per
//! repeat should pass no cache.
//!
//! ```
//! use harmony_exec::{Executor, MemoCache};
//! use harmony_space::Configuration;
//!
//! let configs: Vec<Configuration> = (0..64)
//!     .map(|i| Configuration::new(vec![i, i % 7]))
//!     .collect();
//! let eval = |c: &Configuration| (c.get(0) * c.get(1)) as f64;
//!
//! let sequential = Executor::new(1).evaluate_batch(&configs, &eval);
//! let parallel = Executor::new(4).evaluate_batch(&configs, &eval);
//! assert_eq!(sequential, parallel, "order-preserving and bit-identical");
//!
//! let cache = MemoCache::new(1024);
//! let first = Executor::new(4).evaluate_batch_cached(&configs, &cache, &eval);
//! let again = Executor::new(4).evaluate_batch_cached(&configs, &cache, &eval);
//! assert_eq!(first, again);
//! assert_eq!(cache.hits(), 64, "second pass answered from the cache");
//! ```

pub mod cache;
pub mod executor;
pub mod obs;
pub mod pool;

pub use cache::MemoCache;
pub use executor::Executor;
pub use obs::preregister;
pub use pool::TaskPool;
