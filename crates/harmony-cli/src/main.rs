//! `harmony-cli` entry point: parse, run, print, exit non-zero on error.

use harmony_cli::{commands, parse_args};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", harmony_cli::args::USAGE);
            std::process::exit(2);
        }
    };
    match commands::run(cli.command) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
