//! Measuring an external command as an [`Objective`].

use harmony::objective::Objective;
use harmony_space::{Configuration, ParameterSpace};
use std::fmt;
use std::process::Command;

/// Errors from one external measurement.
#[derive(Debug)]
pub enum MeasureError {
    /// Spawning the command failed.
    Spawn(std::io::Error),
    /// The command exited unsuccessfully.
    Failed {
        /// Exit status description.
        status: String,
        /// Captured stderr (truncated).
        stderr: String,
    },
    /// Stdout's last non-empty line did not parse as a number.
    BadOutput(String),
}

impl fmt::Display for MeasureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasureError::Spawn(e) => write!(f, "failed to run measurement command: {e}"),
            MeasureError::Failed { status, stderr } => {
                write!(f, "measurement command failed ({status}): {stderr}")
            }
            MeasureError::BadOutput(line) => {
                write!(f, "measurement output is not a number: {line:?}")
            }
        }
    }
}

impl std::error::Error for MeasureError {}

/// An objective that measures configurations by running an external
/// command with `HARMONY_<NAME>=<value>` environment variables and reading
/// the last non-empty stdout line as the performance.
///
/// [`measure_once`](Self::measure_once) is the primary interface: it
/// returns a [`MeasureError`] describing exactly what went wrong (spawn
/// failure, non-zero exit with captured stderr, unparseable output), and
/// the tuning loops propagate that error immediately instead of feeding a
/// sentinel value into the search.
///
/// The [`Objective`] impl exists for callers whose trait signature cannot
/// carry errors (the sensitivity prioritizer): there a failure folds to
/// `-inf`, and `max_failures` consecutive failures abort via panic since
/// analysis cannot meaningfully continue without measurements. Callers
/// should probe the command once via `measure_once` first to surface
/// configuration mistakes as clean errors.
pub struct ExternalObjective {
    space: ParameterSpace,
    command: Vec<String>,
    consecutive_failures: u32,
    max_failures: u32,
    /// The most recent error, for reporting.
    pub last_error: Option<MeasureError>,
}

impl ExternalObjective {
    /// Build from the tuning space (for variable names) and the command
    /// line.
    ///
    /// # Panics
    /// Panics if `command` is empty.
    pub fn new(space: ParameterSpace, command: Vec<String>) -> Self {
        assert!(!command.is_empty(), "measurement command must not be empty");
        ExternalObjective {
            space,
            command,
            consecutive_failures: 0,
            max_failures: 5,
            last_error: None,
        }
    }

    /// Environment variable name for a parameter.
    pub fn env_name(param: &str) -> String {
        let sanitized: String = param
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_uppercase()
                } else {
                    '_'
                }
            })
            .collect();
        format!("HARMONY_{sanitized}")
    }

    /// One measurement.
    pub fn measure_once(&self, cfg: &Configuration) -> Result<f64, MeasureError> {
        let mut cmd = Command::new(&self.command[0]);
        cmd.args(&self.command[1..]);
        for (p, &v) in self.space.params().iter().zip(cfg.values()) {
            cmd.env(Self::env_name(p.name()), v.to_string());
        }
        let out = cmd.output().map_err(MeasureError::Spawn)?;
        if !out.status.success() {
            let stderr = String::from_utf8_lossy(&out.stderr);
            return Err(MeasureError::Failed {
                status: out.status.to_string(),
                stderr: stderr.chars().take(300).collect(),
            });
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .rev()
            .map(str::trim)
            .find(|l| !l.is_empty())
            .unwrap_or("");
        line.parse::<f64>()
            .map_err(|_| MeasureError::BadOutput(line.to_string()))
    }
}

impl Objective for ExternalObjective {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        match self.measure_once(cfg) {
            Ok(v) => {
                self.consecutive_failures = 0;
                v
            }
            Err(e) => {
                self.consecutive_failures += 1;
                let msg = e.to_string();
                self.last_error = Some(e);
                if self.consecutive_failures >= self.max_failures {
                    panic!(
                        "measurement failed {} times in a row; last error: {msg}",
                        self.consecutive_failures
                    );
                }
                f64::NEG_INFINITY
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::ParamDef;

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("buf-size", 1, 10, 5, 1))
            .param(ParamDef::int("Threads", 1, 4, 2, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn env_names_are_sanitized() {
        assert_eq!(ExternalObjective::env_name("buf-size"), "HARMONY_BUF_SIZE");
        assert_eq!(ExternalObjective::env_name("Threads"), "HARMONY_THREADS");
    }

    #[test]
    fn measures_via_environment_variables() {
        // The "system" computes buf - threads in shell.
        let obj = ExternalObjective::new(
            space(),
            vec![
                "sh".into(),
                "-c".into(),
                "echo note: warming up; echo $((HARMONY_BUF_SIZE - HARMONY_THREADS))".into(),
            ],
        );
        let v = obj.measure_once(&Configuration::new(vec![7, 3])).unwrap();
        assert_eq!(v, 4.0);
    }

    #[test]
    fn last_nonempty_line_wins() {
        let obj = ExternalObjective::new(
            space(),
            vec!["sh".into(), "-c".into(), "printf '1\\n2.5\\n\\n'".into()],
        );
        let v = obj.measure_once(&Configuration::new(vec![1, 1])).unwrap();
        assert_eq!(v, 2.5);
    }

    #[test]
    fn failure_modes_are_reported() {
        let obj = ExternalObjective::new(space(), vec!["sh".into(), "-c".into(), "exit 3".into()]);
        assert!(matches!(
            obj.measure_once(&Configuration::new(vec![1, 1])),
            Err(MeasureError::Failed { .. })
        ));

        let obj = ExternalObjective::new(
            space(),
            vec!["sh".into(), "-c".into(), "echo not-a-number".into()],
        );
        assert!(matches!(
            obj.measure_once(&Configuration::new(vec![1, 1])),
            Err(MeasureError::BadOutput(_))
        ));

        let obj = ExternalObjective::new(space(), vec!["/nonexistent/tool".into()]);
        assert!(matches!(
            obj.measure_once(&Configuration::new(vec![1, 1])),
            Err(MeasureError::Spawn(_))
        ));
    }

    #[test]
    fn tuning_an_external_command_end_to_end() {
        use harmony::prelude::*;
        // Optimum at buf=8, threads=2: perf = 100 - (buf-8)^2 - 5*(threads-2)^2.
        let mut obj = ExternalObjective::new(
            space(),
            vec![
                "sh".into(),
                "-c".into(),
                "echo $((100 - (HARMONY_BUF_SIZE-8)*(HARMONY_BUF_SIZE-8) - 5*(HARMONY_THREADS-2)*(HARMONY_THREADS-2)))".into(),
            ],
        );
        let out =
            Tuner::new(space(), TuningOptions::improved().with_max_iterations(60)).run(&mut obj);
        assert_eq!(
            out.best_performance, 100.0,
            "best {}",
            out.best_configuration
        );
        assert_eq!(out.best_configuration.values(), &[8, 2]);
    }
}
