#![warn(missing_docs)]

//! Command-line front end for Active Harmony.
//!
//! The paper's server tunes *external* systems: the system under tuning
//! exposes its knobs through the resource specification language and
//! reports one performance number per configuration. This crate packages
//! that contract as a CLI:
//!
//! ```text
//! harmony-cli space  params.rsl
//! harmony-cli sensitivity params.rsl [--samples N] [--repeats R] -- ./measure.sh
//! harmony-cli tune   params.rsl [--iterations N] [--original] \
//!                    [--db experience.json] [--label run1] -- ./measure.sh
//! harmony-cli db     experience.json
//! ```
//!
//! For every exploration the measurement command is run with one
//! environment variable per parameter (`HARMONY_<NAME>=<value>`); its last
//! non-empty stdout line must be the performance number (higher = better).

pub mod args;
pub mod commands;
pub mod external;
pub mod signals;

pub use args::{parse_args, Cli, CliError, Command};
