//! Subcommand implementations, writing human-readable reports to any
//! `Write` sink (tests capture a buffer; `main` passes stdout).

use crate::args::{Command, WireChoice};
use crate::external::{ExternalObjective, MeasureError};
use harmony::history::{DataAnalyzer, ExperienceDb, RunHistory, TuningRecord};
use harmony::prelude::*;
use harmony::sensitivity::Prioritizer;
use harmony::tuner::TrainingMode;
use harmony_engines::{
    registry, render_leaderboard, run_tournament, SearchEngine, TournamentOptions,
};
use harmony_exec::{Executor, MemoCache};
use harmony_net::client::{Client, RetryPolicy};
use harmony_net::protocol::{SpaceSpec, WireSpan, WireTrace};
use harmony_net::server::{DaemonConfig, DaemonHandle, TuningDaemon};
use harmony_obs::trace::stage;
use harmony_space::{parse_rsl, Configuration};
use harmony_websim::WorkloadMix;
use std::fmt::Write as _;
use std::fs;
use std::io::Read as _;
use std::sync::atomic::{AtomicBool, Ordering};

/// Top-level error type for command execution.
#[derive(Debug)]
pub struct RunError(pub String);

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RunError {}

fn fail(msg: impl Into<String>) -> RunError {
    RunError(msg.into())
}

/// Entries the in-memory memo cache can hold in `--jobs` runs. Each entry
/// is one measured configuration; tuning and sensitivity explorations are
/// orders of magnitude smaller, so in practice nothing is ever evicted.
const JOBS_CACHE_CAPACITY: usize = 65_536;

/// Adapts [`ExternalObjective::measure_once`] to the pure `Fn` an
/// [`Executor`] wants: a failed measurement folds to `-inf` so the rest
/// of the batch can finish, and the *first* failure (with its
/// configuration) is stashed for [`check`](Self::check) to surface as a
/// clean error before the bogus value influences the search.
struct StashingEval<'a> {
    obj: &'a ExternalObjective,
    first_error: std::sync::Mutex<Option<(Configuration, MeasureError)>>,
}

impl<'a> StashingEval<'a> {
    fn new(obj: &'a ExternalObjective) -> Self {
        StashingEval {
            obj,
            first_error: std::sync::Mutex::new(None),
        }
    }

    fn eval(&self, cfg: &Configuration) -> f64 {
        match self.obj.measure_once(cfg) {
            Ok(v) => v,
            Err(e) => {
                let mut stash = self.first_error.lock().unwrap();
                if stash.is_none() {
                    *stash = Some((cfg.clone(), e));
                }
                f64::NEG_INFINITY
            }
        }
    }

    /// Surface the first stashed failure, if any.
    fn check(&self) -> Result<(), RunError> {
        match self.first_error.lock().unwrap().take() {
            Some((cfg, e)) => Err(fail(format!("measurement at {cfg}: {e}"))),
            None => Ok(()),
        }
    }
}

/// Execute a parsed command, returning the report text.
pub fn run(command: Command) -> Result<String, RunError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(crate::args::USAGE),
        Command::Space { rsl } => {
            let space = load_space(&rsl)?;
            let _ = writeln!(out, "space: {} parameters from {rsl}", space.len());
            for p in space.params() {
                let _ = writeln!(
                    out,
                    "  {:<24} [{}, {}] step {} default {}{}",
                    p.name(),
                    p.static_min(),
                    p.static_max(),
                    p.step(),
                    p.default(),
                    if p.is_restricted() {
                        "  (restricted)"
                    } else {
                        ""
                    },
                );
            }
            let _ = writeln!(out, "unconstrained size: {}", space.unconstrained_size());
            if space.is_restricted() {
                match space.restricted_size(50_000_000) {
                    Some(n) => {
                        let _ = writeln!(out, "restricted size: {n}");
                    }
                    None => {
                        let _ = writeln!(out, "restricted size: > 50,000,000 (not enumerated)");
                    }
                }
            }
        }
        Command::Db { path } => {
            let db = ExperienceDb::load(&path).map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "experience database: {} run(s) in {path}", db.len());
            for (i, run) in db.runs().iter().enumerate() {
                let best = run
                    .best()
                    .map(|r| format!("best {:.2} at {:?}", r.performance, r.values))
                    .unwrap_or_else(|| "no records".into());
                let _ = writeln!(
                    out,
                    "  #{i} {:<16} {} records; {best}; characteristics {:?}",
                    run.label,
                    run.records.len(),
                    run.characteristics,
                );
            }
        }
        Command::Sensitivity {
            rsl,
            samples,
            repeats,
            jobs,
            measure,
        } => {
            let space = load_space(&rsl)?;
            let mut prioritizer = Prioritizer::new(space.clone()).with_repeats(repeats);
            if let Some(n) = samples {
                prioritizer = prioritizer.with_max_samples(n);
            }
            let mut obj = ExternalObjective::new(space.clone(), measure);
            // Probe with the defaults so a broken measurement command is a
            // clean error, not a cascade of -inf measurements.
            let defaults = Configuration::new(space.params().iter().map(|p| p.default()).collect());
            obj.measure_once(&defaults)
                .map_err(|e| fail(format!("probe at default configuration {defaults}: {e}")))?;
            let report = if jobs > 1 {
                let stash = StashingEval::new(&obj);
                let cache = MemoCache::new(JOBS_CACHE_CAPACITY);
                let report = prioritizer.analyze_with(
                    &|cfg: &Configuration| stash.eval(cfg),
                    &Executor::new(jobs),
                    Some(&cache),
                );
                stash.check()?;
                report
            } else {
                prioritizer.analyze(&mut obj)
            };
            let _ = writeln!(out, "sensitivity ({} explorations):", report.explorations());
            for e in report.ranked() {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10.3}   best value {}",
                    e.name, e.sensitivity, e.best_value
                );
            }
        }
        Command::Tune {
            rsl,
            iterations,
            original,
            engine,
            db,
            label,
            characteristics,
            remote,
            retry,
            deadline_ms,
            trace,
            wire,
            jobs,
            measure,
        } => {
            if let Some(addr) = remote {
                tune_remote(
                    &mut out,
                    &rsl,
                    iterations,
                    &label,
                    characteristics,
                    &addr,
                    engine,
                    retry,
                    deadline_ms,
                    trace,
                    wire,
                    measure,
                )?;
            } else if let Some(name) = engine {
                tune_with_engine(
                    &mut out,
                    &name,
                    &rsl,
                    iterations,
                    original,
                    db,
                    label,
                    characteristics,
                    jobs,
                    measure,
                )?;
            } else {
                tune_local(
                    &mut out,
                    &rsl,
                    iterations,
                    original,
                    db,
                    label,
                    characteristics,
                    jobs,
                    measure,
                )?;
            }
        }
        Command::Tournament {
            budget,
            candidates,
            seed,
            jobs,
            mixes,
            out: out_path,
        } => {
            let opts = TournamentOptions {
                budget,
                candidates,
                seed,
                mixes: mixes
                    .iter()
                    .map(|m| mix_by_name(m))
                    .collect::<Result<_, _>>()?,
            };
            let results = run_tournament(&opts, &Executor::new(jobs));
            let leaderboard = render_leaderboard(&results, &opts);
            if let Some(parent) = std::path::Path::new(&out_path).parent() {
                if !parent.as_os_str().is_empty() {
                    fs::create_dir_all(parent)
                        .map_err(|e| fail(format!("cannot create {}: {e}", parent.display())))?;
                }
            }
            fs::write(&out_path, &leaderboard)
                .map_err(|e| fail(format!("cannot write {out_path}: {e}")))?;
            out.push_str(&leaderboard);
            let _ = writeln!(out, "\nleaderboard written to {out_path}");
        }
        Command::Stats { addr } => {
            let mut client = Client::connect(&addr)
                .map_err(|e| fail(format!("cannot reach daemon at {addr}: {e}")))?;
            let text = client.stats().map_err(|e| fail(e.to_string()))?;
            out.push_str(&text);
        }
        Command::Trace { addr } => {
            let mut client = Client::connect(&addr)
                .map_err(|e| fail(format!("cannot reach daemon at {addr}: {e}")))?;
            let traces = client.trace_dump().map_err(|e| fail(e.to_string()))?;
            out.push_str(&render_trace_report(&traces));
        }
        Command::Serve {
            rsl,
            db,
            wal,
            compact_every,
            listen,
            peers,
            replicate,
            iterations,
            max_connections,
            threaded,
            log_json,
            log_rotate_bytes,
            log_keep,
            no_trace,
        } => {
            return serve(
                &rsl,
                db.as_deref(),
                wal.as_deref(),
                compact_every,
                &listen,
                &peers,
                replicate,
                iterations,
                max_connections,
                threaded,
                LogOptions {
                    json: log_json,
                    rotate_bytes: log_rotate_bytes,
                    keep: log_keep,
                },
                no_trace,
                |handle| {
                    crate::signals::install();
                    eprintln!(
                        "harmony-cli: tuning daemon listening on {} \
                         (stdin end-of-file or SIGTERM stops it)",
                        handle.addr()
                    );
                    // Park until the operator closes stdin or signals.
                    // Stdin is consumed on its own thread so a signal
                    // can interrupt the wait even mid-read.
                    let stdin_done = std::sync::Arc::new(AtomicBool::new(false));
                    {
                        let stdin_done = std::sync::Arc::clone(&stdin_done);
                        std::thread::spawn(move || {
                            let mut sink = [0u8; 256];
                            let mut stdin = std::io::stdin().lock();
                            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                            stdin_done.store(true, Ordering::SeqCst);
                        });
                    }
                    while !stdin_done.load(Ordering::SeqCst)
                        && !crate::signals::termination_requested()
                    {
                        std::thread::sleep(std::time::Duration::from_millis(50));
                    }
                    if crate::signals::termination_requested() {
                        eprintln!("harmony-cli: termination signal received, draining");
                        // Refuse new work right away; `serve` follows up
                        // with the full shutdown (park sessions, flush
                        // the journal) once we return.
                        handle.drain();
                    }
                },
            );
        }
    }
    Ok(out)
}

/// Tune with the in-process kernel, measuring via the external command.
///
/// Each exploration runs through [`ExternalObjective::measure_once`], so a
/// crashed command, a non-zero exit, or unparseable output stops the run
/// with the underlying error — it is never silently folded into the
/// search as a performance value.
///
/// With `jobs > 1`, batchable phases of the search (the initial simplex,
/// vertex refreshes) measure on that many worker threads, and every
/// measurement is memoized per exact configuration so revisited points
/// cost nothing; for a deterministic measure command the outcome is
/// identical to the sequential run.
#[allow(clippy::too_many_arguments)]
fn tune_local(
    out: &mut String,
    rsl: &str,
    iterations: usize,
    original: bool,
    db: Option<String>,
    label: String,
    characteristics: Vec<f64>,
    jobs: usize,
    measure: Vec<String>,
) -> Result<(), RunError> {
    let space = load_space(rsl)?;
    let mut database = match &db {
        Some(path) if fs::metadata(path).is_ok() => {
            ExperienceDb::load(path).map_err(|e| fail(e.to_string()))?
        }
        _ => ExperienceDb::new(),
    };
    let options = if original {
        TuningOptions::original()
    } else {
        TuningOptions::improved()
    }
    .with_max_iterations(iterations);
    let tuner = Tuner::new(space.clone(), options);
    let obj = ExternalObjective::new(space.clone(), measure);

    // Classify against prior experience when characteristics are
    // provided.
    let prior = if characteristics.is_empty() {
        None
    } else {
        DataAnalyzer::new().select(&database, &characteristics)
    };
    let mut session = match &prior {
        Some(history) => {
            let _ = writeln!(out, "training from prior run {:?}", history.label);
            tuner.session_trained(history, TrainingMode::Replay(10))
        }
        None => tuner.session(),
    };
    if jobs > 1 {
        let executor = Executor::new(jobs);
        let cache = MemoCache::new(JOBS_CACHE_CAPACITY);
        let stash = StashingEval::new(&obj);
        let eval = |cfg: &Configuration| stash.eval(cfg);
        loop {
            let batch = session.next_batch();
            if batch.is_empty() {
                break;
            }
            let performances = executor.evaluate_batch_cached(&batch, &cache, &eval);
            // Bail before a failure's -inf placeholder reaches the search.
            stash.check()?;
            session
                .observe_batch(&performances)
                .map_err(|e| fail(e.to_string()))?;
        }
    } else {
        while let Some(cfg) = session.next_config() {
            let performance = measure_exploration(&obj, &cfg, session.iterations())?;
            session
                .observe(performance)
                .map_err(|e| fail(e.to_string()))?;
        }
    }
    let outcome = session.finish();

    let _ = writeln!(out, "explored {} configurations", outcome.trace.len());
    let _ = writeln!(out, "best performance: {:.4}", outcome.best_performance);
    for (p, &v) in space
        .params()
        .iter()
        .zip(outcome.best_configuration.values())
    {
        let _ = writeln!(out, "  {:<24} = {v}", p.name());
    }
    let _ = writeln!(
        out,
        "convergence at iteration {}; worst dip {:.4}; converged: {}",
        outcome.report.convergence_time, outcome.report.worst_performance, outcome.converged
    );

    if let Some(path) = db {
        database.add_run(outcome.to_history(label, characteristics));
        database.save(&path).map_err(|e| fail(e.to_string()))?;
        let _ = writeln!(out, "experience saved to {path} ({} runs)", database.len());
    }
    Ok(())
}

fn mix_by_name(name: &str) -> Result<WorkloadMix, RunError> {
    match name {
        "browsing" => Ok(WorkloadMix::browsing()),
        "shopping" => Ok(WorkloadMix::shopping()),
        "ordering" => Ok(WorkloadMix::ordering()),
        other => Err(fail(format!(
            "unknown mix {other:?}; available mixes: browsing, shopping, ordering"
        ))),
    }
}

/// Tune with a pluggable [`harmony_engines`] search engine instead of
/// the built-in simplex session. Shares `tune`'s measurement, memoizing
/// `--jobs` batching, and experience-database handling: with
/// `--characteristics` and a `--db`, the classified prior run warm-starts
/// the engine through [`SearchEngine::warm_start`], and the finished
/// run's records are saved back.
///
/// [`SearchEngine::warm_start`]: harmony_engines::SearchEngine::warm_start
#[allow(clippy::too_many_arguments)]
fn tune_with_engine(
    out: &mut String,
    name: &str,
    rsl: &str,
    iterations: usize,
    original: bool,
    db: Option<String>,
    label: String,
    characteristics: Vec<f64>,
    jobs: usize,
    measure: Vec<String>,
) -> Result<(), RunError> {
    let space = load_space(rsl)?;
    let mut database = match &db {
        Some(path) if fs::metadata(path).is_ok() => {
            ExperienceDb::load(path).map_err(|e| fail(e.to_string()))?
        }
        _ => ExperienceDb::new(),
    };
    let obj = ExternalObjective::new(space.clone(), measure);
    let spec = registry::lookup(name).map_err(|e| fail(e.to_string()))?;
    let mut engine: Box<dyn SearchEngine> = if name == "simplex" && original {
        // `--original` is only meaningful for the simplex engine (the
        // parser rejects it for the others): swap the improved defaults
        // for the paper's original initial-simplex strategy.
        Box::new(harmony_engines::SimplexEngine::new(
            space.clone(),
            TuningOptions::original().with_max_iterations(iterations),
        ))
    } else {
        // The registry's fixed seed keeps repeated invocations exploring
        // identically — and matches what a daemon builds for the same
        // name, so `--remote --engine` trajectories line up with local
        // ones. Operators wanting fresh trajectories vary the measured
        // system, not the search.
        spec.build(space.clone(), iterations, registry::DEFAULT_SEED)
    };
    let prior = if characteristics.is_empty() {
        None
    } else {
        DataAnalyzer::new().select(&database, &characteristics)
    };
    if let Some(history) = &prior {
        let _ = writeln!(out, "training from prior run {:?}", history.label);
        engine.warm_start(history);
    }
    let mut records = Vec::new();
    if jobs > 1 {
        let executor = Executor::new(jobs);
        let cache = MemoCache::new(JOBS_CACHE_CAPACITY);
        let stash = StashingEval::new(&obj);
        let eval = |cfg: &Configuration| stash.eval(cfg);
        loop {
            let batch = engine.next_batch();
            if batch.is_empty() {
                break;
            }
            let performances = executor.evaluate_batch_cached(&batch, &cache, &eval);
            // Bail before a failure's -inf placeholder reaches the search.
            stash.check()?;
            let used = engine
                .observe_batch(&performances)
                .map_err(|e| fail(e.to_string()))?;
            for (cfg, &perf) in batch.iter().zip(&performances).take(used) {
                records.push(TuningRecord::new(cfg, perf));
            }
        }
    } else {
        while let Some(cfg) = engine.next_config() {
            let performance = measure_exploration(&obj, &cfg, engine.iterations())?;
            engine
                .observe(performance)
                .map_err(|e| fail(e.to_string()))?;
            records.push(TuningRecord::new(&cfg, performance));
        }
    }
    let (best_cfg, best_perf) = engine
        .best()
        .ok_or_else(|| fail("engine made no observations"))?;

    let _ = writeln!(out, "engine: {name}");
    let _ = writeln!(out, "explored {} configurations", records.len());
    let _ = writeln!(out, "best performance: {best_perf:.4}");
    for (p, &v) in space.params().iter().zip(best_cfg.values()) {
        let _ = writeln!(out, "  {:<24} = {v}", p.name());
    }
    let _ = writeln!(out, "converged: {}", engine.converged());

    if let Some(path) = db {
        database.add_run(RunHistory {
            label,
            characteristics,
            records,
        });
        database.save(&path).map_err(|e| fail(e.to_string()))?;
        let _ = writeln!(out, "experience saved to {path} ({} runs)", database.len());
    }
    Ok(())
}

/// Tune against a remote daemon: the server proposes configurations and
/// owns the experience database; this side only measures.
///
/// `retry` and `deadline_ms` configure the client's resilience: requests
/// that fail retryably (connection loss, deadline expiry, a draining
/// daemon) are retried with jittered backoff, reconnecting and resuming
/// the session in place.
///
/// With `trace`, the session becomes one distributed trace: requests
/// carry its context to the daemon, and each measurement runs through an
/// executor under an `eval` span so the daemon's flight recorder sees
/// queue-wait/run attribution alongside its own serve-side spans. The
/// proposals and the outcome are bit-identical with tracing on or off.
///
/// `addr` may name several endpoints separated by commas; the first is
/// dialled preferentially and the rest are failover candidates the client
/// rotates through (and follows cluster redirects onto) when a daemon
/// dies mid-session.
///
/// With `engine`, the registry name travels in the `SessionStart` and the
/// daemon builds and drives that engine server-side, so a remote run
/// explores the identical trajectory a local `tune --engine` would.
#[allow(clippy::too_many_arguments)]
fn tune_remote(
    out: &mut String,
    rsl: &str,
    iterations: usize,
    label: &str,
    characteristics: Vec<f64>,
    addr: &str,
    engine: Option<String>,
    retry: Option<u32>,
    deadline_ms: Option<u64>,
    trace: bool,
    wire: Option<WireChoice>,
    measure: Vec<String>,
) -> Result<(), RunError> {
    let text = fs::read_to_string(rsl).map_err(|e| fail(format!("cannot read {rsl}: {e}")))?;
    let mut endpoints = addr.split(',').filter(|a| !a.is_empty());
    let first = endpoints.next().unwrap_or(addr);
    let mut builder = Client::builder(first).tracing(trace);
    for fallback in endpoints {
        builder = builder.endpoint(fallback);
    }
    if wire == Some(WireChoice::Json) {
        // Pin the handshake at protocol v2: the daemon never switches
        // the connection to binary framing. `binary` (and the default)
        // negotiate the newest version and fall back on old daemons.
        builder = builder.max_protocol_version(2);
    }
    if let Some(n) = retry {
        builder = builder.retry(RetryPolicy::default().with_max_retries(n));
    }
    if let Some(ms) = deadline_ms {
        builder = builder.request_deadline(std::time::Duration::from_millis(ms));
    }
    let mut client = builder
        .connect()
        .map_err(|e| fail(format!("cannot reach daemon at {addr}: {e}")))?;
    let started = client
        .start_session_with(
            SpaceSpec::Rsl(text),
            label,
            characteristics,
            Some(iterations),
            engine.clone(),
        )
        .map_err(|e| fail(e.to_string()))?;
    if let Some(name) = &engine {
        let _ = writeln!(out, "engine: {name} (server-side)");
    }
    if let Some(prior) = &started.trained_from {
        let _ = writeln!(
            out,
            "training from prior run {prior:?} ({} virtual iterations, server-side)",
            started.training_iterations
        );
    }
    // The server's parse of the RSL is authoritative; use its space for
    // the environment-variable names.
    let obj = ExternalObjective::new(started.space.clone(), measure);
    let executor = Executor::new(1);
    let mut explored = 0usize;
    while let Some(proposal) = client.fetch().map_err(|e| fail(e.to_string()))? {
        let performance = if trace {
            // Route the measurement through the executor under an `eval`
            // span, so queue-wait/run attribution lands in the trace.
            // Executor::new(1) is exactly the sequential loop — the
            // measured value is the same one the bare path produces.
            let stash = StashingEval::new(&obj);
            let values = client.traced(stage::EVAL, "measure", || {
                executor.evaluate_batch(std::slice::from_ref(&proposal.values), &|cfg| {
                    stash.eval(cfg)
                })
            });
            stash
                .check()
                .map_err(|e| fail(format!("exploration {}: {e}", proposal.iteration + 1)))?;
            values[0]
        } else {
            measure_exploration(&obj, &proposal.values, proposal.iteration)?
        };
        client
            .report(performance)
            .map_err(|e| fail(e.to_string()))?;
        explored += 1;
    }
    let summary = client.end_session().map_err(|e| fail(e.to_string()))?;

    let _ = writeln!(out, "explored {explored} configurations (daemon at {addr})");
    let _ = writeln!(out, "best performance: {:.4}", summary.performance);
    for (p, &v) in started.space.params().iter().zip(summary.best.values()) {
        let _ = writeln!(out, "  {:<24} = {v}", p.name());
    }
    let _ = writeln!(
        out,
        "live iterations: {}; converged: {}; run recorded server-side as {label:?}",
        summary.iterations, summary.converged
    );
    Ok(())
}

fn measure_exploration(
    obj: &ExternalObjective,
    cfg: &Configuration,
    iteration: usize,
) -> Result<f64, RunError> {
    obj.measure_once(cfg)
        .map_err(|e| fail(format!("exploration {} at {cfg}: {e}", iteration + 1)))
}

/// Character width of a waterfall bar (the full trace duration).
const WATERFALL_WIDTH: usize = 32;

/// Render a daemon's flight-recorder dump: one waterfall per trace (span
/// tree in depth-first order, each span a bar positioned inside its
/// trace's extent) followed by a cross-trace per-stage latency
/// attribution table. Deterministic for a given dump: traces and spans
/// are rendered in the recorder's stable order (start time, then id).
fn render_trace_report(traces: &[WireTrace]) -> String {
    let mut out = String::new();
    if traces.is_empty() {
        out.push_str("flight recorder is empty (no traces retained yet)\n");
        return out;
    }
    let _ = writeln!(out, "flight recorder: {} trace(s)", traces.len());
    for trace in traces {
        out.push('\n');
        render_waterfall(&mut out, trace);
    }
    out.push('\n');
    render_stage_table(&mut out, traces);
    out
}

fn span_extent(spans: &[WireSpan]) -> (u64, u64) {
    let start = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    let end = spans.iter().map(|s| s.end_us).max().unwrap_or(start);
    (start, end.max(start))
}

fn render_waterfall(out: &mut String, trace: &WireTrace) {
    let (start, end) = span_extent(&trace.spans);
    let total = (end - start).max(1);
    let _ = writeln!(
        out,
        "trace {:016x}  {}  {} span(s)  {}",
        trace.trace_id,
        if trace.complete {
            "complete"
        } else {
            "incomplete"
        },
        trace.spans.len(),
        fmt_us(end - start),
    );
    // Parent → children, preserving the dump's (start, id) order.
    let ids: std::collections::HashSet<u64> = trace.spans.iter().map(|s| s.id).collect();
    let mut children: std::collections::HashMap<u64, Vec<&WireSpan>> =
        std::collections::HashMap::new();
    let mut roots: Vec<&WireSpan> = Vec::new();
    for span in &trace.spans {
        if span.parent != 0 && ids.contains(&span.parent) && span.parent != span.id {
            children.entry(span.parent).or_default().push(span);
        } else {
            roots.push(span);
        }
    }
    // Depth-first with an explicit stack (a span tree is shallow, but a
    // hostile dump shouldn't recurse unboundedly).
    let mut stack: Vec<(&WireSpan, usize)> = roots.iter().rev().map(|s| (*s, 0)).collect();
    let mut visited = std::collections::HashSet::new();
    while let Some((span, depth)) = stack.pop() {
        if !visited.insert(span.id) {
            continue; // defensive: a malformed dump with a cycle
        }
        let label = if span.detail.is_empty() {
            span.stage.clone()
        } else {
            format!("{} [{}]", span.stage, span.detail)
        };
        let indent = "  ".repeat(depth + 1);
        let offset =
            ((span.start_us.saturating_sub(start)) as usize * WATERFALL_WIDTH) / total as usize;
        let len = (((span.end_us.saturating_sub(span.start_us)) as usize * WATERFALL_WIDTH)
            / total as usize)
            .max(1);
        let offset = offset.min(WATERFALL_WIDTH.saturating_sub(1));
        let len = len.min(WATERFALL_WIDTH - offset);
        let mut bar = String::with_capacity(WATERFALL_WIDTH);
        bar.push_str(&" ".repeat(offset));
        bar.push_str(&"#".repeat(len));
        bar.push_str(&" ".repeat(WATERFALL_WIDTH - offset - len));
        let _ = writeln!(
            out,
            "{:<36} {:>10} |{bar}|{}",
            format!("{indent}{label}"),
            fmt_us(span.end_us.saturating_sub(span.start_us)),
            if span.error { "  !error" } else { "" },
        );
        if let Some(kids) = children.get(&span.id) {
            for kid in kids.iter().rev() {
                stack.push((kid, depth + 1));
            }
        }
    }
}

fn render_stage_table(out: &mut String, traces: &[WireTrace]) {
    // stage → sorted durations (µs).
    let mut stages: std::collections::HashMap<&str, Vec<u64>> = std::collections::HashMap::new();
    for trace in traces {
        for span in &trace.spans {
            stages
                .entry(span.stage.as_str())
                .or_default()
                .push(span.end_us.saturating_sub(span.start_us));
        }
    }
    let mut rows: Vec<(&str, Vec<u64>, u64)> = stages
        .into_iter()
        .map(|(stage, mut durations)| {
            durations.sort_unstable();
            let total = durations.iter().sum();
            (stage, durations, total)
        })
        .collect();
    // Heaviest stages first; name breaks ties so the table is stable.
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
    let _ = writeln!(
        out,
        "stage attribution (all traces):\n  {:<14} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p95", "max", "total"
    );
    for (stage, durations, total) in rows {
        let _ = writeln!(
            out,
            "  {:<14} {:>6} {:>10} {:>10} {:>10} {:>10}",
            stage,
            durations.len(),
            fmt_us(percentile(&durations, 50)),
            fmt_us(percentile(&durations, 95)),
            fmt_us(*durations.last().unwrap_or(&0)),
            fmt_us(total),
        );
    }
}

/// Nearest-rank percentile of an already-sorted set of durations.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) * p) / 100]
}

fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

/// How `serve` writes its structured JSONL event log.
#[derive(Debug, Clone, Default)]
pub struct LogOptions {
    /// Append events to this file (`--log-json`); `None` disables the
    /// sink.
    pub json: Option<String>,
    /// Rotate the file when it reaches this many bytes (always on a
    /// line boundary, so no event is torn across files).
    pub rotate_bytes: Option<u64>,
    /// Rotated files kept as `<file>.1` … `<file>.N` (default 3).
    pub keep: Option<usize>,
}

/// Rotated event-log files `serve` keeps when `--log-keep` is unset.
const DEFAULT_LOG_KEEP: usize = 3;

/// Start the tuning daemon, hand the handle to `wait`, and shut down when
/// it returns. `main` waits for stdin end-of-file; tests drive sessions.
///
/// `log` configures the structured JSONL event sink (session starts,
/// recorded runs, persistence failures, …), optionally size-rotated.
/// `no_trace` skips enabling the distributed-tracing flight recorder.
///
/// With `peers`, the daemon joins a cluster: its own identity on the ring
/// is `listen` exactly as the peers spell it, and `replicate` (default 1,
/// owner-only) controls how many ring members hold each run and session
/// snapshot. Configuration combinations — wal-without-db,
/// compaction-without-db, cluster shape — are validated by
/// [`DaemonConfig::builder`], so embedders and the CLI share one rulebook.
#[allow(clippy::too_many_arguments)]
pub fn serve(
    rsl: &str,
    db: Option<&str>,
    wal: Option<&str>,
    compact_every: Option<usize>,
    listen: &str,
    peers: &[String],
    replicate: Option<usize>,
    iterations: Option<usize>,
    max_connections: Option<usize>,
    threaded: bool,
    log: LogOptions,
    no_trace: bool,
    wait: impl FnOnce(&DaemonHandle),
) -> Result<String, RunError> {
    if let Some(path) = &log.json {
        match log.rotate_bytes {
            Some(bytes) => harmony_obs::event::log_to_file_rotating(
                path,
                bytes,
                log.keep.unwrap_or(DEFAULT_LOG_KEEP),
            ),
            None => harmony_obs::event::log_to_file(path),
        }
        .map_err(|e| fail(format!("cannot open event log {path}: {e}")))?;
    }
    let space = load_space(rsl)?;
    let mut builder = DaemonConfig::builder()
        .listen(listen)
        .threaded(threaded)
        .tracing(!no_trace);
    if let Some(path) = db {
        builder = builder.db_path(path);
    }
    if let Some(path) = wal {
        builder = builder.wal_path(path);
    }
    if let Some(n) = compact_every {
        builder = builder.compact_every(n);
    }
    if let Some(n) = max_connections {
        builder = builder.max_connections(n);
    }
    if !peers.is_empty() {
        builder = builder.cluster(listen, peers.to_vec(), replicate.unwrap_or(1));
    }
    let mut config = builder.build().map_err(|e| fail(format!("serve: {e}")))?;
    config.server_name = format!("harmony-cli {}", env!("CARGO_PKG_VERSION"));
    if let Some(n) = iterations {
        config.tuning = config.tuning.with_max_iterations(n);
    }
    let handle = TuningDaemon::start(config).map_err(|e| fail(e.to_string()))?;
    eprintln!("harmony-cli: serving {} parameters from {rsl}", space.len());
    wait(&handle);
    let completed = handle.completed_sessions();
    let runs = handle.db_runs();
    handle.shutdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "daemon stopped: {completed} session(s) completed, {runs} run(s) in the experience database"
    );
    Ok(out)
}

fn load_space(path: &str) -> Result<harmony_space::ParameterSpace, RunError> {
    let text = fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    parse_rsl(&text).map_err(|e| fail(format!("cannot parse {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn write_rsl(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("harmony-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::write(
            &path,
            "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}\n",
        )
        .unwrap();
        path
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn space_report() {
        let rsl = write_rsl("space.rsl");
        let cli = parse_args(&sv(&["space", rsl.to_str().unwrap()])).unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("2 parameters"), "{out}");
        assert!(out.contains("unconstrained size: 64"), "{out}");
        assert!(out.contains("restricted size: 36"), "{out}");
        assert!(out.contains("(restricted)"), "{out}");
    }

    #[test]
    fn missing_rsl_is_a_clean_error() {
        let cli = parse_args(&sv(&["space", "/nonexistent.rsl"])).unwrap();
        let err = run(cli.command).unwrap_err();
        assert!(err.0.contains("cannot read"), "{err}");
    }

    #[test]
    fn tune_an_external_shell_command_and_persist_experience() {
        let rsl = write_rsl("tune.rsl");
        let db = std::env::temp_dir()
            .join("harmony-cli-tests")
            .join("exp.json");
        fs::remove_file(&db).ok();
        // Best at B=3, C=4 (D = 10-B-C = 3).
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3) - (HARMONY_C-4)*(HARMONY_C-4)))";
        let cli = parse_args(&sv(&[
            "tune",
            rsl.to_str().unwrap(),
            "--iterations",
            "50",
            "--db",
            db.to_str().unwrap(),
            "--label",
            "shop",
            "--characteristics",
            "0.2,0.8",
            "--",
            "sh",
            "-c",
            cmd,
        ]))
        .unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("best performance: 100"), "{out}");
        assert!(out.contains("experience saved"), "{out}");

        // Second run classifies against the saved experience.
        let cli = parse_args(&sv(&[
            "tune",
            rsl.to_str().unwrap(),
            "--iterations",
            "30",
            "--db",
            db.to_str().unwrap(),
            "--label",
            "shop-2",
            "--characteristics",
            "0.21,0.79",
            "--",
            "sh",
            "-c",
            cmd,
        ]))
        .unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("training from prior run \"shop\""), "{out}");

        // And the db report shows both runs.
        let cli = parse_args(&sv(&["db", db.to_str().unwrap()])).unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("2 run(s)"), "{out}");
        fs::remove_file(&db).ok();
    }

    #[test]
    fn tune_with_jobs_matches_sequential_tuning() {
        let rsl = write_rsl("jobs.rsl");
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3) - (HARMONY_C-4)*(HARMONY_C-4)))";
        let tune = |jobs: &str| {
            let cli = parse_args(&sv(&[
                "tune",
                rsl.to_str().unwrap(),
                "--iterations",
                "40",
                "--jobs",
                jobs,
                "--",
                "sh",
                "-c",
                cmd,
            ]))
            .unwrap();
            run(cli.command).unwrap()
        };
        let seq = tune("1");
        let par = tune("4");
        // Deterministic measure command → identical report, line for line.
        assert_eq!(par, seq);
        assert!(par.contains("best performance: 100"), "{par}");
    }

    #[test]
    fn tune_with_jobs_surfaces_measurement_failures() {
        let rsl = write_rsl("jobs-fail.rsl");
        let cli = parse_args(&sv(&[
            "tune",
            rsl.to_str().unwrap(),
            "--jobs",
            "4",
            "--",
            "sh",
            "-c",
            "echo kaput >&2; exit 3",
        ]))
        .unwrap();
        let err = run(cli.command).unwrap_err();
        assert!(err.0.contains("measurement at"), "{err}");
        assert!(err.0.contains("measurement command failed"), "{err}");
        assert!(err.0.contains("kaput"), "{err}");
    }

    #[test]
    fn tune_with_engine_reports_and_warm_starts() {
        let rsl = write_rsl("engine.rsl");
        let db = std::env::temp_dir()
            .join("harmony-cli-tests")
            .join("engine-exp.json");
        fs::remove_file(&db).ok();
        // Best at B=3, C=4 (the space caps C at 9-B).
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3) - (HARMONY_C-4)*(HARMONY_C-4)))";
        let tune = |engine: &str, label: &str, chars: &str| {
            let cli = parse_args(&sv(&[
                "tune",
                rsl.to_str().unwrap(),
                "--iterations",
                "60",
                "--engine",
                engine,
                "--db",
                db.to_str().unwrap(),
                "--label",
                label,
                "--characteristics",
                chars,
                "--",
                "sh",
                "-c",
                cmd,
            ]))
            .unwrap();
            run(cli.command).unwrap()
        };
        let out = tune("divide-diverge", "first", "0.2,0.8");
        assert!(out.contains("engine: divide-diverge"), "{out}");
        assert!(out.contains("best performance: 100"), "{out}");
        assert!(out.contains("experience saved"), "{out}");

        // A close-by second run classifies and warm-starts the engine.
        let out = tune("tuneful", "second", "0.21,0.79");
        assert!(out.contains("training from prior run \"first\""), "{out}");
        assert!(out.contains("best performance: 100"), "{out}");
        fs::remove_file(&db).ok();
    }

    #[test]
    fn tune_with_engine_and_jobs_matches_sequential() {
        let rsl = write_rsl("engine-jobs.rsl");
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3) - (HARMONY_C-4)*(HARMONY_C-4)))";
        let tune = |jobs: &str| {
            let cli = parse_args(&sv(&[
                "tune",
                rsl.to_str().unwrap(),
                "--iterations",
                "40",
                "--engine",
                "divide-diverge",
                "--jobs",
                jobs,
                "--",
                "sh",
                "-c",
                cmd,
            ]))
            .unwrap();
            run(cli.command).unwrap()
        };
        let seq = tune("1");
        let par = tune("4");
        assert_eq!(par, seq);
    }

    #[test]
    fn tournament_writes_a_deterministic_leaderboard() {
        let out_path = std::env::temp_dir()
            .join("harmony-cli-tests")
            .join("leaderboard")
            .join("lb.txt");
        fs::remove_file(&out_path).ok();
        let race = || {
            let cli = parse_args(&sv(&[
                "tournament",
                "--budget",
                "20",
                "--candidates",
                "2",
                "--mixes",
                "browsing",
                "--out",
                out_path.to_str().unwrap(),
            ]))
            .unwrap();
            run(cli.command).unwrap()
        };
        let report = race();
        assert!(report.contains("## mix=browsing"), "{report}");
        for name in harmony_engines::ENGINE_NAMES {
            assert!(report.contains(name), "{report}");
        }
        let first = fs::read_to_string(&out_path).unwrap();
        race();
        let second = fs::read_to_string(&out_path).unwrap();
        assert_eq!(first, second, "same seed must render byte-identically");
        fs::remove_file(&out_path).ok();
    }

    #[test]
    fn sensitivity_with_jobs_matches_sequential_analysis() {
        let rsl = write_rsl("sens-jobs.rsl");
        let analyze = |jobs: &str| {
            let cli = parse_args(&sv(&[
                "sensitivity",
                rsl.to_str().unwrap(),
                "--jobs",
                jobs,
                "--",
                "sh",
                "-c",
                "echo $((HARMONY_B * 10 + HARMONY_C))",
            ]))
            .unwrap();
            run(cli.command).unwrap()
        };
        assert_eq!(analyze("3"), analyze("1"));
    }

    #[test]
    fn sensitivity_on_external_command() {
        let rsl = write_rsl("sens.rsl");
        let cli = parse_args(&sv(&[
            "sensitivity",
            rsl.to_str().unwrap(),
            "--repeats",
            "1",
            "--",
            "sh",
            "-c",
            "echo $((HARMONY_B * 10 + HARMONY_C))",
        ]))
        .unwrap();
        let out = run(cli.command).unwrap();
        // B has 10x the leverage of C: it must rank first.
        let b_pos = out.find("B ").expect("B listed");
        let c_pos = out.find("C ").expect("C listed");
        assert!(b_pos < c_pos, "{out}");
    }

    #[test]
    fn help_is_usage() {
        let out = run(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn sensitivity_probes_the_command_before_analyzing() {
        let rsl = write_rsl("sens-fail.rsl");
        let cli = parse_args(&sv(&[
            "sensitivity",
            rsl.to_str().unwrap(),
            "--",
            "sh",
            "-c",
            "exit 7",
        ]))
        .unwrap();
        let err = run(cli.command).unwrap_err();
        assert!(err.0.contains("probe at default configuration"), "{err}");
        assert!(err.0.contains("measurement command failed"), "{err}");
    }

    #[test]
    fn failing_measure_command_stops_with_a_clear_error() {
        let rsl = write_rsl("fail.rsl");
        let cli = parse_args(&sv(&[
            "tune",
            rsl.to_str().unwrap(),
            "--",
            "sh",
            "-c",
            "echo boom >&2; exit 3",
        ]))
        .unwrap();
        let err = run(cli.command).unwrap_err();
        assert!(err.0.contains("exploration 1"), "{err}");
        assert!(err.0.contains("measurement command failed"), "{err}");
        assert!(err.0.contains("boom"), "{err}");
    }

    #[test]
    fn unparseable_measure_output_stops_with_a_clear_error() {
        let rsl = write_rsl("garbage.rsl");
        let cli = parse_args(&sv(&[
            "tune",
            rsl.to_str().unwrap(),
            "--",
            "sh",
            "-c",
            "echo not-a-number",
        ]))
        .unwrap();
        let err = run(cli.command).unwrap_err();
        assert!(err.0.contains("exploration 1"), "{err}");
        assert!(err.0.contains("not a number"), "{err}");
        assert!(err.0.contains("not-a-number"), "{err}");
    }

    #[test]
    fn serve_and_remote_tune_round_trip() {
        let rsl = write_rsl("serve.rsl");
        let db = std::env::temp_dir()
            .join("harmony-cli-tests")
            .join("serve-exp.json");
        fs::remove_file(&db).ok();
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3) - (HARMONY_C-4)*(HARMONY_C-4)))";

        let report = serve(
            rsl.to_str().unwrap(),
            Some(db.to_str().unwrap()),
            None,
            None,
            "127.0.0.1:0",
            &[],
            None,
            Some(50),
            None,
            false,
            LogOptions::default(),
            false,
            |handle| {
                let addr = handle.addr().to_string();
                let tune = |label: &str, chars: &str| {
                    let cli = parse_args(&sv(&[
                        "tune",
                        rsl.to_str().unwrap(),
                        "--remote",
                        &addr,
                        "--label",
                        label,
                        "--characteristics",
                        chars,
                        "--",
                        "sh",
                        "-c",
                        cmd,
                    ]))
                    .unwrap();
                    run(cli.command).unwrap()
                };

                let out = tune("first", "0.2,0.8");
                assert!(out.contains("best performance: 100"), "{out}");
                assert!(
                    out.contains("run recorded server-side as \"first\""),
                    "{out}"
                );

                // The second session classifies against the first's run.
                let out = tune("second", "0.21,0.79");
                assert!(out.contains("training from prior run \"first\""), "{out}");
                assert!(out.contains("best performance: 100"), "{out}");
            },
        )
        .unwrap();
        assert!(report.contains("2 session(s) completed"), "{report}");

        // The daemon persisted its experience where we asked.
        let cli = parse_args(&sv(&["db", db.to_str().unwrap()])).unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("2 run(s)"), "{out}");
        fs::remove_file(&db).ok();
    }

    #[test]
    fn serve_rejects_invalid_config_combinations() {
        // The parser lets these through; DaemonConfig::builder is the one
        // place the combinations are judged, for the CLI and embedders
        // alike.
        let rsl = write_rsl("combos.rsl");
        let err = serve(
            rsl.to_str().unwrap(),
            None,
            Some("orphan.wal"),
            None,
            "127.0.0.1:0",
            &[],
            None,
            None,
            None,
            false,
            LogOptions::default(),
            false,
            |_| unreachable!("daemon must not start"),
        )
        .unwrap_err();
        assert!(
            err.0.contains("a write-ahead journal needs a database"),
            "{err}"
        );
        let err = serve(
            rsl.to_str().unwrap(),
            None,
            None,
            Some(8),
            "127.0.0.1:0",
            &[],
            None,
            None,
            None,
            false,
            LogOptions::default(),
            false,
            |_| unreachable!("daemon must not start"),
        )
        .unwrap_err();
        assert!(
            err.0.contains("a compaction interval needs a database"),
            "{err}"
        );
    }

    #[test]
    fn remote_engine_explores_the_local_trajectory() {
        // `tune --remote --engine <name>` ships the name in the
        // SessionStart; the daemon builds the engine with the registry's
        // fixed seed, so against the same deterministic measurement the
        // remote run must land exactly where the local one does.
        let rsl = write_rsl("remote-engine.rsl");
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3) - (HARMONY_C-4)*(HARMONY_C-4)))";
        let tuned = |extra: &[&str]| {
            let mut args = vec!["tune", rsl.to_str().unwrap()];
            args.extend_from_slice(extra);
            args.extend_from_slice(&[
                "--engine",
                "divide-diverge",
                "--iterations",
                "20",
                "--",
                "sh",
                "-c",
                cmd,
            ]);
            run(parse_args(&sv(&args)).unwrap().command).unwrap()
        };
        let local = tuned(&[]);

        let mut remote = String::new();
        serve(
            rsl.to_str().unwrap(),
            None,
            None,
            None,
            "127.0.0.1:0",
            &[],
            None,
            None,
            None,
            false,
            LogOptions::default(),
            false,
            |handle| {
                remote = tuned(&["--remote", &handle.addr().to_string()]);
            },
        )
        .unwrap();
        assert!(
            remote.contains("engine: divide-diverge (server-side)"),
            "{remote}"
        );

        // Identical exploration count, best value, and best configuration.
        let summary = |out: &str| {
            out.lines()
                .filter(|l| {
                    l.starts_with("explored ")
                        || l.starts_with("best performance")
                        || l.starts_with("  ")
                })
                .map(|l| {
                    // The remote line carries the daemon address suffix.
                    l.split(" (daemon at ").next().unwrap().to_string()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            summary(&local),
            summary(&remote),
            "\n--- local\n{local}\n--- remote\n{remote}"
        );
        assert!(local.contains("best performance: 100"), "{local}");
    }

    #[test]
    fn stats_reports_live_daemon_metrics() {
        let rsl = write_rsl("stats.rsl");
        serve(
            rsl.to_str().unwrap(),
            None,
            None,
            None,
            "127.0.0.1:0",
            &[],
            None,
            Some(20),
            None,
            false,
            LogOptions::default(),
            false,
            |handle| {
                let cli = parse_args(&sv(&["stats", &handle.addr().to_string()])).unwrap();
                let out = run(cli.command).unwrap();
                assert!(out.contains("harmony_net_connections_total"), "{out}");
                assert!(
                    out.contains("# TYPE harmony_net_request_seconds histogram"),
                    "{out}"
                );
                assert!(out.contains("harmony_net_sessions_started_total"), "{out}");
                // Execution-engine metrics are preregistered so they show
                // up (as zeros) before the first parallel batch runs.
                assert!(out.contains("harmony_exec_cache_hits_total"), "{out}");
                assert!(out.contains("harmony_exec_queue_depth"), "{out}");
                // Pluggable-engine metrics likewise, one series per
                // registered engine plus the tournament counter.
                assert!(
                    out.contains("harmony_engine_proposals_total{engine=\"simplex\"}"),
                    "{out}"
                );
                assert!(
                    out.contains("harmony_engine_evaluations_total{engine=\"tuneful\"}"),
                    "{out}"
                );
                assert!(out.contains("harmony_engine_converged_iterations"), "{out}");
                assert!(
                    out.contains("harmony_engine_tournament_races_total"),
                    "{out}"
                );
            },
        )
        .unwrap();
    }

    #[test]
    fn serve_log_json_appends_structured_events() {
        let rsl = write_rsl("logjson.rsl");
        let log = std::env::temp_dir()
            .join("harmony-cli-tests")
            .join("events.jsonl");
        fs::remove_file(&log).ok();
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3)))";
        serve(
            rsl.to_str().unwrap(),
            None,
            None,
            None,
            "127.0.0.1:0",
            &[],
            None,
            Some(20),
            None,
            false,
            LogOptions {
                json: Some(log.to_str().unwrap().to_string()),
                ..LogOptions::default()
            },
            false,
            |handle| {
                let cli = parse_args(&sv(&[
                    "tune",
                    rsl.to_str().unwrap(),
                    "--remote",
                    &handle.addr().to_string(),
                    "--label",
                    "logged",
                    "--",
                    "sh",
                    "-c",
                    cmd,
                ]))
                .unwrap();
                run(cli.command).unwrap();
            },
        )
        .unwrap();
        let text = fs::read_to_string(&log).unwrap();
        assert!(text.contains("\"event\":\"net.daemon_start\""), "{text}");
        assert!(text.contains("\"event\":\"net.session_start\""), "{text}");
        assert!(text.contains("\"event\":\"net.session_record\""), "{text}");
        // Every line is a standalone JSON object.
        for line in text.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "not JSONL: {line}"
            );
        }
        fs::remove_file(&log).ok();
    }

    #[test]
    fn trace_report_renders_waterfalls_and_stage_attribution() {
        let traces = vec![WireTrace {
            trace_id: 0xab,
            complete: true,
            spans: vec![
                WireSpan {
                    id: 1,
                    parent: 0,
                    stage: "session".into(),
                    detail: String::new(),
                    start_us: 0,
                    end_us: 1000,
                    error: false,
                },
                WireSpan {
                    id: 2,
                    parent: 1,
                    stage: "serve".into(),
                    detail: "Fetch".into(),
                    start_us: 100,
                    end_us: 400,
                    error: false,
                },
                WireSpan {
                    id: 3,
                    parent: 1,
                    stage: "eval".into(),
                    detail: String::new(),
                    start_us: 400,
                    end_us: 900,
                    error: true,
                },
            ],
        }];
        let out = render_trace_report(&traces);
        assert!(out.contains("trace 00000000000000ab"), "{out}");
        assert!(out.contains("complete"), "{out}");
        assert!(out.contains("serve [Fetch]"), "{out}");
        assert!(out.contains("!error"), "{out}");
        assert!(out.contains("stage attribution"), "{out}");
        // Children are indented one level deeper than the root.
        let root_line = out.lines().find(|l| l.contains("  session")).unwrap();
        let child_line = out.lines().find(|l| l.contains("    eval")).unwrap();
        assert!(root_line.contains("1.00ms"), "{root_line}");
        assert!(child_line.contains("500us"), "{child_line}");
        // The attribution table ranks by total time: session (1000) over
        // eval (500) over serve (300).
        let table = &out[out.find("stage attribution").unwrap()..];
        let sess = table.find("session").unwrap();
        let eval = table.find("eval").unwrap();
        let serve = table.find("serve").unwrap();
        assert!(sess < eval && eval < serve, "{table}");
        // Same dump, same bytes.
        assert_eq!(out, render_trace_report(&traces));
        assert!(render_trace_report(&[]).contains("empty"));
    }

    #[test]
    fn traced_remote_tune_fills_the_flight_recorder() {
        let rsl = write_rsl("trace-flow.rsl");
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3)))";
        serve(
            rsl.to_str().unwrap(),
            None,
            None,
            None,
            "127.0.0.1:0",
            &[],
            None,
            Some(15),
            None,
            false,
            LogOptions::default(),
            false,
            |handle| {
                let addr = handle.addr().to_string();
                let cli = parse_args(&sv(&[
                    "tune",
                    rsl.to_str().unwrap(),
                    "--remote",
                    &addr,
                    "--trace",
                    "--label",
                    "traced",
                    "--",
                    "sh",
                    "-c",
                    cmd,
                ]))
                .unwrap();
                let out = run(cli.command).unwrap();
                assert!(out.contains("best performance"), "{out}");
                let cli = parse_args(&sv(&["trace", &addr])).unwrap();
                let out = run(cli.command).unwrap();
                assert!(out.contains("flight recorder"), "{out}");
                // The whole client → daemon → executor path shows up.
                for needle in [
                    "session",
                    "serve",
                    "net.read",
                    "classify",
                    "eval",
                    "queue.wait",
                    "exec.run",
                    "wal.append",
                    "stage attribution",
                ] {
                    assert!(out.contains(needle), "missing {needle} in:\n{out}");
                }
            },
        )
        .unwrap();
    }

    #[test]
    fn remote_tune_surfaces_measurement_failures() {
        let rsl = write_rsl("serve-fail.rsl");
        serve(
            rsl.to_str().unwrap(),
            None,
            None,
            None,
            "127.0.0.1:0",
            &[],
            None,
            Some(20),
            None,
            false,
            LogOptions::default(),
            false,
            |handle| {
                let cli = parse_args(&sv(&[
                    "tune",
                    rsl.to_str().unwrap(),
                    "--remote",
                    &handle.addr().to_string(),
                    "--",
                    "sh",
                    "-c",
                    "exit 9",
                ]))
                .unwrap();
                let err = run(cli.command).unwrap_err();
                assert!(err.0.contains("exploration 1"), "{err}");
                assert!(err.0.contains("measurement command failed"), "{err}");
            },
        )
        .unwrap();
    }
}
