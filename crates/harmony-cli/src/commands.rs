//! Subcommand implementations, writing human-readable reports to any
//! `Write` sink (tests capture a buffer; `main` passes stdout).

use crate::args::Command;
use crate::external::ExternalObjective;
use harmony::history::{DataAnalyzer, ExperienceDb};
use harmony::prelude::*;
use harmony::sensitivity::Prioritizer;
use harmony::tuner::TrainingMode;
use harmony_space::parse_rsl;
use std::fmt::Write as _;
use std::fs;

/// Top-level error type for command execution.
#[derive(Debug)]
pub struct RunError(pub String);

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RunError {}

fn fail(msg: impl Into<String>) -> RunError {
    RunError(msg.into())
}

/// Execute a parsed command, returning the report text.
pub fn run(command: Command) -> Result<String, RunError> {
    let mut out = String::new();
    match command {
        Command::Help => out.push_str(crate::args::USAGE),
        Command::Space { rsl } => {
            let space = load_space(&rsl)?;
            let _ = writeln!(out, "space: {} parameters from {rsl}", space.len());
            for p in space.params() {
                let _ = writeln!(
                    out,
                    "  {:<24} [{}, {}] step {} default {}{}",
                    p.name(),
                    p.static_min(),
                    p.static_max(),
                    p.step(),
                    p.default(),
                    if p.is_restricted() { "  (restricted)" } else { "" },
                );
            }
            let _ = writeln!(out, "unconstrained size: {}", space.unconstrained_size());
            if space.is_restricted() {
                match space.restricted_size(50_000_000) {
                    Some(n) => {
                        let _ = writeln!(out, "restricted size: {n}");
                    }
                    None => {
                        let _ = writeln!(out, "restricted size: > 50,000,000 (not enumerated)");
                    }
                }
            }
        }
        Command::Db { path } => {
            let db = ExperienceDb::load(&path).map_err(|e| fail(e.to_string()))?;
            let _ = writeln!(out, "experience database: {} run(s) in {path}", db.len());
            for (i, run) in db.runs().iter().enumerate() {
                let best = run
                    .best()
                    .map(|r| format!("best {:.2} at {:?}", r.performance, r.values))
                    .unwrap_or_else(|| "no records".into());
                let _ = writeln!(
                    out,
                    "  #{i} {:<16} {} records; {best}; characteristics {:?}",
                    run.label,
                    run.records.len(),
                    run.characteristics,
                );
            }
        }
        Command::Sensitivity { rsl, samples, repeats, measure } => {
            let space = load_space(&rsl)?;
            let mut prioritizer = Prioritizer::new(space.clone()).with_repeats(repeats);
            if let Some(n) = samples {
                prioritizer = prioritizer.with_max_samples(n);
            }
            let mut obj = ExternalObjective::new(space, measure);
            let report = prioritizer.analyze(&mut obj);
            let _ = writeln!(out, "sensitivity ({} explorations):", report.explorations());
            for e in report.ranked() {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>10.3}   best value {}",
                    e.name, e.sensitivity, e.best_value
                );
            }
        }
        Command::Tune { rsl, iterations, original, db, label, characteristics, measure } => {
            let space = load_space(&rsl)?;
            let mut database = match &db {
                Some(path) if fs::metadata(path).is_ok() => {
                    ExperienceDb::load(path).map_err(|e| fail(e.to_string()))?
                }
                _ => ExperienceDb::new(),
            };
            let options = if original {
                TuningOptions::original()
            } else {
                TuningOptions::improved()
            }
            .with_max_iterations(iterations);
            let tuner = Tuner::new(space.clone(), options);
            let mut obj = ExternalObjective::new(space.clone(), measure);

            // Classify against prior experience when characteristics are
            // provided.
            let prior = if characteristics.is_empty() {
                None
            } else {
                DataAnalyzer::new().select(&database, &characteristics)
            };
            let outcome = match &prior {
                Some(history) => {
                    let _ = writeln!(out, "training from prior run {:?}", history.label);
                    tuner.run_trained(&mut obj, history, TrainingMode::Replay(10))
                }
                None => tuner.run(&mut obj),
            };

            let _ = writeln!(out, "explored {} configurations", outcome.trace.len());
            let _ = writeln!(out, "best performance: {:.4}", outcome.best_performance);
            for (p, &v) in space.params().iter().zip(outcome.best_configuration.values()) {
                let _ = writeln!(out, "  {:<24} = {v}", p.name());
            }
            let _ = writeln!(
                out,
                "convergence at iteration {}; worst dip {:.4}; converged: {}",
                outcome.report.convergence_time, outcome.report.worst_performance, outcome.converged
            );

            if let Some(path) = db {
                database.add_run(outcome.to_history(label, characteristics));
                database.save(&path).map_err(|e| fail(e.to_string()))?;
                let _ = writeln!(out, "experience saved to {path} ({} runs)", database.len());
            }
        }
    }
    Ok(out)
}

fn load_space(path: &str) -> Result<harmony_space::ParameterSpace, RunError> {
    let text = fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    parse_rsl(&text).map_err(|e| fail(format!("cannot parse {path}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_args;

    fn write_rsl(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("harmony-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::write(
            &path,
            "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}\n",
        )
        .unwrap();
        path
    }

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn space_report() {
        let rsl = write_rsl("space.rsl");
        let cli = parse_args(&sv(&["space", rsl.to_str().unwrap()])).unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("2 parameters"), "{out}");
        assert!(out.contains("unconstrained size: 64"), "{out}");
        assert!(out.contains("restricted size: 36"), "{out}");
        assert!(out.contains("(restricted)"), "{out}");
    }

    #[test]
    fn missing_rsl_is_a_clean_error() {
        let cli = parse_args(&sv(&["space", "/nonexistent.rsl"])).unwrap();
        let err = run(cli.command).unwrap_err();
        assert!(err.0.contains("cannot read"), "{err}");
    }

    #[test]
    fn tune_an_external_shell_command_and_persist_experience() {
        let rsl = write_rsl("tune.rsl");
        let db = std::env::temp_dir().join("harmony-cli-tests").join("exp.json");
        fs::remove_file(&db).ok();
        // Best at B=3, C=4 (D = 10-B-C = 3).
        let cmd = "echo $((100 - (HARMONY_B-3)*(HARMONY_B-3) - (HARMONY_C-4)*(HARMONY_C-4)))";
        let cli = parse_args(&sv(&[
            "tune",
            rsl.to_str().unwrap(),
            "--iterations",
            "50",
            "--db",
            db.to_str().unwrap(),
            "--label",
            "shop",
            "--characteristics",
            "0.2,0.8",
            "--",
            "sh",
            "-c",
            cmd,
        ]))
        .unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("best performance: 100"), "{out}");
        assert!(out.contains("experience saved"), "{out}");

        // Second run classifies against the saved experience.
        let cli = parse_args(&sv(&[
            "tune",
            rsl.to_str().unwrap(),
            "--iterations",
            "30",
            "--db",
            db.to_str().unwrap(),
            "--label",
            "shop-2",
            "--characteristics",
            "0.21,0.79",
            "--",
            "sh",
            "-c",
            cmd,
        ]))
        .unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("training from prior run \"shop\""), "{out}");

        // And the db report shows both runs.
        let cli = parse_args(&sv(&["db", db.to_str().unwrap()])).unwrap();
        let out = run(cli.command).unwrap();
        assert!(out.contains("2 run(s)"), "{out}");
        fs::remove_file(&db).ok();
    }

    #[test]
    fn sensitivity_on_external_command() {
        let rsl = write_rsl("sens.rsl");
        let cli = parse_args(&sv(&[
            "sensitivity",
            rsl.to_str().unwrap(),
            "--repeats",
            "1",
            "--",
            "sh",
            "-c",
            "echo $((HARMONY_B * 10 + HARMONY_C))",
        ]))
        .unwrap();
        let out = run(cli.command).unwrap();
        // B has 10x the leverage of C: it must rank first.
        let b_pos = out.find("B ").expect("B listed");
        let c_pos = out.find("C ").expect("C listed");
        assert!(b_pos < c_pos, "{out}");
    }

    #[test]
    fn help_is_usage() {
        let out = run(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }
}
