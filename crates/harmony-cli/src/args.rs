//! Hand-rolled argument parsing (no external dependencies).

use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The selected subcommand.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Inspect an RSL document: parameters, sizes, restrictions.
    Space {
        /// Path to the RSL file.
        rsl: String,
    },
    /// Run the parameter prioritizing tool against a measurement command.
    Sensitivity {
        /// Path to the RSL file.
        rsl: String,
        /// Cap on sampled values per parameter.
        samples: Option<usize>,
        /// Measurements averaged per value.
        repeats: usize,
        /// Worker threads measuring concurrently (1 = sequential).
        jobs: usize,
        /// The external measurement command and its arguments.
        measure: Vec<String>,
    },
    /// Tune against a measurement command.
    Tune {
        /// Path to the RSL file.
        rsl: String,
        /// Live iteration budget.
        iterations: usize,
        /// Use the original extreme-corner initial simplex instead of the
        /// improved evenly-spread one.
        original: bool,
        /// Search engine from the `harmony-engines` registry (defaults to
        /// the classic simplex tuner flow when unset).
        engine: Option<String>,
        /// Experience-database path (loaded if present, updated after).
        db: Option<String>,
        /// Label recorded for this run in the database.
        label: String,
        /// Workload characteristics for classification, comma-separated.
        characteristics: Vec<f64>,
        /// Drive a remote tuning daemon at this address instead of the
        /// in-process kernel.
        remote: Option<String>,
        /// Retries per request against the remote daemon (needs --remote).
        retry: Option<u32>,
        /// Per-request deadline in milliseconds (needs --remote).
        deadline_ms: Option<u64>,
        /// Participate in distributed tracing (needs --remote): the
        /// session becomes one trace in the daemon's flight recorder.
        trace: bool,
        /// Wire encoding against the daemon (needs --remote): `None`
        /// negotiates the newest protocol (binary framing on a v3
        /// daemon), `Some(Json)` pins the client at protocol v2 JSON.
        wire: Option<WireChoice>,
        /// Worker threads measuring concurrently (1 = sequential).
        jobs: usize,
        /// The external measurement command and its arguments.
        measure: Vec<String>,
    },
    /// Run the tuning daemon.
    Serve {
        /// Path to the RSL file describing the space the daemon serves.
        rsl: String,
        /// Experience-database snapshot path, persisted across restarts.
        db: Option<String>,
        /// Write-ahead journal path (defaults to the db path + ".wal").
        wal: Option<String>,
        /// Fold journal into snapshot after this many appends.
        compact_every: Option<usize>,
        /// Address to bind.
        listen: String,
        /// Other cluster members' advertised addresses (repeat `--peer`
        /// or comma-separate). The daemon joins their consistent-hash
        /// ring, advertising its own `--listen` address.
        peers: Vec<String>,
        /// Ring members holding each run and replicated session,
        /// counting the owner (needs `--peer`).
        replicate: Option<usize>,
        /// Default live-iteration budget for sessions.
        iterations: Option<usize>,
        /// Concurrent-connection cap.
        max_connections: Option<usize>,
        /// Serve with the legacy thread-per-connection model instead of
        /// the epoll reactor (honest-comparison escape hatch).
        threaded: bool,
        /// Append structured JSONL events to this file.
        log_json: Option<String>,
        /// Rotate the --log-json file when it reaches this many bytes.
        log_rotate_bytes: Option<u64>,
        /// Rotated files kept (events.jsonl.1 … .N); needs
        /// --log-rotate-bytes.
        log_keep: Option<usize>,
        /// Do not enable the distributed-tracing flight recorder.
        no_trace: bool,
    },
    /// Race every registered engine (and its hyperparameters) across
    /// websim workload mixes; write the deterministic leaderboard.
    Tournament {
        /// Measurement budget per engine run.
        budget: usize,
        /// Hyperparameter candidates per race (defaults included).
        candidates: usize,
        /// Seed for candidate draws and engine randomness.
        seed: u64,
        /// Worker threads scoring candidates concurrently.
        jobs: usize,
        /// Workload mixes to race on (`browsing`, `shopping`, `ordering`).
        mixes: Vec<String>,
        /// Leaderboard output path.
        out: String,
    },
    /// Fetch live metrics from a running daemon.
    Stats {
        /// Daemon address (`host:port`).
        addr: String,
    },
    /// Fetch the flight recorder from a running daemon and render span
    /// waterfalls plus a cross-trace stage-attribution table.
    Trace {
        /// Daemon address (`host:port`).
        addr: String,
    },
    /// Inspect an experience database.
    Db {
        /// Path to the JSON database.
        path: String,
    },
    /// Print usage.
    Help,
}

/// The `--wire` choice for remote tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireChoice {
    /// Pin the client at protocol v2: every frame is JSON.
    Json,
    /// Negotiate the newest protocol (v3 binary framing when the daemon
    /// supports it, with automatic JSON fallback on older daemons).
    /// This is also the behavior when `--wire` is omitted.
    Binary,
}

/// Argument errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
harmony-cli — Active Harmony automated tuning

USAGE:
  harmony-cli space <params.rsl>
  harmony-cli sensitivity <params.rsl> [--samples N] [--repeats R] [--jobs N]
              -- <measure-cmd> [args…]
  harmony-cli tune <params.rsl> [--iterations N] [--original] [--jobs N]
              [--engine <name>] [--db <experience.json>] [--label <name>]
              [--characteristics a,b,c] [--remote <host:port>]
              [--retry N] [--deadline MS] [--trace] [--wire json|binary]
              -- <measure-cmd> [args…]
  harmony-cli tournament [--budget N] [--candidates N] [--seed N] [--jobs N]
              [--mixes browsing,shopping,ordering] [--out <leaderboard.txt>]
  harmony-cli serve <params.rsl> [--listen <host:port>] [--db <experience.json>]
              [--wal <journal.wal>] [--compact-every N]
              [--peer <host:port>[,<host:port>…]] [--replicate N]
              [--iterations N] [--max-connections N] [--threaded]
              [--log-json <events.jsonl>]
              [--log-rotate-bytes N] [--log-keep N] [--no-trace]
  harmony-cli stats <host:port>
  harmony-cli trace <host:port>
  harmony-cli db <experience.json>

The measure command is executed once per exploration with one environment
variable per parameter (HARMONY_<NAME>=<value>); its last non-empty stdout
line must be the performance (higher is better).

--jobs N measures up to N configurations concurrently (each as its own
process) and memoizes results per exact configuration, so revisited points
are answered from the in-memory cache instead of re-measured. Results are
identical to a sequential run for a deterministic measure command; under
measurement noise the cache pins each configuration to its first sample.

--engine <name> picks the search strategy from the harmony-engines
registry: 'simplex' (the classic kernel behind the engine trait),
'divide-diverge' (BestConfig-style sampling with recursive bound-and-search)
or 'tuneful' (online significance-aware tuning that shrinks the active
parameter set). Locally all engines honour --db warm starting and --jobs
batching; with --remote the name travels in the SessionStart and the daemon
builds and drives the engine server-side (with its own warm start), so a
remote run explores the identical trajectory a local one would.
'tournament' needs no RSL or measure command: it races every engine on the
built-in websim workload mixes, meta-tunes each engine's hyperparameters and
writes a deterministic leaderboard (byte-identical for a fixed --seed at any
--jobs) to --out (default results/engines_leaderboard.txt).

With --remote, the configurations come from a tuning daemon (see 'serve')
instead of the in-process kernel: the daemon classifies the session against
its shared experience database and records the finished run back into it.
--remote accepts a comma-separated endpoint list (every daemon of one
cluster): the client dials them in order, fails over to the next on a dead
daemon, and follows the cluster's session-ownership redirects. --db and
--original are daemon-side decisions and cannot be combined with --remote. --retry N retries each failed-but-retryable request up to N times
with jittered backoff, reconnecting and resuming the session in place;
--deadline MS bounds each request's response time (expiry counts as
retryable). --wire picks the encoding against the daemon: 'binary' (the
default) negotiates the newest protocol — compact binary framing against a
v3 daemon, with automatic JSON fallback on older ones — while 'json' pins
the client at protocol v2 so every frame stays human-readable JSON.
Both encodings drive bit-identical tuning trajectories. 'serve' listens until stdin reaches end-of-file or the process
receives SIGTERM/SIGINT, then drains: new work is refused with a retryable
answer, unfinished sessions are parked to disk next to the database, and
the journal is flushed before exit. --log-json appends
one structured JSON event per line (session starts, records, persistence
failures) to the given file; --log-rotate-bytes N rotates it at roughly N
bytes (always on a line boundary, so no event is ever torn across files),
keeping --log-keep rotated files (default 3) as <file>.1 … <file>.N.
'stats' prints the daemon's live metrics in Prometheus text exposition
format.

The daemon records distributed traces by default (disable with
--no-trace): with 'tune --remote --trace' each session becomes one span
tree covering the whole client → daemon → executor path, retained in a
fixed-size flight recorder (slowest, errored, and a sampled fraction).
'trace <host:port>' fetches it and renders per-trace waterfalls plus a
cross-trace per-stage latency attribution table. Tracing never affects
tuning: trajectories are bit-identical with it on or off.

With --db, completed runs are journaled to a write-ahead log (one JSON line
per run, --wal overrides its location) and folded into the snapshot file
every --compact-every appends (default 64) and at shutdown. A crash between
compactions loses nothing: on restart the daemon replays the journal on top
of the snapshot, tolerating at most one torn final line.

With --peer, 'serve' joins a cluster: every daemon lists the others'
addresses (its own identity is its --listen address, byte-for-byte as the
peers spell it) and they form a consistent-hash ring. Sessions are owned by
the daemon that starts them; recorded runs live on the ring member their
workload characteristics hash to, shipped there over the peer protocol.
--replicate N keeps each run and each live session's snapshots on N members
(counting the owner), so with N >= 2 killing any single daemon loses no
recorded run, and an interrupted session resumes — bit-identically — on the
surviving replica the client's reconnect is redirected to.";

/// Parse a full argument vector (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let mut it = args.iter().peekable();
    let sub = match it.next() {
        None => {
            return Ok(Cli {
                command: Command::Help,
            })
        }
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Cli {
            command: Command::Help,
        }),
        "space" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("space: missing RSL file"))?
                .clone();
            expect_end(&mut it, "space")?;
            Ok(Cli {
                command: Command::Space { rsl },
            })
        }
        "db" => {
            let path = it
                .next()
                .ok_or_else(|| err("db: missing database path"))?
                .clone();
            expect_end(&mut it, "db")?;
            Ok(Cli {
                command: Command::Db { path },
            })
        }
        "sensitivity" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("sensitivity: missing RSL file"))?
                .clone();
            let mut samples = None;
            let mut repeats = 1usize;
            let mut jobs = 1usize;
            let mut measure = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--samples" => samples = Some(parse_value(&mut it, "--samples")?),
                    "--repeats" => repeats = parse_value(&mut it, "--repeats")?,
                    "--jobs" => jobs = parse_jobs(&mut it)?,
                    "--" => {
                        measure = it.cloned().collect();
                        break;
                    }
                    other => {
                        return Err(err(format!("sensitivity: unexpected argument {other:?}")))
                    }
                }
            }
            if measure.is_empty() {
                return Err(err("sensitivity: missing '-- <measure-cmd>'"));
            }
            Ok(Cli {
                command: Command::Sensitivity {
                    rsl,
                    samples,
                    repeats,
                    jobs,
                    measure,
                },
            })
        }
        "tune" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("tune: missing RSL file"))?
                .clone();
            let mut iterations = 100usize;
            let mut original = false;
            let mut engine = None;
            let mut db = None;
            let mut label = "run".to_string();
            let mut characteristics = Vec::new();
            let mut remote = None;
            let mut retry = None;
            let mut deadline_ms = None;
            let mut trace = false;
            let mut wire = None;
            let mut jobs = 1usize;
            let mut measure = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--iterations" => iterations = parse_value(&mut it, "--iterations")?,
                    "--original" => original = true,
                    "--engine" => {
                        let name = next_str(&mut it, "--engine")?;
                        // Validate against the registry here so a typo
                        // fails with the list of real engines instead of
                        // a generic parse failure downstream.
                        harmony_engines::registry::lookup(&name)
                            .map_err(|e| err(format!("--engine: {e}")))?;
                        engine = Some(name);
                    }
                    "--jobs" => jobs = parse_jobs(&mut it)?,
                    "--db" => db = Some(next_str(&mut it, "--db")?),
                    "--remote" => remote = Some(next_str(&mut it, "--remote")?),
                    "--retry" => retry = Some(parse_value(&mut it, "--retry")?),
                    "--deadline" => {
                        let ms: u64 = parse_value(&mut it, "--deadline")?;
                        if ms == 0 {
                            return Err(err("--deadline: must be at least 1 millisecond"));
                        }
                        deadline_ms = Some(ms);
                    }
                    "--trace" => trace = true,
                    "--wire" => {
                        let raw = next_str(&mut it, "--wire")?;
                        wire = Some(match raw.as_str() {
                            "json" => WireChoice::Json,
                            "binary" => WireChoice::Binary,
                            other => {
                                return Err(err(format!(
                                    "--wire: unknown format {other:?} (json or binary)"
                                )))
                            }
                        });
                    }
                    "--label" => label = next_str(&mut it, "--label")?,
                    "--characteristics" => {
                        let raw = next_str(&mut it, "--characteristics")?;
                        characteristics = raw
                            .split(',')
                            .map(|s| {
                                s.trim().parse::<f64>().map_err(|_| {
                                    err(format!("--characteristics: bad number {s:?}"))
                                })
                            })
                            .collect::<Result<Vec<f64>, CliError>>()?;
                    }
                    "--" => {
                        measure = it.cloned().collect();
                        break;
                    }
                    other => return Err(err(format!("tune: unexpected argument {other:?}"))),
                }
            }
            if measure.is_empty() {
                return Err(err("tune: missing '-- <measure-cmd>'"));
            }
            if remote.is_some() && (db.is_some() || original) {
                return Err(err(
                    "tune: --remote cannot be combined with --db or --original \
                     (the daemon owns the experience database and search strategy)",
                ));
            }
            if remote.is_some() && jobs > 1 {
                return Err(err("tune: --jobs applies to local tuning only \
                     (a remote daemon proposes configurations one at a time)"));
            }
            if original && engine.as_deref().is_some_and(|e| e != "simplex") {
                return Err(err(
                    "tune: --original configures the simplex engine's initial \
                     simplex and cannot be combined with another --engine",
                ));
            }
            if remote.is_none() && (retry.is_some() || deadline_ms.is_some()) {
                return Err(err(
                    "tune: --retry and --deadline apply to --remote tuning only",
                ));
            }
            if remote.is_none() && trace {
                return Err(err("tune: --trace applies to --remote tuning only \
                     (the daemon hosts the flight recorder)"));
            }
            if remote.is_none() && wire.is_some() {
                return Err(err("tune: --wire applies to --remote tuning only \
                     (local tuning has no wire)"));
            }
            Ok(Cli {
                command: Command::Tune {
                    rsl,
                    iterations,
                    original,
                    engine,
                    db,
                    label,
                    characteristics,
                    remote,
                    retry,
                    deadline_ms,
                    trace,
                    wire,
                    jobs,
                    measure,
                },
            })
        }
        "serve" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("serve: missing RSL file"))?
                .clone();
            let mut db = None;
            let mut wal = None;
            let mut compact_every = None;
            let mut listen = "127.0.0.1:1977".to_string();
            let mut peers: Vec<String> = Vec::new();
            let mut replicate = None;
            let mut iterations = None;
            let mut max_connections = None;
            let mut threaded = false;
            let mut log_json = None;
            let mut log_rotate_bytes = None;
            let mut log_keep = None;
            let mut no_trace = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--db" => db = Some(next_str(&mut it, "--db")?),
                    "--wal" => wal = Some(next_str(&mut it, "--wal")?),
                    "--compact-every" => {
                        compact_every = Some(parse_value(&mut it, "--compact-every")?)
                    }
                    "--listen" => listen = next_str(&mut it, "--listen")?,
                    "--peer" => {
                        let raw = next_str(&mut it, "--peer")?;
                        for peer in raw.split(',') {
                            let peer = peer.trim();
                            if peer.is_empty() {
                                return Err(err("--peer: empty address"));
                            }
                            peers.push(peer.to_string());
                        }
                    }
                    "--replicate" => {
                        let n: usize = parse_value(&mut it, "--replicate")?;
                        if n == 0 {
                            return Err(err("--replicate: must be at least 1"));
                        }
                        replicate = Some(n);
                    }
                    "--iterations" => iterations = Some(parse_value(&mut it, "--iterations")?),
                    "--max-connections" | "--max-conns" => {
                        max_connections = Some(parse_value(&mut it, "--max-connections")?)
                    }
                    "--threaded" => threaded = true,
                    "--log-json" => log_json = Some(next_str(&mut it, "--log-json")?),
                    "--log-rotate-bytes" => {
                        let bytes: u64 = parse_value(&mut it, "--log-rotate-bytes")?;
                        if bytes == 0 {
                            return Err(err("--log-rotate-bytes: must be at least 1"));
                        }
                        log_rotate_bytes = Some(bytes);
                    }
                    "--log-keep" => {
                        let keep: usize = parse_value(&mut it, "--log-keep")?;
                        if keep == 0 {
                            return Err(err("--log-keep: must keep at least 1 rotated file"));
                        }
                        log_keep = Some(keep);
                    }
                    "--no-trace" => no_trace = true,
                    other => return Err(err(format!("serve: unexpected argument {other:?}"))),
                }
            }
            // --wal/--compact-every/--db combinations are validated by
            // `DaemonConfig::builder` when the daemon is configured, so
            // the rule lives in one place for every embedder.
            if replicate.is_some() && peers.is_empty() {
                return Err(err(
                    "serve: --replicate needs --peer (no ring to replicate across)",
                ));
            }
            if log_json.is_none() && log_rotate_bytes.is_some() {
                return Err(err(
                    "serve: --log-rotate-bytes needs --log-json (nothing to rotate without it)",
                ));
            }
            if log_rotate_bytes.is_none() && log_keep.is_some() {
                return Err(err("serve: --log-keep needs --log-rotate-bytes"));
            }
            Ok(Cli {
                command: Command::Serve {
                    rsl,
                    db,
                    wal,
                    compact_every,
                    listen,
                    peers,
                    replicate,
                    iterations,
                    max_connections,
                    threaded,
                    log_json,
                    log_rotate_bytes,
                    log_keep,
                    no_trace,
                },
            })
        }
        "tournament" => {
            let mut budget = 120usize;
            let mut candidates = 4usize;
            let mut seed = 42u64;
            let mut jobs = 1usize;
            let mut mixes = vec![
                "browsing".to_string(),
                "shopping".to_string(),
                "ordering".to_string(),
            ];
            let mut out = "results/engines_leaderboard.txt".to_string();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--budget" => {
                        budget = parse_value(&mut it, "--budget")?;
                        if budget == 0 {
                            return Err(err("--budget: must be at least 1"));
                        }
                    }
                    "--candidates" => {
                        candidates = parse_value(&mut it, "--candidates")?;
                        if candidates == 0 {
                            return Err(err("--candidates: must be at least 1"));
                        }
                    }
                    "--seed" => seed = parse_value(&mut it, "--seed")?,
                    "--jobs" => jobs = parse_jobs(&mut it)?,
                    "--mixes" => {
                        let raw = next_str(&mut it, "--mixes")?;
                        mixes = raw.split(',').map(|s| s.trim().to_string()).collect();
                        for m in &mixes {
                            if !matches!(m.as_str(), "browsing" | "shopping" | "ordering") {
                                return Err(err(format!(
                                    "--mixes: unknown mix {m:?}; available mixes: \
                                     browsing, shopping, ordering"
                                )));
                            }
                        }
                    }
                    "--out" => out = next_str(&mut it, "--out")?,
                    other => return Err(err(format!("tournament: unexpected argument {other:?}"))),
                }
            }
            Ok(Cli {
                command: Command::Tournament {
                    budget,
                    candidates,
                    seed,
                    jobs,
                    mixes,
                    out,
                },
            })
        }
        "stats" => {
            let addr = it
                .next()
                .ok_or_else(|| err("stats: missing daemon address"))?
                .clone();
            expect_end(&mut it, "stats")?;
            Ok(Cli {
                command: Command::Stats { addr },
            })
        }
        "trace" => {
            let addr = it
                .next()
                .ok_or_else(|| err("trace: missing daemon address"))?
                .clone();
            expect_end(&mut it, "trace")?;
            Ok(Cli {
                command: Command::Trace { addr },
            })
        }
        other => Err(err(format!(
            "unknown subcommand {other:?} (try 'harmony-cli help')"
        ))),
    }
}

fn parse_jobs<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
) -> Result<usize, CliError> {
    let jobs: usize = parse_value(it, "--jobs")?;
    if jobs == 0 {
        return Err(err("--jobs: must be at least 1"));
    }
    Ok(jobs)
}

fn next_str<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| err(format!("{flag}: missing value")))
}

fn parse_value<'a, T: std::str::FromStr>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    flag: &str,
) -> Result<T, CliError> {
    let raw = next_str(it, flag)?;
    raw.parse::<T>()
        .map_err(|_| err(format!("{flag}: invalid value {raw:?}")))
}

fn expect_end<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    sub: &str,
) -> Result<(), CliError> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(err(format!("{sub}: unexpected argument {extra:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap().command, Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap().command, Command::Help);
    }

    #[test]
    fn space_and_db() {
        assert_eq!(
            parse_args(&v(&["space", "p.rsl"])).unwrap().command,
            Command::Space {
                rsl: "p.rsl".into()
            }
        );
        assert_eq!(
            parse_args(&v(&["db", "e.json"])).unwrap().command,
            Command::Db {
                path: "e.json".into()
            }
        );
        assert!(parse_args(&v(&["space"])).is_err());
        assert!(parse_args(&v(&["space", "a", "b"])).is_err());
    }

    #[test]
    fn sensitivity_full() {
        let cli = parse_args(&v(&[
            "sensitivity",
            "p.rsl",
            "--samples",
            "8",
            "--repeats",
            "3",
            "--",
            "./m.sh",
            "arg",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Sensitivity {
                rsl: "p.rsl".into(),
                samples: Some(8),
                repeats: 3,
                jobs: 1,
                measure: v(&["./m.sh", "arg"]),
            }
        );
    }

    #[test]
    fn sensitivity_requires_measure_command() {
        assert!(parse_args(&v(&["sensitivity", "p.rsl"])).is_err());
        assert!(parse_args(&v(&["sensitivity", "p.rsl", "--"])).is_err());
    }

    #[test]
    fn tune_defaults_and_flags() {
        let cli = parse_args(&v(&["tune", "p.rsl", "--", "./m.sh"])).unwrap();
        match cli.command {
            Command::Tune {
                iterations,
                original,
                db,
                label,
                characteristics,
                ..
            } => {
                assert_eq!(iterations, 100);
                assert!(!original);
                assert!(db.is_none());
                assert_eq!(label, "run");
                assert!(characteristics.is_empty());
            }
            other => panic!("wrong command {other:?}"),
        }

        let cli = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--iterations",
            "42",
            "--original",
            "--db",
            "e.json",
            "--label",
            "night",
            "--characteristics",
            "0.2, 0.8",
            "--",
            "./m.sh",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune {
                iterations,
                original,
                db,
                label,
                characteristics,
                ..
            } => {
                assert_eq!(iterations, 42);
                assert!(original);
                assert_eq!(db.as_deref(), Some("e.json"));
                assert_eq!(label, "night");
                assert_eq!(characteristics, vec![0.2, 0.8]);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn tune_remote() {
        let cli = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "10.0.0.7:1977",
            "--label",
            "apu",
            "--",
            "./m.sh",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune { remote, label, .. } => {
                assert_eq!(remote.as_deref(), Some("10.0.0.7:1977"));
                assert_eq!(label, "apu");
            }
            other => panic!("wrong command {other:?}"),
        }

        // The daemon owns db and strategy; combining is refused.
        assert!(parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--db", "e.json", "--", "m",
        ]))
        .is_err());
        assert!(parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "h:1",
            "--original",
            "--",
            "m"
        ]))
        .is_err());
    }

    #[test]
    fn retry_and_deadline_need_remote() {
        let cli = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "h:1",
            "--retry",
            "7",
            "--deadline",
            "2500",
            "--",
            "m",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune {
                retry, deadline_ms, ..
            } => {
                assert_eq!(retry, Some(7));
                assert_eq!(deadline_ms, Some(2500));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: both unset.
        let cli = parse_args(&v(&["tune", "p.rsl", "--remote", "h:1", "--", "m"])).unwrap();
        match cli.command {
            Command::Tune {
                retry, deadline_ms, ..
            } => {
                assert_eq!(retry, None);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Local tuning has no wire to retry.
        assert!(parse_args(&v(&["tune", "p.rsl", "--retry", "3", "--", "m"])).is_err());
        assert!(parse_args(&v(&["tune", "p.rsl", "--deadline", "100", "--", "m"])).is_err());
        // Bad values.
        assert!(parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--retry", "x", "--", "m"
        ]))
        .is_err());
        assert!(parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "h:1",
            "--deadline",
            "0",
            "--",
            "m"
        ]))
        .is_err());
    }

    #[test]
    fn wire_flag_needs_remote_and_validates_the_format() {
        let cli = parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--wire", "json", "--", "m",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune { wire, .. } => assert_eq!(wire, Some(WireChoice::Json)),
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--wire", "binary", "--", "m",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune { wire, .. } => assert_eq!(wire, Some(WireChoice::Binary)),
            other => panic!("wrong command {other:?}"),
        }
        // Default: negotiate (None, meaning binary-when-available).
        let cli = parse_args(&v(&["tune", "p.rsl", "--remote", "h:1", "--", "m"])).unwrap();
        match cli.command {
            Command::Tune { wire, .. } => assert_eq!(wire, None),
            other => panic!("wrong command {other:?}"),
        }
        // Local tuning has no wire.
        let e = parse_args(&v(&["tune", "p.rsl", "--wire", "json", "--", "m"])).unwrap_err();
        assert!(e.0.contains("--wire applies to --remote"), "{e}");
        // Unknown formats are refused with the valid choices.
        let e = parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--wire", "xml", "--", "m",
        ]))
        .unwrap_err();
        assert!(e.0.contains("json or binary"), "{e}");
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cli = parse_args(&v(&["serve", "p.rsl"])).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                rsl: "p.rsl".into(),
                db: None,
                wal: None,
                compact_every: None,
                listen: "127.0.0.1:1977".into(),
                peers: vec![],
                replicate: None,
                iterations: None,
                max_connections: None,
                threaded: false,
                log_json: None,
                log_rotate_bytes: None,
                log_keep: None,
                no_trace: false,
            }
        );

        let cli = parse_args(&v(&[
            "serve",
            "p.rsl",
            "--listen",
            "0.0.0.0:7007",
            "--db",
            "e.json",
            "--wal",
            "e.wal",
            "--compact-every",
            "16",
            "--peer",
            "10.0.0.2:7007,10.0.0.3:7007",
            "--peer",
            "10.0.0.4:7007",
            "--replicate",
            "2",
            "--iterations",
            "80",
            "--max-connections",
            "4",
            "--log-json",
            "events.jsonl",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                rsl: "p.rsl".into(),
                db: Some("e.json".into()),
                wal: Some("e.wal".into()),
                compact_every: Some(16),
                listen: "0.0.0.0:7007".into(),
                peers: v(&["10.0.0.2:7007", "10.0.0.3:7007", "10.0.0.4:7007"]),
                replicate: Some(2),
                iterations: Some(80),
                max_connections: Some(4),
                threaded: false,
                log_json: Some("events.jsonl".into()),
                log_rotate_bytes: None,
                log_keep: None,
                no_trace: false,
            }
        );

        // --max-conns is an alias, --threaded flips the serving model.
        let cli = parse_args(&v(&["serve", "p.rsl", "--max-conns", "9", "--threaded"])).unwrap();
        match cli.command {
            Command::Serve {
                max_connections,
                threaded,
                ..
            } => {
                assert_eq!(max_connections, Some(9));
                assert!(threaded);
            }
            other => panic!("wrong command {other:?}"),
        }

        assert!(parse_args(&v(&["serve"])).is_err());
        assert!(parse_args(&v(&["serve", "p.rsl", "--port", "1"])).is_err());
        assert!(parse_args(&v(&["serve", "p.rsl", "--log-json"])).is_err());
    }

    #[test]
    fn serve_log_rotation_flags() {
        let cli = parse_args(&v(&[
            "serve",
            "p.rsl",
            "--log-json",
            "events.jsonl",
            "--log-rotate-bytes",
            "65536",
            "--log-keep",
            "5",
            "--no-trace",
        ]))
        .unwrap();
        match cli.command {
            Command::Serve {
                log_json,
                log_rotate_bytes,
                log_keep,
                no_trace,
                ..
            } => {
                assert_eq!(log_json.as_deref(), Some("events.jsonl"));
                assert_eq!(log_rotate_bytes, Some(65536));
                assert_eq!(log_keep, Some(5));
                assert!(no_trace);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Rotation needs a log, keep needs rotation, zero is refused.
        assert!(parse_args(&v(&["serve", "p.rsl", "--log-rotate-bytes", "1024"])).is_err());
        assert!(parse_args(&v(&[
            "serve",
            "p.rsl",
            "--log-json",
            "e.jsonl",
            "--log-keep",
            "2"
        ]))
        .is_err());
        assert!(parse_args(&v(&[
            "serve",
            "p.rsl",
            "--log-json",
            "e.jsonl",
            "--log-rotate-bytes",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&v(&[
            "serve",
            "p.rsl",
            "--log-json",
            "e.jsonl",
            "--log-rotate-bytes",
            "1024",
            "--log-keep",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn trace_flags_and_subcommand() {
        let cli = parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--trace", "--", "m",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune { trace, .. } => assert!(trace),
            other => panic!("wrong command {other:?}"),
        }
        // The flight recorder lives in the daemon.
        let e = parse_args(&v(&["tune", "p.rsl", "--trace", "--", "m"])).unwrap_err();
        assert!(e.0.contains("--trace applies to --remote"), "{e}");
        assert_eq!(
            parse_args(&v(&["trace", "127.0.0.1:1977"]))
                .unwrap()
                .command,
            Command::Trace {
                addr: "127.0.0.1:1977".into()
            }
        );
        assert!(parse_args(&v(&["trace"])).is_err());
        assert!(parse_args(&v(&["trace", "a:1", "b:2"])).is_err());
    }

    #[test]
    fn serve_wal_flags_parse_without_a_db() {
        // The wal/db and compact/db combinations are validated by
        // DaemonConfig::builder when the daemon is configured, not at parse
        // time, so embedders and the CLI share one set of rules. The parser
        // only rejects values it cannot read.
        assert!(parse_args(&v(&["serve", "p.rsl", "--wal", "e.wal"])).is_ok());
        assert!(parse_args(&v(&["serve", "p.rsl", "--compact-every", "8"])).is_ok());
        assert!(parse_args(&v(&["serve", "p.rsl", "--compact-every", "x", "--db", "e"])).is_err());
    }

    #[test]
    fn serve_cluster_flags() {
        // Comma-separated and repeated --peer flags accumulate in order.
        let cli = parse_args(&v(&[
            "serve", "p.rsl", "--peer", "a:1,b:2", "--peer", "c:3",
        ]))
        .unwrap();
        match cli.command {
            Command::Serve {
                peers, replicate, ..
            } => {
                assert_eq!(peers, v(&["a:1", "b:2", "c:3"]));
                assert_eq!(replicate, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Replication without a ring has nothing to copy to.
        let e = parse_args(&v(&["serve", "p.rsl", "--replicate", "2"])).unwrap_err();
        assert!(e.0.contains("--replicate needs --peer"), "{e}");
        // Zero copies and empty addresses are refused outright.
        let e =
            parse_args(&v(&["serve", "p.rsl", "--peer", "a:1", "--replicate", "0"])).unwrap_err();
        assert!(e.0.contains("at least 1"), "{e}");
        assert!(parse_args(&v(&["serve", "p.rsl", "--peer", "a:1,,b:2"])).is_err());
        assert!(parse_args(&v(&["serve", "p.rsl", "--peer"])).is_err());
    }

    #[test]
    fn stats_takes_one_address() {
        assert_eq!(
            parse_args(&v(&["stats", "127.0.0.1:1977"]))
                .unwrap()
                .command,
            Command::Stats {
                addr: "127.0.0.1:1977".into()
            }
        );
        assert!(parse_args(&v(&["stats"])).is_err());
        assert!(parse_args(&v(&["stats", "a:1", "b:2"])).is_err());
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        let cli = parse_args(&v(&["tune", "p.rsl", "--jobs", "4", "--", "m"])).unwrap();
        match cli.command {
            Command::Tune { jobs, .. } => assert_eq!(jobs, 4),
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse_args(&v(&["sensitivity", "p.rsl", "--jobs", "2", "--", "m"])).unwrap();
        match cli.command {
            Command::Sensitivity { jobs, .. } => assert_eq!(jobs, 2),
            other => panic!("wrong command {other:?}"),
        }
        // Defaults to sequential.
        let cli = parse_args(&v(&["tune", "p.rsl", "--", "m"])).unwrap();
        match cli.command {
            Command::Tune { jobs, .. } => assert_eq!(jobs, 1),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&v(&["tune", "p.rsl", "--jobs", "0", "--", "m"])).is_err());
        assert!(parse_args(&v(&["sensitivity", "p.rsl", "--jobs", "x", "--", "m"])).is_err());
        // The remote daemon proposes one configuration at a time.
        assert!(parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--jobs", "4", "--", "m"
        ]))
        .is_err());
    }

    #[test]
    fn engine_flag_validates_against_the_registry() {
        let cli = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--engine",
            "divide-diverge",
            "--",
            "m",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune { engine, .. } => assert_eq!(engine.as_deref(), Some("divide-diverge")),
            other => panic!("wrong command {other:?}"),
        }
        // A typo fails up front, listing what actually exists.
        let e = parse_args(&v(&["tune", "p.rsl", "--engine", "annealing", "--", "m"])).unwrap_err();
        assert!(e.0.contains("unknown engine \"annealing\""), "{e}");
        for name in harmony_engines::ENGINE_NAMES {
            assert!(e.0.contains(name), "{e}");
        }
        // With --remote the name rides in the SessionStart and the daemon
        // builds the engine server-side.
        let cli = parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--engine", "tuneful", "--", "m",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune { engine, remote, .. } => {
                assert_eq!(engine.as_deref(), Some("tuneful"));
                assert_eq!(remote.as_deref(), Some("h:1"));
            }
            other => panic!("wrong command {other:?}"),
        }
        // --original is a simplex-only knob.
        let e = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--original",
            "--engine",
            "tuneful",
            "--",
            "m",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--original"), "{e}");
        assert!(parse_args(&v(&[
            "tune",
            "p.rsl",
            "--original",
            "--engine",
            "simplex",
            "--",
            "m",
        ]))
        .is_ok());
    }

    #[test]
    fn tournament_defaults_and_flags() {
        let cli = parse_args(&v(&["tournament"])).unwrap();
        assert_eq!(
            cli.command,
            Command::Tournament {
                budget: 120,
                candidates: 4,
                seed: 42,
                jobs: 1,
                mixes: v(&["browsing", "shopping", "ordering"]),
                out: "results/engines_leaderboard.txt".into(),
            }
        );

        let cli = parse_args(&v(&[
            "tournament",
            "--budget",
            "30",
            "--candidates",
            "2",
            "--seed",
            "7",
            "--jobs",
            "4",
            "--mixes",
            "shopping, ordering",
            "--out",
            "lb.txt",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Tournament {
                budget: 30,
                candidates: 2,
                seed: 7,
                jobs: 4,
                mixes: v(&["shopping", "ordering"]),
                out: "lb.txt".into(),
            }
        );

        assert!(parse_args(&v(&["tournament", "--budget", "0"])).is_err());
        assert!(parse_args(&v(&["tournament", "--candidates", "0"])).is_err());
        assert!(parse_args(&v(&["tournament", "--jobs", "0"])).is_err());
        let e = parse_args(&v(&["tournament", "--mixes", "browsing,gaming"])).unwrap_err();
        assert!(e.0.contains("unknown mix \"gaming\""), "{e}");
        assert!(parse_args(&v(&["tournament", "--frob"])).is_err());
    }

    #[test]
    fn bad_values_error_cleanly() {
        assert!(parse_args(&v(&["tune", "p.rsl", "--iterations", "many", "--", "m"])).is_err());
        assert!(parse_args(&v(&[
            "tune",
            "p.rsl",
            "--characteristics",
            "a,b",
            "--",
            "m"
        ]))
        .is_err());
        assert!(parse_args(&v(&["frobnicate"])).is_err());
    }
}
