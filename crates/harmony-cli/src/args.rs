//! Hand-rolled argument parsing (no external dependencies).

use std::fmt;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The selected subcommand.
    pub command: Command,
}

/// Subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Inspect an RSL document: parameters, sizes, restrictions.
    Space {
        /// Path to the RSL file.
        rsl: String,
    },
    /// Run the parameter prioritizing tool against a measurement command.
    Sensitivity {
        /// Path to the RSL file.
        rsl: String,
        /// Cap on sampled values per parameter.
        samples: Option<usize>,
        /// Measurements averaged per value.
        repeats: usize,
        /// Worker threads measuring concurrently (1 = sequential).
        jobs: usize,
        /// The external measurement command and its arguments.
        measure: Vec<String>,
    },
    /// Tune against a measurement command.
    Tune {
        /// Path to the RSL file.
        rsl: String,
        /// Live iteration budget.
        iterations: usize,
        /// Use the original extreme-corner initial simplex instead of the
        /// improved evenly-spread one.
        original: bool,
        /// Experience-database path (loaded if present, updated after).
        db: Option<String>,
        /// Label recorded for this run in the database.
        label: String,
        /// Workload characteristics for classification, comma-separated.
        characteristics: Vec<f64>,
        /// Drive a remote tuning daemon at this address instead of the
        /// in-process kernel.
        remote: Option<String>,
        /// Retries per request against the remote daemon (needs --remote).
        retry: Option<u32>,
        /// Per-request deadline in milliseconds (needs --remote).
        deadline_ms: Option<u64>,
        /// Worker threads measuring concurrently (1 = sequential).
        jobs: usize,
        /// The external measurement command and its arguments.
        measure: Vec<String>,
    },
    /// Run the tuning daemon.
    Serve {
        /// Path to the RSL file describing the space the daemon serves.
        rsl: String,
        /// Experience-database snapshot path, persisted across restarts.
        db: Option<String>,
        /// Write-ahead journal path (defaults to the db path + ".wal").
        wal: Option<String>,
        /// Fold journal into snapshot after this many appends.
        compact_every: Option<usize>,
        /// Address to bind.
        listen: String,
        /// Default live-iteration budget for sessions.
        iterations: Option<usize>,
        /// Concurrent-connection cap.
        max_connections: Option<usize>,
        /// Append structured JSONL events to this file.
        log_json: Option<String>,
    },
    /// Fetch live metrics from a running daemon.
    Stats {
        /// Daemon address (`host:port`).
        addr: String,
    },
    /// Inspect an experience database.
    Db {
        /// Path to the JSON database.
        path: String,
    },
    /// Print usage.
    Help,
}

/// Argument errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
harmony-cli — Active Harmony automated tuning

USAGE:
  harmony-cli space <params.rsl>
  harmony-cli sensitivity <params.rsl> [--samples N] [--repeats R] [--jobs N]
              -- <measure-cmd> [args…]
  harmony-cli tune <params.rsl> [--iterations N] [--original] [--jobs N]
              [--db <experience.json>] [--label <name>]
              [--characteristics a,b,c] [--remote <host:port>]
              [--retry N] [--deadline MS]
              -- <measure-cmd> [args…]
  harmony-cli serve <params.rsl> [--listen <host:port>] [--db <experience.json>]
              [--wal <journal.wal>] [--compact-every N]
              [--iterations N] [--max-connections N] [--log-json <events.jsonl>]
  harmony-cli stats <host:port>
  harmony-cli db <experience.json>

The measure command is executed once per exploration with one environment
variable per parameter (HARMONY_<NAME>=<value>); its last non-empty stdout
line must be the performance (higher is better).

--jobs N measures up to N configurations concurrently (each as its own
process) and memoizes results per exact configuration, so revisited points
are answered from the in-memory cache instead of re-measured. Results are
identical to a sequential run for a deterministic measure command; under
measurement noise the cache pins each configuration to its first sample.

With --remote, the configurations come from a tuning daemon (see 'serve')
instead of the in-process kernel: the daemon classifies the session against
its shared experience database and records the finished run back into it.
--db and --original are daemon-side decisions and cannot be combined with
--remote. --retry N retries each failed-but-retryable request up to N times
with jittered backoff, reconnecting and resuming the session in place;
--deadline MS bounds each request's response time (expiry counts as
retryable). 'serve' listens until stdin reaches end-of-file or the process
receives SIGTERM/SIGINT, then drains: new work is refused with a retryable
answer, unfinished sessions are parked to disk next to the database, and
the journal is flushed before exit. --log-json appends
one structured JSON event per line (session starts, records, persistence
failures) to the given file. 'stats' prints the daemon's live metrics in
Prometheus text exposition format.

With --db, completed runs are journaled to a write-ahead log (one JSON line
per run, --wal overrides its location) and folded into the snapshot file
every --compact-every appends (default 64) and at shutdown. A crash between
compactions loses nothing: on restart the daemon replays the journal on top
of the snapshot, tolerating at most one torn final line.";

/// Parse a full argument vector (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Cli, CliError> {
    let mut it = args.iter().peekable();
    let sub = match it.next() {
        None => {
            return Ok(Cli {
                command: Command::Help,
            })
        }
        Some(s) => s.as_str(),
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Cli {
            command: Command::Help,
        }),
        "space" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("space: missing RSL file"))?
                .clone();
            expect_end(&mut it, "space")?;
            Ok(Cli {
                command: Command::Space { rsl },
            })
        }
        "db" => {
            let path = it
                .next()
                .ok_or_else(|| err("db: missing database path"))?
                .clone();
            expect_end(&mut it, "db")?;
            Ok(Cli {
                command: Command::Db { path },
            })
        }
        "sensitivity" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("sensitivity: missing RSL file"))?
                .clone();
            let mut samples = None;
            let mut repeats = 1usize;
            let mut jobs = 1usize;
            let mut measure = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--samples" => samples = Some(parse_value(&mut it, "--samples")?),
                    "--repeats" => repeats = parse_value(&mut it, "--repeats")?,
                    "--jobs" => jobs = parse_jobs(&mut it)?,
                    "--" => {
                        measure = it.cloned().collect();
                        break;
                    }
                    other => {
                        return Err(err(format!("sensitivity: unexpected argument {other:?}")))
                    }
                }
            }
            if measure.is_empty() {
                return Err(err("sensitivity: missing '-- <measure-cmd>'"));
            }
            Ok(Cli {
                command: Command::Sensitivity {
                    rsl,
                    samples,
                    repeats,
                    jobs,
                    measure,
                },
            })
        }
        "tune" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("tune: missing RSL file"))?
                .clone();
            let mut iterations = 100usize;
            let mut original = false;
            let mut db = None;
            let mut label = "run".to_string();
            let mut characteristics = Vec::new();
            let mut remote = None;
            let mut retry = None;
            let mut deadline_ms = None;
            let mut jobs = 1usize;
            let mut measure = Vec::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--iterations" => iterations = parse_value(&mut it, "--iterations")?,
                    "--original" => original = true,
                    "--jobs" => jobs = parse_jobs(&mut it)?,
                    "--db" => db = Some(next_str(&mut it, "--db")?),
                    "--remote" => remote = Some(next_str(&mut it, "--remote")?),
                    "--retry" => retry = Some(parse_value(&mut it, "--retry")?),
                    "--deadline" => {
                        let ms: u64 = parse_value(&mut it, "--deadline")?;
                        if ms == 0 {
                            return Err(err("--deadline: must be at least 1 millisecond"));
                        }
                        deadline_ms = Some(ms);
                    }
                    "--label" => label = next_str(&mut it, "--label")?,
                    "--characteristics" => {
                        let raw = next_str(&mut it, "--characteristics")?;
                        characteristics = raw
                            .split(',')
                            .map(|s| {
                                s.trim().parse::<f64>().map_err(|_| {
                                    err(format!("--characteristics: bad number {s:?}"))
                                })
                            })
                            .collect::<Result<Vec<f64>, CliError>>()?;
                    }
                    "--" => {
                        measure = it.cloned().collect();
                        break;
                    }
                    other => return Err(err(format!("tune: unexpected argument {other:?}"))),
                }
            }
            if measure.is_empty() {
                return Err(err("tune: missing '-- <measure-cmd>'"));
            }
            if remote.is_some() && (db.is_some() || original) {
                return Err(err(
                    "tune: --remote cannot be combined with --db or --original \
                     (the daemon owns the experience database and search strategy)",
                ));
            }
            if remote.is_some() && jobs > 1 {
                return Err(err("tune: --jobs applies to local tuning only \
                     (a remote daemon proposes configurations one at a time)"));
            }
            if remote.is_none() && (retry.is_some() || deadline_ms.is_some()) {
                return Err(err(
                    "tune: --retry and --deadline apply to --remote tuning only",
                ));
            }
            Ok(Cli {
                command: Command::Tune {
                    rsl,
                    iterations,
                    original,
                    db,
                    label,
                    characteristics,
                    remote,
                    retry,
                    deadline_ms,
                    jobs,
                    measure,
                },
            })
        }
        "serve" => {
            let rsl = it
                .next()
                .ok_or_else(|| err("serve: missing RSL file"))?
                .clone();
            let mut db = None;
            let mut wal = None;
            let mut compact_every = None;
            let mut listen = "127.0.0.1:1977".to_string();
            let mut iterations = None;
            let mut max_connections = None;
            let mut log_json = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--db" => db = Some(next_str(&mut it, "--db")?),
                    "--wal" => wal = Some(next_str(&mut it, "--wal")?),
                    "--compact-every" => {
                        compact_every = Some(parse_value(&mut it, "--compact-every")?)
                    }
                    "--listen" => listen = next_str(&mut it, "--listen")?,
                    "--iterations" => iterations = Some(parse_value(&mut it, "--iterations")?),
                    "--max-connections" => {
                        max_connections = Some(parse_value(&mut it, "--max-connections")?)
                    }
                    "--log-json" => log_json = Some(next_str(&mut it, "--log-json")?),
                    other => return Err(err(format!("serve: unexpected argument {other:?}"))),
                }
            }
            if db.is_none() && (wal.is_some() || compact_every.is_some()) {
                return Err(err(
                    "serve: --wal and --compact-every need --db (nothing persists without it)",
                ));
            }
            Ok(Cli {
                command: Command::Serve {
                    rsl,
                    db,
                    wal,
                    compact_every,
                    listen,
                    iterations,
                    max_connections,
                    log_json,
                },
            })
        }
        "stats" => {
            let addr = it
                .next()
                .ok_or_else(|| err("stats: missing daemon address"))?
                .clone();
            expect_end(&mut it, "stats")?;
            Ok(Cli {
                command: Command::Stats { addr },
            })
        }
        other => Err(err(format!(
            "unknown subcommand {other:?} (try 'harmony-cli help')"
        ))),
    }
}

fn parse_jobs<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
) -> Result<usize, CliError> {
    let jobs: usize = parse_value(it, "--jobs")?;
    if jobs == 0 {
        return Err(err("--jobs: must be at least 1"));
    }
    Ok(jobs)
}

fn next_str<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| err(format!("{flag}: missing value")))
}

fn parse_value<'a, T: std::str::FromStr>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    flag: &str,
) -> Result<T, CliError> {
    let raw = next_str(it, flag)?;
    raw.parse::<T>()
        .map_err(|_| err(format!("{flag}: invalid value {raw:?}")))
}

fn expect_end<'a>(
    it: &mut std::iter::Peekable<impl Iterator<Item = &'a String>>,
    sub: &str,
) -> Result<(), CliError> {
    match it.next() {
        None => Ok(()),
        Some(extra) => Err(err(format!("{sub}: unexpected argument {extra:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap().command, Command::Help);
        assert_eq!(parse_args(&v(&["--help"])).unwrap().command, Command::Help);
    }

    #[test]
    fn space_and_db() {
        assert_eq!(
            parse_args(&v(&["space", "p.rsl"])).unwrap().command,
            Command::Space {
                rsl: "p.rsl".into()
            }
        );
        assert_eq!(
            parse_args(&v(&["db", "e.json"])).unwrap().command,
            Command::Db {
                path: "e.json".into()
            }
        );
        assert!(parse_args(&v(&["space"])).is_err());
        assert!(parse_args(&v(&["space", "a", "b"])).is_err());
    }

    #[test]
    fn sensitivity_full() {
        let cli = parse_args(&v(&[
            "sensitivity",
            "p.rsl",
            "--samples",
            "8",
            "--repeats",
            "3",
            "--",
            "./m.sh",
            "arg",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Sensitivity {
                rsl: "p.rsl".into(),
                samples: Some(8),
                repeats: 3,
                jobs: 1,
                measure: v(&["./m.sh", "arg"]),
            }
        );
    }

    #[test]
    fn sensitivity_requires_measure_command() {
        assert!(parse_args(&v(&["sensitivity", "p.rsl"])).is_err());
        assert!(parse_args(&v(&["sensitivity", "p.rsl", "--"])).is_err());
    }

    #[test]
    fn tune_defaults_and_flags() {
        let cli = parse_args(&v(&["tune", "p.rsl", "--", "./m.sh"])).unwrap();
        match cli.command {
            Command::Tune {
                iterations,
                original,
                db,
                label,
                characteristics,
                ..
            } => {
                assert_eq!(iterations, 100);
                assert!(!original);
                assert!(db.is_none());
                assert_eq!(label, "run");
                assert!(characteristics.is_empty());
            }
            other => panic!("wrong command {other:?}"),
        }

        let cli = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--iterations",
            "42",
            "--original",
            "--db",
            "e.json",
            "--label",
            "night",
            "--characteristics",
            "0.2, 0.8",
            "--",
            "./m.sh",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune {
                iterations,
                original,
                db,
                label,
                characteristics,
                ..
            } => {
                assert_eq!(iterations, 42);
                assert!(original);
                assert_eq!(db.as_deref(), Some("e.json"));
                assert_eq!(label, "night");
                assert_eq!(characteristics, vec![0.2, 0.8]);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn tune_remote() {
        let cli = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "10.0.0.7:1977",
            "--label",
            "apu",
            "--",
            "./m.sh",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune { remote, label, .. } => {
                assert_eq!(remote.as_deref(), Some("10.0.0.7:1977"));
                assert_eq!(label, "apu");
            }
            other => panic!("wrong command {other:?}"),
        }

        // The daemon owns db and strategy; combining is refused.
        assert!(parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--db", "e.json", "--", "m",
        ]))
        .is_err());
        assert!(parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "h:1",
            "--original",
            "--",
            "m"
        ]))
        .is_err());
    }

    #[test]
    fn retry_and_deadline_need_remote() {
        let cli = parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "h:1",
            "--retry",
            "7",
            "--deadline",
            "2500",
            "--",
            "m",
        ]))
        .unwrap();
        match cli.command {
            Command::Tune {
                retry, deadline_ms, ..
            } => {
                assert_eq!(retry, Some(7));
                assert_eq!(deadline_ms, Some(2500));
            }
            other => panic!("wrong command {other:?}"),
        }
        // Defaults: both unset.
        let cli = parse_args(&v(&["tune", "p.rsl", "--remote", "h:1", "--", "m"])).unwrap();
        match cli.command {
            Command::Tune {
                retry, deadline_ms, ..
            } => {
                assert_eq!(retry, None);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Local tuning has no wire to retry.
        assert!(parse_args(&v(&["tune", "p.rsl", "--retry", "3", "--", "m"])).is_err());
        assert!(parse_args(&v(&["tune", "p.rsl", "--deadline", "100", "--", "m"])).is_err());
        // Bad values.
        assert!(parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--retry", "x", "--", "m"
        ]))
        .is_err());
        assert!(parse_args(&v(&[
            "tune",
            "p.rsl",
            "--remote",
            "h:1",
            "--deadline",
            "0",
            "--",
            "m"
        ]))
        .is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cli = parse_args(&v(&["serve", "p.rsl"])).unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                rsl: "p.rsl".into(),
                db: None,
                wal: None,
                compact_every: None,
                listen: "127.0.0.1:1977".into(),
                iterations: None,
                max_connections: None,
                log_json: None,
            }
        );

        let cli = parse_args(&v(&[
            "serve",
            "p.rsl",
            "--listen",
            "0.0.0.0:7007",
            "--db",
            "e.json",
            "--wal",
            "e.wal",
            "--compact-every",
            "16",
            "--iterations",
            "80",
            "--max-connections",
            "4",
            "--log-json",
            "events.jsonl",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve {
                rsl: "p.rsl".into(),
                db: Some("e.json".into()),
                wal: Some("e.wal".into()),
                compact_every: Some(16),
                listen: "0.0.0.0:7007".into(),
                iterations: Some(80),
                max_connections: Some(4),
                log_json: Some("events.jsonl".into()),
            }
        );

        assert!(parse_args(&v(&["serve"])).is_err());
        assert!(parse_args(&v(&["serve", "p.rsl", "--port", "1"])).is_err());
        assert!(parse_args(&v(&["serve", "p.rsl", "--log-json"])).is_err());
    }

    #[test]
    fn serve_wal_flags_need_a_db() {
        assert!(parse_args(&v(&["serve", "p.rsl", "--wal", "e.wal"])).is_err());
        assert!(parse_args(&v(&["serve", "p.rsl", "--compact-every", "8"])).is_err());
        assert!(parse_args(&v(&["serve", "p.rsl", "--compact-every", "x", "--db", "e"])).is_err());
    }

    #[test]
    fn stats_takes_one_address() {
        assert_eq!(
            parse_args(&v(&["stats", "127.0.0.1:1977"]))
                .unwrap()
                .command,
            Command::Stats {
                addr: "127.0.0.1:1977".into()
            }
        );
        assert!(parse_args(&v(&["stats"])).is_err());
        assert!(parse_args(&v(&["stats", "a:1", "b:2"])).is_err());
    }

    #[test]
    fn jobs_flag_parses_and_rejects_zero() {
        let cli = parse_args(&v(&["tune", "p.rsl", "--jobs", "4", "--", "m"])).unwrap();
        match cli.command {
            Command::Tune { jobs, .. } => assert_eq!(jobs, 4),
            other => panic!("wrong command {other:?}"),
        }
        let cli = parse_args(&v(&["sensitivity", "p.rsl", "--jobs", "2", "--", "m"])).unwrap();
        match cli.command {
            Command::Sensitivity { jobs, .. } => assert_eq!(jobs, 2),
            other => panic!("wrong command {other:?}"),
        }
        // Defaults to sequential.
        let cli = parse_args(&v(&["tune", "p.rsl", "--", "m"])).unwrap();
        match cli.command {
            Command::Tune { jobs, .. } => assert_eq!(jobs, 1),
            other => panic!("wrong command {other:?}"),
        }
        assert!(parse_args(&v(&["tune", "p.rsl", "--jobs", "0", "--", "m"])).is_err());
        assert!(parse_args(&v(&["sensitivity", "p.rsl", "--jobs", "x", "--", "m"])).is_err());
        // The remote daemon proposes one configuration at a time.
        assert!(parse_args(&v(&[
            "tune", "p.rsl", "--remote", "h:1", "--jobs", "4", "--", "m"
        ]))
        .is_err());
    }

    #[test]
    fn bad_values_error_cleanly() {
        assert!(parse_args(&v(&["tune", "p.rsl", "--iterations", "many", "--", "m"])).is_err());
        assert!(parse_args(&v(&[
            "tune",
            "p.rsl",
            "--characteristics",
            "a,b",
            "--",
            "m"
        ]))
        .is_err());
        assert!(parse_args(&v(&["frobnicate"])).is_err());
    }
}
