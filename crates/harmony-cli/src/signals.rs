//! Minimal SIGTERM/SIGINT handling without a libc dependency.
//!
//! The daemon wants one bit of information — "the operator asked us to
//! stop" — so a process-global flag set from a signal handler is enough.
//! `std` already links the platform C library; declaring `signal(2)`
//! ourselves avoids pulling in a bindings crate for two constants.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::TERMINATED;
    use std::sync::atomic::Ordering;

    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // Only the async-signal-safe atomic store happens here; the
        // daemon's wait loop notices the flag and does the real work.
        TERMINATED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal story on this platform; stdin end-of-file still stops
    /// the daemon.
    pub fn install() {}
}

/// Route SIGTERM and SIGINT to the termination flag.
pub fn install() {
    imp::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn termination_requested() -> bool {
    TERMINATED.load(Ordering::SeqCst)
}
