//! The data characteristics database.

use crate::history::kmeans::kmeans;
use crate::history::record::RunHistory;
use harmony_linalg::stats::euclidean_sq;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors from persisting the database.
#[derive(Debug)]
pub enum DbError {
    /// Filesystem error.
    Io(io::Error),
    /// Serialization error.
    Serde(serde_json::Error),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "experience db io error: {e}"),
            DbError::Serde(e) => write!(f, "experience db serialization error: {e}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> Self {
        DbError::Io(e)
    }
}

impl From<serde_json::Error> for DbError {
    fn from(e: serde_json::Error) -> Self {
        DbError::Serde(e)
    }
}

/// Accumulated tuning experience: one [`RunHistory`] per prior run, keyed
/// by workload characteristics.
///
/// Classification is the paper's least-squares rule: "the classification
/// algorithm returns j such that Σ_k (c_jk − c_ok)² is the minimum".
///
/// # Examples
///
/// ```
/// use harmony::history::{ExperienceDb, RunHistory};
/// use harmony_space::Configuration;
///
/// let mut db = ExperienceDb::new();
/// let mut run = RunHistory::new("monday", vec![0.8, 0.2]);
/// run.push(&Configuration::new(vec![16, 32]), 88.0);
/// db.add_run(run);
///
/// // Tuesday's traffic looks like Monday's: classification finds it.
/// let (idx, matched) = db.classify(&[0.78, 0.22]).unwrap();
/// assert_eq!(idx, 0);
/// assert_eq!(matched.label, "monday");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperienceDb {
    runs: Vec<RunHistory>,
}

impl ExperienceDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stored runs.
    pub fn runs(&self) -> &[RunHistory] {
        &self.runs
    }

    /// Number of stored runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no experience is stored yet.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Record a finished run ("the tuning results may be treated as a new
    /// experience and used to update the data characteristics database").
    pub fn add_run(&mut self, run: RunHistory) {
        self.runs.push(run);
    }

    /// Least-squares classification of observed characteristics; returns
    /// the index and run minimizing the squared Euclidean distance, or
    /// `None` if the database is empty or no run has matching
    /// dimensionality.
    pub fn classify(&self, observed: &[f64]) -> Option<(usize, &RunHistory)> {
        let _timer = crate::obs::db_classify_seconds().start_timer();
        // One distance per candidate, no allocation: a running minimum
        // over a single pass (the comparator-based version recomputed
        // both distances on every comparison). Ties keep the earliest
        // run, matching `Iterator::min_by`.
        let mut best: Option<(f64, usize)> = None;
        for (i, r) in self.runs.iter().enumerate() {
            if r.characteristics.len() != observed.len() {
                continue;
            }
            let d = euclidean_sq(&r.characteristics, observed);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, i));
            }
        }
        best.map(|(_, i)| (i, &self.runs[i]))
    }

    /// The `k` nearest runs, nearest first (for k-NN style analyzers).
    pub fn nearest_k(&self, observed: &[f64], k: usize) -> Vec<(usize, &RunHistory)> {
        // Each candidate's distance is computed exactly once; the k
        // nearest are then picked with an O(n) partial select and only
        // those k sorted. Ties break by run index — the order the old
        // stable full sort produced.
        let mut by_distance: Vec<(f64, usize)> = self
            .runs
            .iter()
            .enumerate()
            .filter(|(_, r)| r.characteristics.len() == observed.len())
            .map(|(i, r)| (euclidean_sq(&r.characteristics, observed), i))
            .collect();
        let k = k.min(by_distance.len());
        if k == 0 {
            return Vec::new();
        }
        let cmp = |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        if k < by_distance.len() {
            by_distance.select_nth_unstable_by(k - 1, cmp);
            by_distance.truncate(k);
        }
        by_distance.sort_unstable_by(cmp);
        by_distance
            .into_iter()
            .map(|(_, i)| (i, &self.runs[i]))
            .collect()
    }

    /// Compress the database into at most `k` runs by k-means clustering
    /// the characteristic vectors and merging each cluster's records
    /// (Figure 2 lists k-means among the analyzer's clustering
    /// mechanisms). No-op if the database already fits.
    pub fn compress(&mut self, k: usize) {
        if self.runs.len() <= k || k == 0 {
            return;
        }
        let dims = self.runs[0].characteristics.len();
        if self.runs.iter().any(|r| r.characteristics.len() != dims) {
            return; // heterogeneous characteristics: refuse to merge
        }
        let points: Vec<Vec<f64>> = self
            .runs
            .iter()
            .map(|r| r.characteristics.clone())
            .collect();
        let clustering = kmeans(&points, k, 50);
        let mut merged: Vec<RunHistory> = clustering
            .centroids
            .iter()
            .map(|c| RunHistory::new("merged", c.clone()))
            .collect();
        for (run, &cluster) in self.runs.drain(..).zip(&clustering.assignment) {
            let m = &mut merged[cluster];
            if m.label == "merged" {
                m.label = format!("merged:{}", run.label);
            }
            m.records.extend(run.records);
        }
        merged.retain(|r| !r.records.is_empty());
        self.runs = merged;
    }

    /// Train a decision tree mapping characteristics to run indices (for
    /// [`Classifier::DecisionTree`](crate::history::Classifier)). Returns
    /// `None` when the database is empty or characteristics are
    /// heterogeneous in dimension.
    pub fn train_tree(
        &self,
        params: crate::history::TreeParams,
    ) -> Option<crate::history::DecisionTree> {
        if self.runs.is_empty() {
            return None;
        }
        let dims = self.runs[0].characteristics.len();
        if self.runs.iter().any(|r| r.characteristics.len() != dims) {
            return None;
        }
        let samples: Vec<(Vec<f64>, usize)> = self
            .runs
            .iter()
            .enumerate()
            .map(|(i, r)| (r.characteristics.clone(), i))
            .collect();
        Some(crate::history::DecisionTree::fit(&samples, params))
    }

    /// Persist as JSON.
    ///
    /// The write is crash-safe: the JSON goes to a temporary file in the
    /// same directory which is then atomically renamed over `path`, so a
    /// crash mid-write can never leave a truncated database — readers see
    /// either the old contents or the new, complete ones.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DbError> {
        let _timer = crate::obs::db_save_seconds().start_timer();
        let path = path.as_ref();
        let json = serde_json::to_string_pretty(self)?;
        // The temp file must live on the same filesystem as the target
        // for the rename to be atomic, so place it alongside.
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let result = (|| {
            {
                use io::Write as _;
                let mut file = fs::File::create(&tmp)?;
                file.write_all(json.as_bytes())?;
                file.sync_all()?;
            }
            fs::rename(&tmp, path)
        })();
        if result.is_err() {
            fs::remove_file(&tmp).ok();
        } else {
            crate::obs::db_saves_total().inc();
        }
        result.map_err(DbError::Io)
    }

    /// Load from JSON.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DbError> {
        let json = fs::read_to_string(path)?;
        Ok(serde_json::from_str(&json)?)
    }

    /// Build a spatial index over the current contents. The index
    /// answers [`classify`](Self::classify) and
    /// [`nearest_k`](Self::nearest_k) queries bit-identically without a
    /// full scan; it is a snapshot — rebuild after mutating the db.
    pub fn build_index(&self) -> crate::history::CharacteristicsIndex {
        crate::history::CharacteristicsIndex::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::Configuration;

    fn run(label: &str, ch: Vec<f64>, perf: f64) -> RunHistory {
        let mut r = RunHistory::new(label, ch);
        r.push(&Configuration::new(vec![1, 2]), perf);
        r
    }

    #[test]
    fn classify_picks_nearest() {
        let mut db = ExperienceDb::new();
        db.add_run(run("a", vec![0.0, 0.0], 1.0));
        db.add_run(run("b", vec![1.0, 1.0], 2.0));
        db.add_run(run("c", vec![0.4, 0.4], 3.0));
        let (i, r) = db.classify(&[0.45, 0.5]).unwrap();
        assert_eq!(i, 2);
        assert_eq!(r.label, "c");
        assert!(db.classify(&[]).is_none(), "dimension mismatch filtered");
    }

    #[test]
    fn classify_empty_db_is_none() {
        assert!(ExperienceDb::new().classify(&[0.5]).is_none());
    }

    #[test]
    fn nearest_k_is_sorted() {
        let mut db = ExperienceDb::new();
        db.add_run(run("far", vec![9.0], 0.0));
        db.add_run(run("near", vec![1.1], 0.0));
        db.add_run(run("mid", vec![3.0], 0.0));
        let names: Vec<&str> = db
            .nearest_k(&[1.0], 2)
            .iter()
            .map(|(_, r)| r.label.as_str())
            .collect();
        assert_eq!(names, vec!["near", "mid"]);
    }

    #[test]
    fn compress_merges_clusters() {
        let mut db = ExperienceDb::new();
        for i in 0..4 {
            db.add_run(run(&format!("lo{i}"), vec![0.0 + i as f64 * 0.01], 1.0));
            db.add_run(run(&format!("hi{i}"), vec![10.0 + i as f64 * 0.01], 2.0));
        }
        db.compress(2);
        assert_eq!(db.len(), 2);
        // All 8 records survive, 4 per cluster.
        let total: usize = db.runs().iter().map(|r| r.records.len()).sum();
        assert_eq!(total, 8);
        // Centroids near 0.015 and 10.015 (order unspecified).
        let mut cs: Vec<f64> = db.runs().iter().map(|r| r.characteristics[0]).collect();
        cs.sort_by(|a, b| a.total_cmp(b));
        assert!((cs[0] - 0.015).abs() < 0.1);
        assert!((cs[1] - 10.015).abs() < 0.1);
    }

    #[test]
    fn compress_is_noop_when_small() {
        let mut db = ExperienceDb::new();
        db.add_run(run("a", vec![0.0], 1.0));
        let before = db.clone();
        db.compress(5);
        assert_eq!(db, before);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut db = ExperienceDb::new();
        db.add_run(run("persisted", vec![0.25, 0.75], 42.0));
        let dir = std::env::temp_dir().join("harmony-db-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let back = ExperienceDb::load(&path).unwrap();
        assert_eq!(back, db);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join("harmony-db-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.json");

        let mut db = ExperienceDb::new();
        db.add_run(run("first", vec![1.0], 1.0));
        db.save(&path).unwrap();
        db.add_run(run("second", vec![2.0], 2.0));
        db.save(&path).unwrap();

        assert_eq!(ExperienceDb::load(&path).unwrap(), db);
        assert!(
            !dir.join("atomic.json.tmp").exists(),
            "temporary file must not survive a successful save"
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn save_into_missing_directory_errors_cleanly() {
        let db = ExperienceDb::new();
        assert!(matches!(
            db.save("/nonexistent/harmony/db.json"),
            Err(DbError::Io(_))
        ));
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            ExperienceDb::load("/nonexistent/harmony/db.json"),
            Err(DbError::Io(_))
        ));
    }
}
