//! CART-style decision tree over workload characteristics.
//!
//! Figure 2 lists a decision tree (alongside k-means and least-squares)
//! among the data analyzer's classification mechanisms. This is a small,
//! deterministic CART: binary axis-aligned splits chosen by Gini impurity,
//! depth- and leaf-size-limited.

use serde::{Deserialize, Serialize};

/// Training limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_leaf: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained classifier mapping characteristic vectors to class labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    root: Node,
    features: usize,
}

impl DecisionTree {
    /// Fit a tree on `(characteristics, class)` samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or feature vectors are ragged.
    pub fn fit(samples: &[(Vec<f64>, usize)], params: TreeParams) -> Self {
        assert!(!samples.is_empty(), "DecisionTree: no training samples");
        let features = samples[0].0.len();
        assert!(
            samples.iter().all(|(x, _)| x.len() == features),
            "DecisionTree: ragged feature vectors"
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let root = build(samples, &idx, features, params, 0);
        DecisionTree { root, features }
    }

    /// Number of input features.
    pub fn features(&self) -> usize {
        self.features
    }

    /// Predict the class of one characteristic vector.
    ///
    /// # Panics
    /// Panics on a feature-count mismatch.
    pub fn predict(&self, x: &[f64]) -> usize {
        assert_eq!(
            x.len(),
            self.features,
            "DecisionTree: feature count mismatch"
        );
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Tree depth (leaf-only tree has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        fn l(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => l(left) + l(right),
            }
        }
        l(&self.root)
    }
}

/// Majority class of a sample subset (smallest label wins ties, for
/// determinism).
fn majority(samples: &[(Vec<f64>, usize)], idx: &[usize]) -> usize {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for &i in idx {
        *counts.entry(samples[i].1).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .expect("non-empty subset")
        .0
}

/// Gini impurity of a subset.
fn gini(samples: &[(Vec<f64>, usize)], idx: &[usize]) -> f64 {
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    for &i in idx {
        *counts.entry(samples[i].1).or_default() += 1;
    }
    let n = idx.len() as f64;
    1.0 - counts
        .values()
        .map(|&c| (c as f64 / n).powi(2))
        .sum::<f64>()
}

fn build(
    samples: &[(Vec<f64>, usize)],
    idx: &[usize],
    features: usize,
    params: TreeParams,
    depth: usize,
) -> Node {
    let pure = idx.iter().all(|&i| samples[i].1 == samples[idx[0]].1);
    if pure || depth >= params.max_depth || idx.len() < 2 * params.min_leaf {
        return Node::Leaf {
            class: majority(samples, idx),
        };
    }

    // Best axis-aligned split by weighted Gini.
    let parent_gini = gini(samples, idx);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for f in 0..features {
        let mut values: Vec<f64> = idx.iter().map(|&i| samples[i].0[f]).collect();
        values.sort_by(|a, b| a.total_cmp(b));
        values.dedup();
        for w in values.windows(2) {
            let threshold = (w[0] + w[1]) / 2.0;
            let (left, right): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| samples[i].0[f] <= threshold);
            if left.len() < params.min_leaf || right.len() < params.min_leaf {
                continue;
            }
            let n = idx.len() as f64;
            let weighted = gini(samples, &left) * left.len() as f64 / n
                + gini(samples, &right) * right.len() as f64 / n;
            let gain = parent_gini - weighted;
            if best.is_none_or(|(g, _, _)| gain > g + 1e-12) {
                best = Some((gain, f, threshold));
            }
        }
    }

    // Accept the best split even at zero gain: the node is known impure
    // (pure nodes returned above), and XOR-like targets only become
    // separable after a gain-free first cut. Depth/leaf limits bound the
    // recursion.
    match best {
        Some((gain, feature, threshold)) if gain > -1e-12 => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                .iter()
                .partition(|&&i| samples[i].0[feature] <= threshold);
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(samples, &left_idx, features, params, depth + 1)),
                right: Box::new(build(samples, &right_idx, features, params, depth + 1)),
            }
        }
        _ => Node::Leaf {
            class: majority(samples, idx),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> Vec<(Vec<f64>, usize)> {
        vec![
            (vec![0.0, 0.0], 0),
            (vec![0.0, 1.0], 1),
            (vec![1.0, 0.0], 1),
            (vec![1.0, 1.0], 0),
        ]
    }

    #[test]
    fn fits_separable_data_perfectly() {
        let data = vec![
            (vec![0.1, 0.2], 0),
            (vec![0.2, 0.1], 0),
            (vec![0.9, 0.8], 1),
            (vec![0.8, 0.95], 1),
        ];
        let tree = DecisionTree::fit(&data, TreeParams::default());
        for (x, y) in &data {
            assert_eq!(tree.predict(x), *y);
        }
        assert_eq!(tree.predict(&[0.0, 0.0]), 0);
        assert_eq!(tree.predict(&[1.0, 1.0]), 1);
    }

    #[test]
    fn solves_xor_with_enough_depth() {
        let tree = DecisionTree::fit(
            &xor_data(),
            TreeParams {
                max_depth: 3,
                min_leaf: 1,
            },
        );
        for (x, y) in xor_data() {
            assert_eq!(tree.predict(&x), y, "at {x:?}");
        }
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn depth_limit_is_respected() {
        let tree = DecisionTree::fit(
            &xor_data(),
            TreeParams {
                max_depth: 1,
                min_leaf: 1,
            },
        );
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn min_leaf_prevents_overfitting_splits() {
        let tree = DecisionTree::fit(
            &xor_data(),
            TreeParams {
                max_depth: 10,
                min_leaf: 3,
            },
        );
        // No split can give both sides >= 3 of 4 samples.
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.leaves(), 1);
    }

    #[test]
    fn multiclass_classification() {
        let data: Vec<(Vec<f64>, usize)> = (0..30)
            .map(|i| {
                let c = i % 3;
                (vec![c as f64 + (i as f64 % 7.0) * 0.01], c)
            })
            .collect();
        let tree = DecisionTree::fit(&data, TreeParams::default());
        assert_eq!(tree.predict(&[0.02]), 0);
        assert_eq!(tree.predict(&[1.03]), 1);
        assert_eq!(tree.predict(&[2.01]), 2);
    }

    #[test]
    fn deterministic_training() {
        let data = xor_data();
        let a = DecisionTree::fit(&data, TreeParams::default());
        let b = DecisionTree::fit(&data, TreeParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn single_sample_tree_is_a_leaf() {
        let tree = DecisionTree::fit(&[(vec![1.0, 2.0, 3.0], 7)], TreeParams::default());
        assert_eq!(tree.depth(), 0);
        assert_eq!(tree.predict(&[9.0, 9.0, 9.0]), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let tree = DecisionTree::fit(&xor_data(), TreeParams::default());
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    #[should_panic(expected = "no training samples")]
    fn empty_training_panics() {
        let _ = DecisionTree::fit(&[], TreeParams::default());
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_wrong_arity_panics() {
        let tree = DecisionTree::fit(&[(vec![1.0], 0)], TreeParams::default());
        let _ = tree.predict(&[1.0, 2.0]);
    }
}
