//! The data analyzer (§4.2, Figure 2).
//!
//! "When the input data is fed into the system, the data analyzer will
//! first examine or observe a small number of sample requests to probe the
//! characteristics of the input data. … the data analyzer then applies a
//! machine learning clustering approach … In the current implementation,
//! we use least square error as the classification mechanism. Other
//! classification mechanisms can easily be substituted."

use crate::history::db::ExperienceDb;
use crate::history::index::CharacteristicsIndex;
use crate::history::record::RunHistory;
use crate::history::tree::DecisionTree;

/// Pluggable classification mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum Classifier {
    /// The paper's default: nearest stored run by squared Euclidean
    /// distance of characteristic vectors.
    LeastSquares,
    /// k-nearest runs, their records merged — more robust when several
    /// prior workloads are about equally close.
    KNearest(usize),
    /// A trained decision tree (Figure 2's "Decision Tree" mechanism)
    /// whose predicted class is a run index in the database — typically
    /// produced by [`ExperienceDb::train_tree`].
    DecisionTree(DecisionTree),
}

/// The analyzer: probes characteristics upstream (callers supply the
/// observed vector), classifies against the database, and hands the tuner
/// the experience to train with.
#[derive(Debug, Clone)]
pub struct DataAnalyzer {
    classifier: Classifier,
    /// A match farther than this (Euclidean distance in characteristic
    /// space) is treated as "never seen before": the paper then falls back
    /// to "the default tuning mechanism (i.e., no training stage)".
    max_match_distance: f64,
}

impl Default for DataAnalyzer {
    fn default() -> Self {
        DataAnalyzer {
            classifier: Classifier::LeastSquares,
            max_match_distance: f64::INFINITY,
        }
    }
}

impl DataAnalyzer {
    /// Analyzer with the paper's least-squares classifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Substitute the classification mechanism.
    pub fn with_classifier(mut self, c: Classifier) -> Self {
        self.classifier = c;
        self
    }

    /// Reject matches farther than `d` (characteristic-space Euclidean
    /// distance).
    pub fn with_max_match_distance(mut self, d: f64) -> Self {
        assert!(d >= 0.0, "distance threshold must be non-negative");
        self.max_match_distance = d;
        self
    }

    /// Select the experience to train from, or `None` when the workload is
    /// effectively new.
    pub fn select(&self, db: &ExperienceDb, observed: &[f64]) -> Option<RunHistory> {
        self.select_with(db, None, observed)
    }

    /// [`select`](Self::select) with an optional prebuilt
    /// [`CharacteristicsIndex`] over `db`'s current contents. With an
    /// index the distance-based classifiers answer from the k-d
    /// partition instead of scanning every run; results are
    /// bit-identical either way, so callers may pass `None` freely (the
    /// daemon passes its per-snapshot index).
    pub fn select_with(
        &self,
        db: &ExperienceDb,
        index: Option<&CharacteristicsIndex>,
        observed: &[f64],
    ) -> Option<RunHistory> {
        match &self.classifier {
            Classifier::DecisionTree(tree) => {
                if tree.features() != observed.len() {
                    return None;
                }
                let idx = tree.predict(observed);
                let run = db.runs().get(idx)?;
                self.within(observed, run).then(|| run.clone())
            }
            Classifier::LeastSquares => {
                let (_, run) = match index {
                    Some(ix) => ix.classify(db, observed)?,
                    None => db.classify(observed)?,
                };
                self.within(observed, run).then(|| run.clone())
            }
            Classifier::KNearest(k) => {
                let near = match index {
                    Some(ix) => ix.nearest_k(db, observed, (*k).max(1)),
                    None => db.nearest_k(observed, (*k).max(1)),
                };
                let within: Vec<&RunHistory> = near
                    .into_iter()
                    .map(|(_, r)| r)
                    .filter(|r| self.within(observed, r))
                    .collect();
                if within.is_empty() {
                    return None;
                }
                let mut merged = RunHistory::new(
                    format!(
                        "knn:{}",
                        within
                            .iter()
                            .map(|r| r.label.as_str())
                            .collect::<Vec<_>>()
                            .join("+")
                    ),
                    observed.to_vec(),
                );
                for r in within {
                    merged.records.extend(r.records.iter().cloned());
                }
                Some(merged)
            }
        }
    }

    fn within(&self, observed: &[f64], run: &RunHistory) -> bool {
        harmony_linalg::stats::euclidean(&run.characteristics, observed) <= self.max_match_distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::Configuration;

    fn db() -> ExperienceDb {
        let mut db = ExperienceDb::new();
        let mut a = RunHistory::new("a", vec![0.0, 0.0]);
        a.push(&Configuration::new(vec![1]), 10.0);
        let mut b = RunHistory::new("b", vec![1.0, 0.0]);
        b.push(&Configuration::new(vec![2]), 20.0);
        let mut c = RunHistory::new("c", vec![0.0, 1.0]);
        c.push(&Configuration::new(vec![3]), 30.0);
        db.add_run(a);
        db.add_run(b);
        db.add_run(c);
        db
    }

    #[test]
    fn least_squares_selects_nearest() {
        let an = DataAnalyzer::new();
        let sel = an.select(&db(), &[0.9, 0.1]).unwrap();
        assert_eq!(sel.label, "b");
    }

    #[test]
    fn distance_gate_rejects_far_matches() {
        let an = DataAnalyzer::new().with_max_match_distance(0.2);
        assert!(
            an.select(&db(), &[0.5, 0.5]).is_none(),
            "all runs are ~0.7 away"
        );
        assert!(an.select(&db(), &[0.05, 0.05]).is_some());
    }

    #[test]
    fn knn_merges_records() {
        let an = DataAnalyzer::new().with_classifier(Classifier::KNearest(2));
        let sel = an.select(&db(), &[0.4, 0.4]).unwrap();
        assert_eq!(sel.records.len(), 2, "two nearest runs merged");
        assert!(sel.label.starts_with("knn:"));
        assert_eq!(sel.characteristics, vec![0.4, 0.4]);
    }

    #[test]
    fn knn_respects_distance_gate() {
        let an = DataAnalyzer::new()
            .with_classifier(Classifier::KNearest(3))
            .with_max_match_distance(0.5);
        // Only run "a" is within 0.5 of the origin-ish observation.
        let sel = an.select(&db(), &[0.1, 0.1]).unwrap();
        assert_eq!(sel.records.len(), 1);
    }

    #[test]
    fn select_with_index_matches_unindexed_select() {
        let database = db();
        let index = database.build_index();
        for classifier in [Classifier::LeastSquares, Classifier::KNearest(2)] {
            let an = DataAnalyzer::new().with_classifier(classifier);
            for observed in [&[0.9, 0.1][..], &[0.4, 0.4], &[0.05, 0.05], &[0.5]] {
                assert_eq!(
                    an.select_with(&database, Some(&index), observed),
                    an.select(&database, observed),
                    "at {observed:?}"
                );
            }
        }
    }

    #[test]
    fn empty_db_yields_none() {
        let an = DataAnalyzer::new();
        assert!(an.select(&ExperienceDb::new(), &[0.1]).is_none());
    }

    #[test]
    fn decision_tree_classifier_selects_runs() {
        let database = db();
        let tree = database
            .train_tree(crate::history::TreeParams::default())
            .expect("trainable");
        let an = DataAnalyzer::new().with_classifier(Classifier::DecisionTree(tree));
        // The tree memorizes the three stored characteristic vectors.
        let sel = an.select(&database, &[1.0, 0.0]).unwrap();
        assert_eq!(sel.label, "b");
        let sel = an.select(&database, &[0.0, 1.0]).unwrap();
        assert_eq!(sel.label, "c");
        // Wrong arity: treated as unclassifiable.
        assert!(an.select(&database, &[0.5]).is_none());
    }

    #[test]
    fn decision_tree_respects_the_distance_gate() {
        let database = db();
        let tree = database
            .train_tree(crate::history::TreeParams::default())
            .expect("trainable");
        let an = DataAnalyzer::new()
            .with_classifier(Classifier::DecisionTree(tree))
            .with_max_match_distance(0.1);
        // The tree will pick *some* run for a far-away observation, but
        // the gate rejects it.
        assert!(an.select(&database, &[5.0, 5.0]).is_none());
    }

    #[test]
    fn train_tree_empty_db_is_none() {
        assert!(ExperienceDb::new()
            .train_tree(crate::history::TreeParams::default())
            .is_none());
    }
}
