//! Historical data: the experience database and the data analyzer (§4.2).
//!
//! "During the tuning process, Active Harmony will keep a record of all
//! the parameter values together with the associated performance results.
//! … The tuning experience with associated input request characteristics
//! will be accumulated in the database for future reference."

mod analyzer;
mod db;
mod index;
mod kmeans;
mod record;
mod tree;
pub mod wal;

pub use analyzer::{Classifier, DataAnalyzer};
pub use db::{DbError, ExperienceDb};
pub use index::CharacteristicsIndex;
pub use kmeans::kmeans;
pub use record::{RunHistory, TuningRecord};
pub use tree::{DecisionTree, TreeParams};
