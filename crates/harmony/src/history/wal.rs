//! Write-ahead journal for the experience database.
//!
//! Whole-file JSON snapshots (see [`ExperienceDb::save`]) are crash-safe
//! but O(database) per completed run — too slow for a daemon recording
//! experience under load. The journal makes recording O(run): each
//! finished [`RunHistory`] is appended as one compact JSON line, and the
//! snapshot is only rewritten at *compaction* time, after many appends.
//!
//! Format: one serialized [`RunHistory`] per `\n`-terminated line.
//! Durability model: a run is durable once its line is flushed; a crash
//! mid-append can leave at most one truncated final line, which
//! [`replay`] tolerates (a torn or unparseable *last* line is dropped,
//! matching what an interrupted `write` can physically produce; garbage
//! earlier in the journal is a real error and refuses to load).
//!
//! Recovery is `load_with_wal(snapshot, journal)`: the snapshot provides
//! the compacted prefix, the journal the suffix of runs recorded since.

use crate::history::db::{DbError, ExperienceDb};
use crate::history::record::RunHistory;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Appends runs to a journal file, one JSON line per run.
///
/// The file handle stays open across appends; every append ends with a
/// `flush` so the line reaches the OS before the writer moves on. Use
/// [`WalWriter::sync`] (or let a batch boundary call it) for an `fsync`
/// that survives power loss.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: fs::File,
    /// Lines appended since the journal was opened or last truncated.
    appended: usize,
}

impl WalWriter {
    /// Open (creating or appending to) the journal at `path`.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, DbError> {
        let path = path.into();
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(WalWriter {
            path,
            file,
            appended: 0,
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Lines appended through this writer since open or last truncation.
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Append one run as a single JSON line and flush it to the OS.
    pub fn append_run(&mut self, run: &RunHistory) -> Result<(), DbError> {
        let _timer = crate::obs::wal_flush_seconds().start_timer();
        let mut line = serde_json::to_vec(run)?;
        line.push(b'\n');
        // One write call per line: concurrent readers (and a crash) see
        // whole lines plus at most one torn tail, never interleaving.
        self.file.write_all(&line)?;
        self.file.flush()?;
        self.appended += 1;
        crate::obs::wal_appends_total().inc();
        Ok(())
    }

    /// `fsync` the journal file.
    pub fn sync(&self) -> Result<(), DbError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Truncate the journal after its contents were folded into a
    /// snapshot. The file handle is reopened so subsequent appends start
    /// at offset zero.
    pub fn truncate(&mut self) -> Result<(), DbError> {
        self.file = fs::OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        // Back to append mode for subsequent writes.
        self.file = fs::OpenOptions::new().append(true).open(&self.path)?;
        self.appended = 0;
        Ok(())
    }
}

/// Replay a journal into a list of runs, oldest first.
///
/// A missing file is an empty journal. A truncated or corrupt *final*
/// line (the signature of a crash mid-append) is ignored; corruption
/// anywhere else is a [`DbError`], because it means the journal was
/// damaged rather than merely interrupted.
pub fn replay(path: impl AsRef<Path>) -> Result<Vec<RunHistory>, DbError> {
    let text = match fs::read_to_string(path.as_ref()) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(DbError::Io(e)),
    };
    let mut runs = Vec::new();
    let lines: Vec<&str> = text.split('\n').collect();
    for (i, line) in lines.iter().enumerate() {
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<RunHistory>(line) {
            Ok(run) => runs.push(run),
            // Only the final non-empty chunk may be torn. (If the last
            // line is '\n'-terminated, `split` yields a trailing empty
            // chunk, so i == len-2 covers that layout too.)
            Err(_) if i + 2 >= lines.len() => break,
            Err(e) => return Err(DbError::Serde(e)),
        }
    }
    Ok(runs)
}

/// Load a database from a snapshot plus its journal: the snapshot (when
/// present) seeds the runs, then journal lines are replayed on top —
/// exactly the state the writing daemon held in memory.
pub fn load_with_wal(
    snapshot: impl AsRef<Path>,
    journal: impl AsRef<Path>,
) -> Result<ExperienceDb, DbError> {
    let mut db = match snapshot.as_ref().exists() {
        true => ExperienceDb::load(snapshot)?,
        false => ExperienceDb::new(),
    };
    for run in replay(journal)? {
        db.add_run(run);
    }
    Ok(db)
}

/// Compact: atomically write `db` as the snapshot (tmp+rename, see
/// [`ExperienceDb::save`]) and truncate the journal it supersedes.
pub fn compact(
    db: &ExperienceDb,
    snapshot: impl AsRef<Path>,
    wal: &mut WalWriter,
) -> Result<(), DbError> {
    db.save(snapshot)?;
    wal.truncate()?;
    crate::obs::db_compactions_total().inc();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::Configuration;

    fn run(label: &str, ch: Vec<f64>, perf: f64) -> RunHistory {
        let mut r = RunHistory::new(label, ch);
        r.push(&Configuration::new(vec![1, 2]), perf);
        r
    }

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("harmony-wal-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        fs::remove_file(&path).ok();
        path
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp("roundtrip.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append_run(&run("a", vec![0.1], 1.0)).unwrap();
        w.append_run(&run("b", vec![0.2], 2.0)).unwrap();
        assert_eq!(w.appended(), 2);
        let runs = replay(&path).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "a");
        assert_eq!(runs[1].label, "b");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_is_empty() {
        assert!(replay("/nonexistent/harmony/x.wal").unwrap().is_empty());
    }

    #[test]
    fn truncated_final_line_replays_cleanly() {
        let path = temp("torn.wal");
        let mut w = WalWriter::open(&path).unwrap();
        w.append_run(&run("whole", vec![0.5], 5.0)).unwrap();
        // Simulate a crash mid-append: half a JSON line, no newline.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"label\":\"torn\",\"charac").unwrap();
        drop(f);
        let runs = replay(&path).unwrap();
        assert_eq!(runs.len(), 1, "torn tail dropped");
        assert_eq!(runs[0].label, "whole");
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let path = temp("corrupt.wal");
        fs::write(&path, "garbage-not-json\n{\"also\":\"bad\"\n").unwrap();
        // First line is corrupt and is NOT the final line: refuse.
        assert!(replay(&path).is_err());
    }

    #[test]
    fn load_with_wal_equals_writer_state() {
        let snap = temp("state.json");
        let wal = temp("state.wal");
        let mut db = ExperienceDb::new();
        db.add_run(run("compacted", vec![1.0], 1.0));
        db.save(&snap).unwrap();
        let mut w = WalWriter::open(&wal).unwrap();
        let fresh = run("journaled", vec![2.0], 2.0);
        w.append_run(&fresh).unwrap();
        db.add_run(fresh);

        let loaded = load_with_wal(&snap, &wal).unwrap();
        assert_eq!(loaded, db, "snapshot + journal == in-memory db");
    }

    #[test]
    fn load_with_wal_without_snapshot_is_journal_only() {
        let wal = temp("nosnap.wal");
        let mut w = WalWriter::open(&wal).unwrap();
        w.append_run(&run("only", vec![3.0], 3.0)).unwrap();
        let loaded = load_with_wal("/nonexistent/harmony/s.json", &wal).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded.runs()[0].label, "only");
    }

    #[test]
    fn compaction_snapshot_equals_in_memory_db_and_truncates() {
        let snap = temp("compact.json");
        let wal = temp("compact.wal");
        let mut w = WalWriter::open(&wal).unwrap();
        let mut db = ExperienceDb::new();
        for i in 0..5 {
            let r = run(&format!("r{i}"), vec![i as f64], i as f64);
            w.append_run(&r).unwrap();
            db.add_run(r);
        }
        compact(&db, &snap, &mut w).unwrap();
        assert_eq!(ExperienceDb::load(&snap).unwrap(), db);
        assert_eq!(fs::metadata(&wal).unwrap().len(), 0, "journal truncated");
        assert_eq!(w.appended(), 0);
        // The writer stays usable after truncation.
        w.append_run(&run("post", vec![9.0], 9.0)).unwrap();
        assert_eq!(load_with_wal(&snap, &wal).unwrap().len(), 6);
    }
}
