//! Spatial index over run characteristics: k-d partitioning for
//! `classify`/`nearest_k` without a full linear scan.
//!
//! The linear rules being accelerated (see [`ExperienceDb::classify`]
//! and [`ExperienceDb::nearest_k`]) are exact and deterministic, so the
//! index must be too: for any database and query, the indexed answers
//! are **bit-identical** to the linear ones — same runs, same order,
//! same tie-breaks (smallest run index wins among equal distances).
//! Distances are computed by the same [`euclidean_sq`] call on the same
//! slices, so even float round-off is shared with the scan.
//!
//! Runs may have characteristic vectors of different lengths; the scan
//! simply skips mismatched runs. The index mirrors that by building one
//! tree per dimensionality group and answering a query only from the
//! group matching `observed.len()`. Groups too small for a tree to pay
//! for itself fall back to an exact linear scan of the group.

use crate::history::db::ExperienceDb;
use crate::history::record::RunHistory;
use harmony_linalg::stats::euclidean_sq;

/// Below this many points a group stays a flat list: pointer-chasing a
/// tree loses to scanning a handful of vectors.
const LINEAR_FALLBACK: usize = 16;

/// One node of a k-d tree over the points of a dimensionality group.
#[derive(Debug, Clone)]
struct KdNode {
    /// Index into the group's point list (which stores global run ids).
    point: usize,
    /// Splitting axis (depth % dims).
    axis: usize,
    left: Option<Box<KdNode>>,
    right: Option<Box<KdNode>>,
}

/// All runs sharing one characteristic-vector length.
#[derive(Debug, Clone)]
struct DimGroup {
    /// Global run indices, ascending (insertion order of the db).
    runs: Vec<usize>,
    /// Tree over `runs` positions; `None` for small (linear) groups.
    root: Option<KdNode>,
}

/// An immutable spatial index over one [`ExperienceDb`] state.
///
/// Build once per database version ([`ExperienceDb::build_index`]), then
/// answer any number of queries. The index holds no copies of the
/// characteristic vectors — only run indices — so it must be queried
/// against the same database it was built from (checked by length in
/// debug builds).
#[derive(Debug, Clone, Default)]
pub struct CharacteristicsIndex {
    /// Groups keyed by dimensionality, sorted by dims for determinism.
    groups: Vec<(usize, DimGroup)>,
    /// Database size at build time.
    runs: usize,
}

impl CharacteristicsIndex {
    /// Build the index for the database's current contents.
    pub fn build(db: &ExperienceDb) -> Self {
        let mut by_dims: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, r) in db.runs().iter().enumerate() {
            let d = r.characteristics.len();
            match by_dims.iter_mut().find(|(dims, _)| *dims == d) {
                Some((_, v)) => v.push(i),
                None => by_dims.push((d, vec![i])),
            }
        }
        by_dims.sort_by_key(|(dims, _)| *dims);
        let groups = by_dims
            .into_iter()
            .map(|(dims, runs)| {
                let root = if runs.len() >= LINEAR_FALLBACK && dims > 0 {
                    let mut positions: Vec<usize> = (0..runs.len()).collect();
                    Some(build_node(db, &runs, &mut positions, dims, 0))
                } else {
                    None
                };
                (dims, DimGroup { runs, root })
            })
            .collect();
        CharacteristicsIndex {
            groups,
            runs: db.len(),
        }
    }

    /// Number of runs the index covers.
    pub fn len(&self) -> usize {
        self.runs
    }

    /// True when the index covers no runs.
    pub fn is_empty(&self) -> bool {
        self.runs == 0
    }

    /// Indexed equivalent of [`ExperienceDb::classify`]: the run
    /// minimizing squared Euclidean distance to `observed`, earliest run
    /// winning ties. Bit-identical to the linear scan.
    pub fn classify<'db>(
        &self,
        db: &'db ExperienceDb,
        observed: &[f64],
    ) -> Option<(usize, &'db RunHistory)> {
        debug_assert_eq!(self.runs, db.len(), "index is stale for this db");
        let _timer = crate::obs::db_classify_seconds().start_timer();
        let group = self.group(observed.len())?;
        let mut best: Option<(f64, usize)> = None;
        match &group.root {
            None => {
                for &i in &group.runs {
                    consider(db, i, observed, &mut best);
                }
            }
            Some(root) => {
                search_nearest(db, group, root, observed, &mut best);
            }
        }
        best.map(|(_, i)| (i, &db.runs()[i]))
    }

    /// Indexed equivalent of [`ExperienceDb::nearest_k`]: the `k`
    /// nearest runs, nearest first, ties by run index. Bit-identical to
    /// the linear scan.
    pub fn nearest_k<'db>(
        &self,
        db: &'db ExperienceDb,
        observed: &[f64],
        k: usize,
    ) -> Vec<(usize, &'db RunHistory)> {
        debug_assert_eq!(self.runs, db.len(), "index is stale for this db");
        let Some(group) = self.group(observed.len()) else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut best = KBest::new(k);
        match &group.root {
            None => {
                for &i in &group.runs {
                    best.offer(euclidean_sq(&db.runs()[i].characteristics, observed), i);
                }
            }
            Some(root) => search_k(db, group, root, observed, &mut best),
        }
        best.into_sorted()
            .into_iter()
            .map(|(_, i)| (i, &db.runs()[i]))
            .collect()
    }

    fn group(&self, dims: usize) -> Option<&DimGroup> {
        self.groups.iter().find(|(d, _)| *d == dims).map(|(_, g)| g)
    }
}

/// Update a running `(distance, run index)` minimum with the linear
/// scan's exact rule: strictly smaller distance wins; an equal distance
/// wins only with a smaller run index.
fn consider(db: &ExperienceDb, i: usize, observed: &[f64], best: &mut Option<(f64, usize)>) {
    let d = euclidean_sq(&db.runs()[i].characteristics, observed);
    let better = match best {
        None => true,
        Some((bd, bi)) => d < *bd || (d == *bd && i < *bi),
    };
    if better {
        *best = Some((d, i));
    }
}

fn coordinate(db: &ExperienceDb, run: usize, axis: usize) -> f64 {
    db.runs()[run].characteristics[axis]
}

/// Build a k-d node over `positions` (indices into `runs`), splitting on
/// `depth % dims` at the median. Ties on the split coordinate break by
/// run index so construction is deterministic.
fn build_node(
    db: &ExperienceDb,
    runs: &[usize],
    positions: &mut [usize],
    dims: usize,
    depth: usize,
) -> KdNode {
    let axis = depth % dims;
    let mid = positions.len() / 2;
    positions.select_nth_unstable_by(mid, |&a, &b| {
        coordinate(db, runs[a], axis)
            .total_cmp(&coordinate(db, runs[b], axis))
            .then(runs[a].cmp(&runs[b]))
    });
    let point = positions[mid];
    let (lo, rest) = positions.split_at_mut(mid);
    let hi = &mut rest[1..];
    KdNode {
        point,
        axis,
        left: (!lo.is_empty()).then(|| Box::new(build_node(db, runs, lo, dims, depth + 1))),
        right: (!hi.is_empty()).then(|| Box::new(build_node(db, runs, hi, dims, depth + 1))),
    }
}

/// Nearest-neighbour descent. A subtree is pruned only when the squared
/// distance to its splitting plane strictly exceeds the best distance:
/// at exactly the best distance the far side could still hold an
/// equal-distance run with a smaller index, which the linear scan would
/// prefer.
fn search_nearest(
    db: &ExperienceDb,
    group: &DimGroup,
    node: &KdNode,
    observed: &[f64],
    best: &mut Option<(f64, usize)>,
) {
    let run = group.runs[node.point];
    consider(db, run, observed, best);
    let delta = observed[node.axis] - coordinate(db, run, node.axis);
    let (near, far) = if delta <= 0.0 {
        (&node.left, &node.right)
    } else {
        (&node.right, &node.left)
    };
    if let Some(n) = near {
        search_nearest(db, group, n, observed, best);
    }
    if let Some(f) = far {
        let plane_sq = delta * delta;
        match best {
            Some((bd, _)) if plane_sq > *bd => {}
            _ => search_nearest(db, group, f, observed, best),
        }
    }
}

/// Bounded best-k set ordered by `(distance, run index)` — the same
/// total order the linear `nearest_k` sorts by.
struct KBest {
    k: usize,
    /// Kept sorted ascending; `last` is the current worst of the k.
    items: Vec<(f64, usize)>,
}

impl KBest {
    fn new(k: usize) -> Self {
        KBest {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    fn cmp(a: &(f64, usize), b: &(f64, usize)) -> std::cmp::Ordering {
        a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
    }

    /// Current worst kept distance, once the set is full.
    fn bound(&self) -> Option<f64> {
        (self.items.len() == self.k).then(|| self.items[self.k - 1].0)
    }

    fn offer(&mut self, d: f64, i: usize) {
        let cand = (d, i);
        if self.items.len() == self.k
            && Self::cmp(&cand, self.items.last().expect("full")) != std::cmp::Ordering::Less
        {
            return;
        }
        let at = self
            .items
            .binary_search_by(|probe| Self::cmp(probe, &cand))
            .unwrap_or_else(|e| e);
        self.items.insert(at, cand);
        self.items.truncate(self.k);
    }

    fn into_sorted(self) -> Vec<(f64, usize)> {
        self.items
    }
}

fn search_k(
    db: &ExperienceDb,
    group: &DimGroup,
    node: &KdNode,
    observed: &[f64],
    best: &mut KBest,
) {
    let run = group.runs[node.point];
    best.offer(euclidean_sq(&db.runs()[run].characteristics, observed), run);
    let delta = observed[node.axis] - coordinate(db, run, node.axis);
    let (near, far) = if delta <= 0.0 {
        (&node.left, &node.right)
    } else {
        (&node.right, &node.left)
    };
    if let Some(n) = near {
        search_k(db, group, n, observed, best);
    }
    if let Some(f) = far {
        // Same strict-inequality pruning rule as `search_nearest`: an
        // equal-distance candidate beyond the plane may still displace a
        // kept item with a larger run index.
        match best.bound() {
            Some(bound) if delta * delta > bound => {}
            _ => search_k(db, group, f, observed, best),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::Configuration;

    fn run(label: &str, ch: Vec<f64>, perf: f64) -> RunHistory {
        let mut r = RunHistory::new(label, ch);
        r.push(&Configuration::new(vec![1]), perf);
        r
    }

    /// Tiny deterministic PRNG (xorshift64*), no external deps.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn f64(&mut self) -> f64 {
            // Uniform-ish in [0, 1) with a coarse grid so exact distance
            // ties actually occur and exercise the tie-break path.
            (self.next() % 32) as f64 / 32.0
        }

        fn usize(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    fn random_db(rng: &mut Rng, runs: usize, dim_choices: &[usize]) -> ExperienceDb {
        let mut db = ExperienceDb::new();
        for i in 0..runs {
            let dims = dim_choices[rng.usize(dim_choices.len())];
            let ch: Vec<f64> = (0..dims).map(|_| rng.f64()).collect();
            db.add_run(run(&format!("r{i}"), ch, i as f64));
        }
        db
    }

    fn assert_identical(db: &ExperienceDb, observed: &[f64], k: usize) {
        let index = CharacteristicsIndex::build(db);
        let lin = db.classify(observed).map(|(i, _)| i);
        let idx = index.classify(db, observed).map(|(i, _)| i);
        assert_eq!(idx, lin, "classify diverged at {observed:?}");
        let lin_k: Vec<usize> = db.nearest_k(observed, k).iter().map(|(i, _)| *i).collect();
        let idx_k: Vec<usize> = index
            .nearest_k(db, observed, k)
            .iter()
            .map(|(i, _)| *i)
            .collect();
        assert_eq!(idx_k, lin_k, "nearest_k({k}) diverged at {observed:?}");
    }

    #[test]
    fn property_indexed_results_are_bit_identical_to_linear() {
        let mut rng = Rng(0x9E3779B97F4A7C15);
        for case in 0..60 {
            // Mix sizes across the linear-fallback boundary and mixed
            // dimensionalities (the scan skips mismatched runs).
            let runs = [0, 1, 3, 15, 16, 40, 200][case % 7];
            let dims: &[usize] = if case % 3 == 0 { &[3] } else { &[1, 3, 5] };
            let db = random_db(&mut rng, runs, dims);
            for _ in 0..20 {
                let qd = dims[rng.usize(dims.len())];
                let observed: Vec<f64> = (0..qd).map(|_| rng.f64()).collect();
                for k in [1, 2, 5, runs + 1] {
                    assert_identical(&db, &observed, k);
                }
            }
        }
    }

    #[test]
    fn ties_prefer_the_earliest_run_like_the_scan() {
        let mut db = ExperienceDb::new();
        // 20 runs at only two distinct points: heavy exact-tie pressure,
        // large enough to build a real tree.
        for i in 0..20 {
            let v = if i % 2 == 0 { 0.25 } else { 0.75 };
            db.add_run(run(&format!("t{i}"), vec![v, v], i as f64));
        }
        let index = CharacteristicsIndex::build(&db);
        let (i, _) = index.classify(&db, &[0.25, 0.25]).unwrap();
        assert_eq!(i, 0, "earliest equal-distance run wins");
        let ks: Vec<usize> = index
            .nearest_k(&db, &[0.25, 0.25], 4)
            .iter()
            .map(|(i, _)| *i)
            .collect();
        assert_eq!(ks, vec![0, 2, 4, 6], "ties ordered by run index");
        assert_identical(&db, &[0.25, 0.25], 7);
    }

    #[test]
    fn empty_and_mismatched_queries() {
        let db = ExperienceDb::new();
        let index = CharacteristicsIndex::build(&db);
        assert!(index.is_empty());
        assert!(index.classify(&db, &[0.5]).is_none());
        assert!(index.nearest_k(&db, &[0.5], 3).is_empty());

        let mut db = ExperienceDb::new();
        db.add_run(run("a", vec![0.1, 0.2], 1.0));
        let index = CharacteristicsIndex::build(&db);
        assert_eq!(index.len(), 1);
        assert!(index.classify(&db, &[0.1]).is_none(), "no 1-d group");
        assert!(index.nearest_k(&db, &[0.1, 0.2, 0.3], 1).is_empty());
    }

    #[test]
    fn zero_k_is_empty() {
        let mut db = ExperienceDb::new();
        db.add_run(run("a", vec![0.5], 1.0));
        let index = CharacteristicsIndex::build(&db);
        assert!(index.nearest_k(&db, &[0.5], 0).is_empty());
    }
}
