//! Deterministic k-means over characteristic vectors.
//!
//! Figure 2 lists k-means among the data analyzer's clustering mechanisms;
//! here it compresses the experience database. Initialization is a
//! deterministic farthest-point (k-means++-style without randomness) so
//! results are reproducible.

use harmony_linalg::stats::euclidean_sq;

/// Result of a clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centers.
    pub centroids: Vec<Vec<f64>>,
    /// For each input point, the index of its centroid.
    pub assignment: Vec<usize>,
    /// Sum of squared distances of points to their centroids.
    pub inertia: f64,
}

/// Cluster `points` into at most `k` groups with at most `max_iters`
/// Lloyd iterations.
///
/// # Panics
/// Panics if `k == 0`, `points` is empty, or points have inconsistent
/// dimensionality.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize) -> Clustering {
    assert!(k > 0, "kmeans: k must be positive");
    assert!(!points.is_empty(), "kmeans: no points");
    let dims = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dims),
        "kmeans: ragged points"
    );
    let k = k.min(points.len());

    // Farthest-point initialization from the dataset centroid.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mean: Vec<f64> = (0..dims)
        .map(|d| points.iter().map(|p| p[d]).sum::<f64>() / points.len() as f64)
        .collect();
    let first = points
        .iter()
        .enumerate()
        .max_by(|a, b| euclidean_sq(a.1, &mean).total_cmp(&euclidean_sq(b.1, &mean)))
        .expect("non-empty")
        .0;
    centroids.push(points[first].clone());
    while centroids.len() < k {
        let next = points
            .iter()
            .enumerate()
            .max_by(|a, b| {
                let da = centroids
                    .iter()
                    .map(|c| euclidean_sq(a.1, c))
                    .fold(f64::INFINITY, f64::min);
                let db = centroids
                    .iter()
                    .map(|c| euclidean_sq(b.1, c))
                    .fold(f64::INFINITY, f64::min);
                da.total_cmp(&db)
            })
            .expect("non-empty")
            .0;
        centroids.push(points[next].clone());
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..max_iters {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| euclidean_sq(p, a.1).total_cmp(&euclidean_sq(p, b.1)))
                .expect("k >= 1")
                .0;
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dims]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (p, &a) in points.iter().zip(&assignment) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
            if *count > 0 {
                *c = sum.iter().map(|s| s / *count as f64).collect();
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| euclidean_sq(p, &centroids[a]))
        .sum();
    Clustering {
        centroids,
        assignment,
        inertia,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_clusters() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![5.0, 5.1],
        ];
        let c = kmeans(&pts, 2, 20);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[1], c.assignment[2]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[3]);
        assert!(c.inertia < 0.1);
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let c = kmeans(&pts, 10, 5);
        assert_eq!(c.centroids.len(), 2);
        assert!(c.inertia < 1e-12);
    }

    #[test]
    fn single_cluster_centroid_is_the_mean() {
        let pts = vec![vec![0.0], vec![2.0], vec![4.0]];
        let c = kmeans(&pts, 1, 10);
        assert!((c.centroids[0][0] - 2.0).abs() < 1e-12);
        assert_eq!(c.assignment, vec![0, 0, 0]);
    }

    #[test]
    fn deterministic() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i % 7) as f64, (i % 3) as f64])
            .collect();
        let a = kmeans(&pts, 3, 30);
        let b = kmeans(&pts, 3, 30);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = kmeans(&[vec![1.0]], 0, 1);
    }
}
