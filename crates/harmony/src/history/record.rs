//! Tuning records and per-run histories.

use harmony_space::Configuration;
use serde::{Deserialize, Serialize};

/// One explored configuration and its measured performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningRecord {
    /// Parameter values (space order).
    pub values: Vec<i64>,
    /// Measured performance (higher is better).
    pub performance: f64,
}

impl TuningRecord {
    /// Build from a configuration.
    pub fn new(cfg: &Configuration, performance: f64) -> Self {
        TuningRecord {
            values: cfg.values().to_vec(),
            performance,
        }
    }

    /// View as a configuration.
    pub fn configuration(&self) -> Configuration {
        Configuration::new(self.values.clone())
    }
}

/// Everything remembered about one prior tuning run: the workload's
/// characteristic vector and every record explored while serving it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunHistory {
    /// Human label (e.g. the workload name) — documentation only.
    pub label: String,
    /// Workload characteristics observed when the run happened (e.g. the
    /// web-interaction frequency distribution).
    pub characteristics: Vec<f64>,
    /// Explored configurations with performances, in exploration order.
    pub records: Vec<TuningRecord>,
}

impl RunHistory {
    /// New, empty run.
    pub fn new(label: impl Into<String>, characteristics: Vec<f64>) -> Self {
        RunHistory {
            label: label.into(),
            characteristics,
            records: Vec::new(),
        }
    }

    /// Append one record.
    pub fn push(&mut self, cfg: &Configuration, performance: f64) {
        self.records.push(TuningRecord::new(cfg, performance));
    }

    /// The best record, if any.
    pub fn best(&self) -> Option<&TuningRecord> {
        self.records
            .iter()
            .max_by(|a, b| a.performance.total_cmp(&b.performance))
    }

    /// The `k` best records, best first.
    pub fn top_k(&self, k: usize) -> Vec<&TuningRecord> {
        let mut v: Vec<&TuningRecord> = self.records.iter().collect();
        v.sort_by(|a, b| b.performance.total_cmp(&a.performance));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_configuration() {
        let cfg = Configuration::new(vec![1, 2, 3]);
        let r = TuningRecord::new(&cfg, 9.0);
        assert_eq!(r.configuration(), cfg);
        assert_eq!(r.performance, 9.0);
    }

    #[test]
    fn best_and_top_k() {
        let mut run = RunHistory::new("w", vec![0.5, 0.5]);
        assert!(run.best().is_none());
        run.push(&Configuration::new(vec![1]), 10.0);
        run.push(&Configuration::new(vec![2]), 30.0);
        run.push(&Configuration::new(vec![3]), 20.0);
        assert_eq!(run.best().unwrap().values, vec![2]);
        let top2: Vec<f64> = run.top_k(2).iter().map(|r| r.performance).collect();
        assert_eq!(top2, vec![30.0, 20.0]);
        assert_eq!(run.top_k(99).len(), 3);
    }

    #[test]
    fn serde_roundtrip() {
        let mut run = RunHistory::new("shopping", vec![0.1, 0.9]);
        run.push(&Configuration::new(vec![4, 5]), 77.5);
        let json = serde_json::to_string(&run).unwrap();
        let back: RunHistory = serde_json::from_str(&json).unwrap();
        assert_eq!(back, run);
    }
}
