//! Initial simplex construction (§4.1).

use harmony_space::ParameterSpace;
use serde::{Deserialize, Serialize};

/// How the first `n+1` exploration configurations are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitStrategy {
    /// The original Active Harmony behaviour: "original Active Harmony
    /// implementation tries the extreme values for the parameters for the
    /// initial exploration" — the all-minimum corner plus one
    /// maximum-along-each-axis corner per parameter.
    ExtremeCorners,
    /// The paper's improvement: "configurations that are equally
    /// distributed in the whole search space" (Figure 1b). Implemented as
    /// a cyclic Latin square — vertex `i` places parameter `j` at fraction
    /// `((i+j) mod (n+1) + ½)/(n+1)` of its range — which covers the
    /// interior evenly *and* keeps the simplex affinely non-degenerate.
    EvenSpread,
    /// The literal reading of "for each of n parameters, we increase 1/n
    /// of its extreme values every time": all parameters ramp together, so
    /// the vertices are collinear and the simplex is degenerate. Retained
    /// as an ablation target; not recommended for real tuning.
    Diagonal,
}

impl InitStrategy {
    /// Generate the `n+1` initial vertices in continuous coordinates.
    ///
    /// Every strategy fixes all vertices up front — none depends on a
    /// measured value — which is what lets the kernel expose the whole
    /// initial simplex as one batch
    /// ([`SimplexKernel::batchable_configs`](crate::kernel::SimplexKernel::batchable_configs))
    /// for parallel evaluation on an executor.
    pub fn initial_points(&self, space: &ParameterSpace) -> Vec<Vec<f64>> {
        let n = space.len();
        let point_at = |fracs: &dyn Fn(usize) -> f64| -> Vec<f64> {
            space
                .params()
                .iter()
                .enumerate()
                .map(|(j, p)| {
                    let lo = p.static_min() as f64;
                    let hi = p.static_max() as f64;
                    lo + fracs(j).clamp(0.0, 1.0) * (hi - lo)
                })
                .collect()
        };
        match self {
            InitStrategy::ExtremeCorners => {
                let mut pts = Vec::with_capacity(n + 1);
                pts.push(point_at(&|_| 0.0));
                for i in 0..n {
                    pts.push(point_at(&|j| if j == i { 1.0 } else { 0.0 }));
                }
                pts
            }
            InitStrategy::EvenSpread => (0..=n)
                .map(|i| {
                    point_at(&|j| {
                        ((i + j) % (n + 1)) as f64 / (n + 1) as f64 + 0.5 / (n + 1) as f64
                    })
                })
                .collect(),
            InitStrategy::Diagonal => (0..=n)
                .map(|i| point_at(&|_| (i as f64 + 0.5) / (n + 1) as f64))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::{ParamDef, ParameterSpace};

    fn space(n: usize) -> ParameterSpace {
        ParameterSpace::new(
            (0..n)
                .map(|i| ParamDef::int(format!("p{i}"), 0, 100, 50, 1))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn all_strategies_emit_n_plus_one_points() {
        let s = space(4);
        for strat in [
            InitStrategy::ExtremeCorners,
            InitStrategy::EvenSpread,
            InitStrategy::Diagonal,
        ] {
            let pts = strat.initial_points(&s);
            assert_eq!(pts.len(), 5, "{strat:?}");
            for p in &pts {
                assert_eq!(p.len(), 4);
                for (j, &x) in p.iter().enumerate() {
                    let def = s.param(j);
                    assert!(x >= def.static_min() as f64 && x <= def.static_max() as f64);
                }
            }
        }
    }

    #[test]
    fn extreme_corners_touch_the_boundary() {
        let pts = InitStrategy::ExtremeCorners.initial_points(&space(3));
        assert_eq!(pts[0], vec![0.0, 0.0, 0.0]);
        assert_eq!(pts[1], vec![100.0, 0.0, 0.0]);
        assert_eq!(pts[3], vec![0.0, 0.0, 100.0]);
    }

    #[test]
    fn even_spread_avoids_the_boundary() {
        let s = space(3);
        for p in InitStrategy::EvenSpread.initial_points(&s) {
            for &x in &p {
                assert!(
                    x > 0.0 && x < 100.0,
                    "even spread must stay interior, got {x}"
                );
            }
        }
    }

    #[test]
    fn even_spread_covers_each_axis_evenly() {
        // Along any single parameter, the n+1 vertices take n+1 distinct,
        // evenly spaced positions (cyclic Latin square property).
        let s = space(3);
        let pts = InitStrategy::EvenSpread.initial_points(&s);
        for j in 0..3 {
            let mut vals: Vec<f64> = pts.iter().map(|p| p[j]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in vals.windows(2) {
                assert!((w[1] - w[0] - 25.0).abs() < 1e-9, "axis {j}: {vals:?}");
            }
        }
    }

    #[test]
    fn even_spread_is_affinely_independent_in_2d() {
        // Three vertices in 2-D must not be collinear.
        let s = space(2);
        let pts = InitStrategy::EvenSpread.initial_points(&s);
        let (a, b, c) = (&pts[0], &pts[1], &pts[2]);
        let cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
        assert!(
            cross.abs() > 1e-6,
            "EvenSpread produced a degenerate simplex"
        );
    }

    #[test]
    fn diagonal_is_collinear_by_design() {
        let s = space(2);
        let pts = InitStrategy::Diagonal.initial_points(&s);
        let (a, b, c) = (&pts[0], &pts[1], &pts[2]);
        let cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0]);
        assert!(
            cross.abs() < 1e-9,
            "Diagonal should be collinear (it is the ablation)"
        );
    }
}
