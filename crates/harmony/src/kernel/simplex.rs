//! Discrete Nelder-Mead simplex, ask-tell style, maximizing.

use crate::kernel::init::InitStrategy;
use harmony_linalg::vecops;
use harmony_space::{Configuration, ParameterSpace};
use serde::value::{Map, Number, Value};
use serde::{DeError, Deserialize, Serialize};

/// Reflection/expansion/contraction/shrink coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimplexOptions {
    /// Reflection coefficient (α in Nelder & Mead).
    pub alpha: f64,
    /// Expansion coefficient (γ).
    pub gamma: f64,
    /// Contraction coefficient (ρ).
    pub rho: f64,
    /// Shrink coefficient (σ).
    pub sigma: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Vertex {
    point: Vec<f64>,
    value: f64,
}

/// Internal state machine: what the kernel is waiting to hear about.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum State {
    /// Collecting values for the initial vertices.
    Init { points: Vec<Vec<f64>>, next: usize },
    /// Waiting for the reflection point's value.
    Reflect { centroid: Vec<f64>, point: Vec<f64> },
    /// Waiting for the expansion point's value.
    Expand {
        point: Vec<f64>,
        reflect_point: Vec<f64>,
        reflect_value: f64,
    },
    /// Waiting for a contraction point's value.
    Contract {
        point: Vec<f64>,
        reflect_value: f64,
        outside: bool,
    },
    /// Re-evaluating shrunk vertices one at a time.
    Shrink { idx: usize, point: Vec<f64> },
    /// Re-measuring existing vertices (after a training stage, so stale
    /// estimated values can't outvote live measurements).
    Refresh { idx: usize },
}

/// The Nelder-Mead kernel over a discrete [`ParameterSpace`], maximizing.
///
/// Proposals are continuous simplex points;
/// [`next_config`](SimplexKernel::next_config) projects them to the nearest feasible
/// configuration ("nearest integer point", §2). The caller measures — or
/// estimates — that configuration's performance and reports it through
/// [`observe`](SimplexKernel::observe).
///
/// # Examples
///
/// The ask-tell loop:
///
/// ```
/// use harmony::kernel::{InitStrategy, SimplexKernel};
/// use harmony_space::{Configuration, ParamDef, ParameterSpace};
///
/// let space = ParameterSpace::builder()
///     .param(ParamDef::int("x", 0, 100, 50, 1))
///     .param(ParamDef::int("y", 0, 100, 50, 1))
///     .build()
///     .unwrap();
/// let mut kernel = SimplexKernel::new(space, InitStrategy::EvenSpread);
/// for _ in 0..80 {
///     let cfg = kernel.next_config();           // ask
///     let perf = -((cfg.get(0) - 70).pow(2) + (cfg.get(1) - 20).pow(2)) as f64;
///     kernel.observe(perf);                     // tell
/// }
/// let (best, value) = kernel.best().unwrap();
/// assert!(value > -20.0, "found {best} at {value}");
/// ```
#[derive(Debug, Clone)]
pub struct SimplexKernel {
    space: ParameterSpace,
    opts: SimplexOptions,
    vertices: Vec<Vertex>,
    state: State,
    best_config: Option<(Configuration, f64)>,
    observations: u64,
    /// Running range of raw observed values, used to scale the
    /// out-of-box penalty.
    seen_min: f64,
    seen_max: f64,
}

impl SimplexKernel {
    /// Fresh kernel: the first `n+1` proposals come from `init`.
    pub fn new(space: ParameterSpace, init: InitStrategy) -> Self {
        let points = init.initial_points(&space);
        SimplexKernel {
            space,
            opts: SimplexOptions::default(),
            vertices: Vec::with_capacity(points.len()),
            state: State::Init { points, next: 0 },
            best_config: None,
            observations: 0,
            seen_min: f64::INFINITY,
            seen_max: f64::NEG_INFINITY,
        }
    }

    /// Kernel warm-started from prior experience (§4.2's training stage
    /// output): the seeds become the initial simplex, skipping live
    /// exploration of the init phase entirely. Seeds beyond the best `n+1`
    /// are ignored; if fewer than `n+1` are given, the remainder are
    /// EvenSpread points still needing evaluation.
    pub fn with_seeded_simplex(
        space: ParameterSpace,
        mut seeds: Vec<(Configuration, f64)>,
    ) -> Self {
        let n = space.len();
        seeds.sort_by(|a, b| b.1.total_cmp(&a.1));
        seeds.truncate(n + 1);
        let mut vertices: Vec<Vertex> = Vec::with_capacity(n + 1);
        let mut best_config = None;
        for (cfg, value) in &seeds {
            if best_config.is_none() {
                best_config = Some((cfg.clone(), *value));
            }
            vertices.push(Vertex {
                point: cfg.to_point(),
                value: *value,
            });
        }
        let missing = (n + 1).saturating_sub(vertices.len());
        let seed_min = seeds.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        let seed_max = seeds.iter().map(|s| s.1).fold(f64::NEG_INFINITY, f64::max);
        let mut kernel = SimplexKernel {
            space,
            opts: SimplexOptions::default(),
            vertices,
            state: State::Init {
                points: Vec::new(),
                next: 0,
            },
            best_config,
            observations: 0,
            seen_min: seed_min,
            seen_max: seed_max,
        };
        if missing > 0 {
            // Fill with axis offsets around the best seed (±25% of each
            // range) so the simplex spans all dimensions even when the
            // prior run's records cluster at its converged optimum. A
            // collapsed seed simplex would otherwise trip the convergence
            // criteria before live search even starts.
            let anchor: Vec<f64> = kernel
                .vertices
                .first()
                .map(|v| v.point.clone())
                .unwrap_or_else(|| kernel.space.default_configuration().to_point());
            let n = kernel.space.len();
            let fill: Vec<Vec<f64>> = (0..missing)
                .map(|k| {
                    let j = k % n;
                    let p = kernel.space.param(j);
                    let span = (p.static_max() - p.static_min()) as f64;
                    let step = span * 0.25 * (1.0 + (k / n) as f64);
                    let mut pt = anchor.clone();
                    // Offset toward the side with more room.
                    let mid = (p.static_max() + p.static_min()) as f64 / 2.0;
                    pt[j] += if pt[j] <= mid { step } else { -step };
                    pt
                })
                .collect();
            kernel.state = State::Init {
                points: fill,
                next: 0,
            };
        } else {
            kernel.begin_iteration();
        }
        kernel
    }

    /// Override the simplex coefficients.
    pub fn with_options(mut self, opts: SimplexOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The space being searched.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// The continuous point awaiting evaluation.
    pub fn next_point(&self) -> Vec<f64> {
        match &self.state {
            State::Init { points, next } => points[*next].clone(),
            State::Reflect { point, .. }
            | State::Expand { point, .. }
            | State::Contract { point, .. }
            | State::Shrink { point, .. } => point.clone(),
            State::Refresh { idx } => self.vertices[*idx].point.clone(),
        }
    }

    /// Rebuild the simplex around the current best vertex: keep it, move
    /// every other vertex to an axis offset of `fraction` of that axis's
    /// range (toward whichever side has more room). Used to restart a
    /// collapsed simplex — e.g. one trained from a prior run that had
    /// already converged — so the live search has geometry to work with.
    /// Call [`refresh`](Self::refresh) afterwards to (re)measure the new
    /// vertices.
    pub fn expand_around_best(&mut self, fraction: f64) {
        assert!(fraction > 0.0, "expansion fraction must be positive");
        if self.vertices.is_empty() {
            return;
        }
        let bi = self.best_index();
        let anchor = self.vertices[bi].point.clone();
        let n = self.space.len();
        let mut k = 0usize;
        for (vi, v) in self.vertices.iter_mut().enumerate() {
            if vi == bi {
                continue;
            }
            let j = k % n;
            let p = self.space.param(j);
            let span = (p.static_max() - p.static_min()) as f64;
            let step = span * fraction * (1.0 + (k / n) as f64);
            let mut pt = anchor.clone();
            let mid = (p.static_max() + p.static_min()) as f64 / 2.0;
            pt[j] += if pt[j] <= mid { step } else { -step };
            v.point = pt;
            k += 1;
        }
    }

    /// Queue a live re-measurement of every current vertex before the
    /// search resumes. Called when switching from estimated (training
    /// stage) to measured values: an estimate from prior experience may be
    /// systematically optimistic for the *current* workload, and the
    /// ordinary replace-if-better rule would then never let reality
    /// displace it — the simplex would converge onto stale history. The
    /// prior run still decides *where* the simplex starts; it no longer
    /// decides what those points are worth.
    pub fn refresh(&mut self) {
        if !self.vertices.is_empty() && self.initialized() {
            crate::obs::simplex_ops().refresh.inc();
            self.state = State::Refresh { idx: 0 };
        }
    }

    /// The feasible configuration awaiting evaluation (the projection of
    /// [`next_point`](Self::next_point)).
    pub fn next_config(&self) -> Configuration {
        self.space.project(&self.next_point())
    }

    /// Every proposal whose configuration is already decided — the
    /// measurements can be gathered as one parallel batch and fed back
    /// through [`observe`](Self::observe) in order.
    ///
    /// During the `Init` phase the remaining initial vertices are all
    /// known up front, and during `Refresh` the remaining vertices are
    /// re-measured as-is: in both phases the proposal sequence does not
    /// depend on the values observed along the way, so batching is
    /// exact. Everywhere else (reflect/expand/contract/shrink) the next
    /// proposal is computed *from* the previous observation, and the
    /// batch degenerates to the single outstanding configuration.
    pub fn batchable_configs(&self) -> Vec<Configuration> {
        match &self.state {
            State::Init { points, next } => points[*next..]
                .iter()
                .map(|p| self.space.project(p))
                .collect(),
            State::Refresh { idx } => self.vertices[*idx..]
                .iter()
                .map(|v| self.space.project(&v.point))
                .collect(),
            _ => vec![self.next_config()],
        }
    }

    /// Report the performance of the configuration from
    /// [`next_config`](Self::next_config). Advances the state machine.
    pub fn observe(&mut self, value: f64) {
        self.observations += 1;
        let cfg = self.next_config();
        match &self.best_config {
            Some((_, best)) if *best >= value => {}
            _ => self.best_config = Some((cfg, value)),
        }
        // The state machine compares penalized values so that out-of-box
        // proposals lose; the raw value above still counts for `best()`
        // (the projected configuration really was measured).
        let proposal = self.next_point();
        self.seen_min = self.seen_min.min(value);
        self.seen_max = self.seen_max.max(value);
        let value = self.penalized(&proposal, value);

        // Take the state out to appease the borrow checker while mutating.
        let state = std::mem::replace(
            &mut self.state,
            State::Init {
                points: Vec::new(),
                next: 0,
            },
        );
        match state {
            State::Init { points, next } => {
                self.vertices.push(Vertex {
                    point: points[next].clone(),
                    value,
                });
                let next = next + 1;
                if next < points.len() {
                    self.state = State::Init { points, next };
                } else {
                    self.begin_iteration();
                }
            }
            State::Reflect { centroid, point } => {
                let best = self.best_value();
                let second_worst = self.second_worst_value();
                if value > best {
                    // Try to expand past the reflection.
                    crate::obs::simplex_ops().expand.inc();
                    let expand = vecops::lerp(&centroid, &point, self.opts.gamma);
                    self.state = State::Expand {
                        point: expand,
                        reflect_point: point,
                        reflect_value: value,
                    };
                } else if value > second_worst {
                    self.replace_worst(point, value);
                    self.begin_iteration();
                } else {
                    // Contract: outside if the reflection at least beat the
                    // worst vertex, inside otherwise.
                    let worst = self.worst_value();
                    let outside = value > worst;
                    let target = if outside {
                        point.clone()
                    } else {
                        self.vertices[self.worst_index()].point.clone()
                    };
                    crate::obs::simplex_ops().contract.inc();
                    let contract = vecops::lerp(&centroid, &target, self.opts.rho);
                    self.state = State::Contract {
                        point: contract,
                        reflect_value: value,
                        outside,
                    };
                }
            }
            State::Expand {
                point,
                reflect_point,
                reflect_value,
            } => {
                if value > reflect_value {
                    self.replace_worst(point, value);
                } else {
                    self.replace_worst(reflect_point, reflect_value);
                }
                self.begin_iteration();
            }
            State::Contract {
                point,
                reflect_value,
                outside,
            } => {
                let accept = if outside {
                    value >= reflect_value
                } else {
                    value > self.worst_value()
                };
                if accept {
                    self.replace_worst(point, value);
                    self.begin_iteration();
                } else {
                    self.begin_shrink();
                }
            }
            State::Shrink { idx, point } => {
                self.vertices[idx] = Vertex { point, value };
                self.continue_shrink(idx + 1);
            }
            State::Refresh { idx } => {
                self.vertices[idx].value = value;
                if idx + 1 < self.vertices.len() {
                    self.state = State::Refresh { idx: idx + 1 };
                } else {
                    self.begin_iteration();
                }
            }
        }
    }

    /// Best configuration observed so far, with its performance.
    pub fn best(&self) -> Option<(Configuration, f64)> {
        self.best_config.clone()
    }

    /// Total observations reported.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// True once the initial simplex is fully evaluated.
    pub fn initialized(&self) -> bool {
        !matches!(self.state, State::Init { .. })
    }

    /// Relative spread of vertex values — a convergence signal: when every
    /// vertex performs nearly identically, the simplex has collapsed onto
    /// a plateau.
    pub fn value_spread(&self) -> f64 {
        if self.vertices.len() < 2 {
            return f64::INFINITY;
        }
        let best = self.best_value();
        let worst = self.worst_value();
        if best == 0.0 {
            (best - worst).abs()
        } else {
            (best - worst).abs() / best.abs()
        }
    }

    /// Maximum range-normalized distance between any vertex and the best
    /// vertex, measured on the *continuous* simplex — the geometric
    /// convergence signal. (Projected configurations would collapse at the
    /// space boundary and fake convergence while the simplex is still
    /// wandering outside it.)
    pub fn point_spread(&self) -> f64 {
        if self.vertices.len() < 2 {
            return f64::INFINITY;
        }
        let best = &self.vertices[self.best_index()].point;
        self.vertices
            .iter()
            .map(|v| {
                v.point
                    .iter()
                    .zip(best)
                    .enumerate()
                    .map(|(j, (a, b))| {
                        let p = self.space.param(j);
                        let range = (p.static_max() - p.static_min()).max(1) as f64;
                        let d = (a - b) / range;
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(0.0, f64::max)
    }

    fn best_index(&self) -> usize {
        self.vertices
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.value.total_cmp(&b.1.value))
            .expect("non-empty simplex")
            .0
    }

    fn worst_index(&self) -> usize {
        self.vertices
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.value.total_cmp(&b.1.value))
            .expect("non-empty simplex")
            .0
    }

    fn best_value(&self) -> f64 {
        self.vertices[self.best_index()].value
    }

    fn worst_value(&self) -> f64 {
        self.vertices[self.worst_index()].value
    }

    /// The second-lowest vertex value (the Nelder-Mead acceptance bar for
    /// a plain reflection).
    fn second_worst_value(&self) -> f64 {
        let w = self.worst_index();
        self.vertices
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != w)
            .map(|(_, v)| v.value)
            .fold(f64::INFINITY, f64::min)
    }

    fn replace_worst(&mut self, point: Vec<f64>, value: f64) {
        let w = self.worst_index();
        self.vertices[w] = Vertex { point, value };
    }

    /// Compute the next reflection proposal.
    fn begin_iteration(&mut self) {
        debug_assert!(!self.vertices.is_empty());
        crate::obs::simplex_ops().reflect.inc();
        let w = self.worst_index();
        let others: Vec<&[f64]> = self
            .vertices
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != w)
            .map(|(_, v)| v.point.as_slice())
            .collect();
        let centroid = if others.is_empty() {
            self.vertices[w].point.clone()
        } else {
            vecops::centroid(&others)
        };
        let worst = &self.vertices[w].point;
        // Reflection: c + α(c − x_worst).
        let point: Vec<f64> = centroid
            .iter()
            .zip(worst)
            .map(|(c, w)| c + self.opts.alpha * (c - w))
            .collect();
        self.state = State::Reflect { centroid, point };
    }

    /// Normalized distance by which a continuous point lies outside the
    /// search box (0 when inside).
    fn out_of_box(&self, point: &[f64]) -> f64 {
        point
            .iter()
            .enumerate()
            .map(|(j, &x)| {
                let p = self.space.param(j);
                let (lo, hi) = (p.static_min() as f64, p.static_max() as f64);
                let range = (hi - lo).max(1.0);
                let excess = if x < lo {
                    lo - x
                } else if x > hi {
                    x - hi
                } else {
                    0.0
                };
                excess / range
            })
            .sum()
    }

    /// The value the state machine compares: out-of-box proposals are
    /// penalized below every in-box observation, by an amount growing with
    /// how far outside they are. Plain coordinate clamping would pile
    /// distinct proposals onto the same boundary point and collapse the
    /// simplex onto a face; the penalty instead makes the ordinary
    /// contraction machinery pull the simplex back inside while its
    /// geometry stays consistent.
    fn penalized(&self, point: &[f64], value: f64) -> f64 {
        let out = self.out_of_box(point);
        if out == 0.0 {
            return value;
        }
        let lo = self.seen_min.min(value);
        let hi = self.seen_max.max(value);
        let span = (hi - lo).max(1.0);
        lo - span * (1.0 + out)
    }

    fn begin_shrink(&mut self) {
        crate::obs::simplex_ops().shrink.inc();
        self.continue_shrink(0);
    }

    /// Propose the shrunken position of vertex `idx` (skipping the best
    /// vertex); when all are re-evaluated, start a new iteration.
    fn continue_shrink(&mut self, mut idx: usize) {
        let bi = self.best_index();
        while idx < self.vertices.len() {
            if idx != bi {
                let best_point = self.vertices[bi].point.clone();
                let shrunk = vecops::lerp(&best_point, &self.vertices[idx].point, self.opts.sigma);
                self.state = State::Shrink { idx, point: shrunk };
                return;
            }
            idx += 1;
        }
        self.begin_iteration();
    }
}

// Hand-written serialization: `seen_min`/`seen_max` start at ±infinity,
// which the JSON layer flattens to `null`, so both travel as the exact
// `f64::to_bits` pattern (reinterpreted as `i64`, which round-trips
// losslessly). Every other field uses its ordinary representation.
impl Serialize for SimplexKernel {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("space".into(), self.space.to_value());
        m.insert("opts".into(), self.opts.to_value());
        m.insert("vertices".into(), self.vertices.to_value());
        m.insert("state".into(), self.state.to_value());
        m.insert("best_config".into(), self.best_config.to_value());
        m.insert(
            "observations".into(),
            Value::Number(Number::Int(self.observations as i64)),
        );
        m.insert(
            "seen_min_bits".into(),
            Value::Number(Number::Int(self.seen_min.to_bits() as i64)),
        );
        m.insert(
            "seen_max_bits".into(),
            Value::Number(Number::Int(self.seen_max.to_bits() as i64)),
        );
        Value::Object(m)
    }
}

impl Deserialize for SimplexKernel {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let bits = |key: &str| -> Result<f64, DeError> {
            let n = v
                .field(key)?
                .as_i64()
                .ok_or_else(|| DeError::expected("integer bit pattern", v.field(key).unwrap()))?;
            Ok(f64::from_bits(n as u64))
        };
        let mut space = ParameterSpace::from_value(v.field("space")?)?;
        space.reindex();
        Ok(SimplexKernel {
            space,
            opts: SimplexOptions::from_value(v.field("opts")?)?,
            vertices: Vec::from_value(v.field("vertices")?)?,
            state: State::from_value(v.field("state")?)?,
            best_config: Option::from_value(v.field("best_config")?)?,
            observations: u64::from_value(v.field("observations")?)?,
            seen_min: bits("seen_min_bits")?,
            seen_max: bits("seen_max_bits")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::ParamDef;

    fn space2() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 100, 50, 1))
            .param(ParamDef::int("y", 0, 100, 50, 1))
            .build()
            .unwrap()
    }

    /// Drive the kernel against a closure for `iters` observations.
    fn drive(kernel: &mut SimplexKernel, f: impl Fn(&Configuration) -> f64, iters: usize) {
        for _ in 0..iters {
            let cfg = kernel.next_config();
            let v = f(&cfg);
            kernel.observe(v);
        }
    }

    fn paraboloid(cfg: &Configuration) -> f64 {
        let x = cfg.get(0) as f64;
        let y = cfg.get(1) as f64;
        1000.0 - (x - 62.0).powi(2) - 1.5 * (y - 31.0).powi(2)
    }

    #[test]
    fn init_phase_emits_all_initial_vertices() {
        let mut k = SimplexKernel::new(space2(), InitStrategy::EvenSpread);
        assert!(!k.initialized());
        drive(&mut k, paraboloid, 3);
        assert!(k.initialized());
        assert_eq!(k.observations(), 3);
    }

    #[test]
    fn maximizes_a_paraboloid() {
        let mut k = SimplexKernel::new(space2(), InitStrategy::EvenSpread);
        drive(&mut k, paraboloid, 120);
        let (best, val) = k.best().unwrap();
        assert!(val > 980.0, "best value {val} at {best}");
        assert!((best.get(0) - 62).abs() <= 4, "x={}", best.get(0));
        assert!((best.get(1) - 31).abs() <= 6, "y={}", best.get(1));
    }

    #[test]
    fn extreme_corners_also_converges_but_starts_at_extremes() {
        let mut k = SimplexKernel::new(space2(), InitStrategy::ExtremeCorners);
        let first = k.next_config();
        assert_eq!(
            first.values(),
            &[0, 0],
            "original kernel starts at an extreme corner"
        );
        // Boundary-heavy starts converge noticeably slower (that is §4.1's
        // whole point), so give it a generous budget.
        drive(&mut k, paraboloid, 400);
        assert!(k.best().unwrap().1 > 950.0, "{}", k.best().unwrap().1);
    }

    #[test]
    fn best_tracks_the_maximum_observation() {
        let mut k = SimplexKernel::new(space2(), InitStrategy::EvenSpread);
        let mut max_seen = f64::NEG_INFINITY;
        for _ in 0..60 {
            let cfg = k.next_config();
            let v = paraboloid(&cfg);
            max_seen = max_seen.max(v);
            k.observe(v);
            assert_eq!(k.best().unwrap().1, max_seen);
        }
    }

    #[test]
    fn value_spread_shrinks_as_it_converges() {
        let mut k = SimplexKernel::new(space2(), InitStrategy::EvenSpread);
        drive(&mut k, paraboloid, 5);
        let early = k.value_spread();
        drive(&mut k, paraboloid, 200);
        let late = k.value_spread();
        assert!(
            late < early,
            "spread should shrink: early {early}, late {late}"
        );
        assert!(k.point_spread() < 0.5);
    }

    #[test]
    fn respects_space_bounds_always() {
        let mut k = SimplexKernel::new(space2(), InitStrategy::ExtremeCorners);
        for _ in 0..200 {
            let cfg = k.next_config();
            assert!(
                k.space().is_feasible(&cfg).unwrap(),
                "infeasible proposal {cfg}"
            );
            // Adversarial objective: reward the boundary to push the
            // simplex outward.
            let v = cfg.get(0) as f64 + cfg.get(1) as f64;
            k.observe(v);
        }
        let (best, _) = k.best().unwrap();
        assert_eq!(
            best.values(),
            &[100, 100],
            "should find the boundary optimum"
        );
    }

    #[test]
    fn seeded_simplex_skips_init() {
        let seeds = vec![
            (
                Configuration::new(vec![60, 30]),
                paraboloid(&Configuration::new(vec![60, 30])),
            ),
            (
                Configuration::new(vec![65, 35]),
                paraboloid(&Configuration::new(vec![65, 35])),
            ),
            (
                Configuration::new(vec![55, 28]),
                paraboloid(&Configuration::new(vec![55, 28])),
            ),
        ];
        let mut k = SimplexKernel::with_seeded_simplex(space2(), seeds);
        assert!(k.initialized(), "seeded kernel must skip the init phase");
        drive(&mut k, paraboloid, 40);
        let (best, val) = k.best().unwrap();
        assert!(
            val > 990.0,
            "warm start should converge fast: {val} at {best}"
        );
    }

    #[test]
    fn seeded_simplex_with_too_few_seeds_fills_in() {
        let seeds = vec![(Configuration::new(vec![60, 30]), 900.0)];
        let mut k = SimplexKernel::with_seeded_simplex(space2(), seeds);
        assert!(!k.initialized(), "one seed in 2-D needs two more vertices");
        drive(&mut k, paraboloid, 80);
        assert!(k.best().unwrap().1 > 950.0);
    }

    #[test]
    fn seeded_simplex_keeps_only_best_seeds() {
        // 5 seeds in a 2-D space: kernel keeps the top 3.
        let mk = |x: i64, y: i64| Configuration::new(vec![x, y]);
        let seeds = vec![
            (mk(0, 0), 1.0),
            (mk(10, 10), 2.0),
            (mk(60, 30), 999.0),
            (mk(62, 31), 1000.0),
            (mk(64, 33), 998.0),
        ];
        let k = SimplexKernel::with_seeded_simplex(space2(), seeds);
        assert!(k.initialized());
        assert_eq!(k.best().unwrap().1, 1000.0);
        assert_eq!(k.vertices.len(), 3);
        assert!(k.vertices.iter().all(|v| v.value >= 998.0));
    }

    #[test]
    fn refresh_remeasures_every_vertex() {
        let seeds = vec![
            (Configuration::new(vec![10, 10]), 5.0),
            (Configuration::new(vec![20, 10]), 4.0),
            (Configuration::new(vec![10, 20]), 3.0),
        ];
        let expected: std::collections::BTreeSet<Configuration> =
            seeds.iter().map(|(c, _)| c.clone()).collect();
        let mut k = SimplexKernel::with_seeded_simplex(space2(), seeds);
        k.refresh();
        // The next three proposals are exactly the three vertices.
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..3 {
            seen.insert(k.next_config());
            k.observe(paraboloid(&k.next_config()));
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn expand_around_best_restores_geometry() {
        // All seeds at one point: spread is zero until re-expansion.
        let seeds = vec![
            (Configuration::new(vec![50, 50]), 1.0),
            (Configuration::new(vec![50, 50]), 1.0),
            (Configuration::new(vec![50, 50]), 1.0),
        ];
        let mut k = SimplexKernel::with_seeded_simplex(space2(), seeds);
        assert!(k.point_spread() < 1e-9);
        k.expand_around_best(0.25);
        assert!(k.point_spread() > 0.2, "spread {}", k.point_spread());
        // All vertices still inside the box.
        for v in &k.vertices {
            for (j, &x) in v.point.iter().enumerate() {
                let p = k.space().param(j);
                assert!(x >= p.static_min() as f64 && x <= p.static_max() as f64);
            }
        }
    }

    #[test]
    fn batchable_init_matches_sequential_stepping() {
        let mut seq = SimplexKernel::new(space2(), InitStrategy::EvenSpread);
        let mut bat = seq.clone();
        let batch = bat.batchable_configs();
        assert_eq!(batch.len(), 3, "init proposes the whole initial simplex");
        for v in batch.iter().map(paraboloid) {
            bat.observe(v);
        }
        drive(&mut seq, paraboloid, 3);
        assert_eq!(seq.next_config(), bat.next_config());
        assert_eq!(
            bat.batchable_configs(),
            vec![bat.next_config()],
            "post-init iterations are strictly sequential"
        );
    }

    #[test]
    fn batchable_refresh_lists_remaining_vertices() {
        let seeds = vec![
            (Configuration::new(vec![10, 10]), 5.0),
            (Configuration::new(vec![20, 10]), 4.0),
            (Configuration::new(vec![10, 20]), 3.0),
        ];
        let mut k = SimplexKernel::with_seeded_simplex(space2(), seeds);
        k.refresh();
        assert_eq!(k.batchable_configs().len(), 3);
        k.observe(1.0);
        assert_eq!(k.batchable_configs().len(), 2);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = SimplexKernel::new(space2(), InitStrategy::EvenSpread);
        drive(&mut a, paraboloid, 10);
        let mut b = a.clone();
        drive(&mut b, paraboloid, 50);
        assert!(b.observations() > a.observations());
    }

    #[test]
    fn serde_round_trip_continues_bit_identically() {
        // Interrupt the kernel at several depths — including before the
        // init simplex is complete, where seen_min/seen_max are still at
        // their ±infinity sentinels — and check the revived copy replays
        // the exact proposal/observation trajectory of the original.
        for cut in [0usize, 1, 2, 7, 23, 61] {
            let mut live = SimplexKernel::new(space2(), InitStrategy::EvenSpread);
            drive(&mut live, paraboloid, cut);
            let json = serde_json::to_string(&live).unwrap();
            let mut revived: SimplexKernel = serde_json::from_str(&json).unwrap();
            assert_eq!(revived.seen_min.to_bits(), live.seen_min.to_bits());
            assert_eq!(revived.seen_max.to_bits(), live.seen_max.to_bits());
            for _ in 0..80 {
                assert_eq!(revived.next_config(), live.next_config(), "cut at {cut}");
                let v = paraboloid(&live.next_config());
                live.observe(v);
                revived.observe(v);
            }
            assert_eq!(revived.best(), live.best());
            assert_eq!(revived.observations(), live.observations());
        }
    }
}
