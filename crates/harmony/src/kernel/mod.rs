//! The adaptation controller's tuning kernel.
//!
//! "The kernel of the adaptation controller is a tuning algorithm … based
//! on the simplex method for finding a function's minimum value. … we have
//! adapted the algorithm by simply using the resulting values from the
//! nearest integer point in the space to approximate the performance at
//! the selected point in the continuous space" (§2).
//!
//! The kernel is *ask-tell*: callers pull the next configuration to
//! explore with [`SimplexKernel::next_config`] and push the measured (or,
//! during the §4.2 training stage, *estimated*) performance back with
//! [`SimplexKernel::observe`]. That split is what makes the two-stage
//! tuning process possible without the kernel knowing where numbers come
//! from.

mod init;
mod simplex;

pub use init::InitStrategy;
pub use simplex::{SimplexKernel, SimplexOptions};
