//! Tuning-process metrics (Tables 1 & 2).
//!
//! The paper evaluates a tuning run on more than its final performance:
//! "what we care about in the tuning process is not just getting the best
//! configuration, but also the performance of the system while getting
//! there" (§4.1). These metrics quantify that.

use harmony_space::Configuration;
use serde::{Deserialize, Serialize};

/// One live exploration: iteration number, configuration, measured
/// performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Explored configuration.
    pub config: Configuration,
    /// Measured performance.
    pub performance: f64,
}

/// Thresholds for trace analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReportOptions {
    /// Convergence: the first iteration whose best-so-far is within this
    /// relative tolerance of the final best counts as "converged".
    pub convergence_eps: f64,
    /// A "bad performance iteration" (Table 2) measures below this
    /// fraction of the final best.
    pub bad_fraction: f64,
    /// Length of the initial window over which oscillation statistics are
    /// computed (Table 2's "initial performance oscillation").
    pub initial_window: usize,
}

impl Default for ReportOptions {
    fn default() -> Self {
        ReportOptions {
            convergence_eps: 0.01,
            bad_fraction: 0.75,
            initial_window: 20,
        }
    }
}

/// Summary of one tuning run (the columns of Tables 1 and 2).
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Number of live iterations.
    pub iterations: usize,
    /// Best performance found.
    pub best_performance: f64,
    /// Iteration at which the best configuration was first measured.
    pub best_iteration: usize,
    /// "Convergence time (iterations)": first iteration whose best-so-far
    /// reaches within `convergence_eps` of the final best.
    pub convergence_time: usize,
    /// "Worst performance": the deepest dip during the run (Table 1).
    pub worst_performance: f64,
    /// Count of bad-performance iterations (Table 2's prose).
    pub bad_iterations: usize,
    /// Mean performance over the initial window (Table 2 "initial
    /// performance oscillation average").
    pub initial_mean: f64,
    /// Standard deviation over the initial window (Table 2's parenthesized
    /// value).
    pub initial_std: f64,
}

/// Analyze a trace.
///
/// Returns a zeroed report for an empty trace (nothing was explored).
pub fn analyze_trace(trace: &[TraceEntry], opts: &ReportOptions) -> TuningReport {
    if trace.is_empty() {
        return TuningReport {
            iterations: 0,
            best_performance: 0.0,
            best_iteration: 0,
            convergence_time: 0,
            worst_performance: 0.0,
            bad_iterations: 0,
            initial_mean: 0.0,
            initial_std: 0.0,
        };
    }
    let perfs: Vec<f64> = trace.iter().map(|t| t.performance).collect();
    let best_performance = perfs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let best_iteration = perfs
        .iter()
        .position(|&p| p == best_performance)
        .expect("max exists");
    let worst_performance = perfs.iter().copied().fold(f64::INFINITY, f64::min);

    // Convergence: best-so-far is monotone, so this is the first index
    // reaching the band around the final best.
    let band = best_performance - opts.convergence_eps * best_performance.abs();
    let convergence_time = perfs
        .iter()
        .position(|&p| p >= band)
        .expect("best itself reaches the band");

    let bad_threshold = opts.bad_fraction * best_performance;
    let bad_iterations = perfs.iter().filter(|&&p| p < bad_threshold).count();

    let window = &perfs[..opts.initial_window.min(perfs.len())];
    let initial_mean = harmony_linalg::stats::mean(window);
    let initial_std = harmony_linalg::stats::std_dev(window);

    TuningReport {
        iterations: trace.len(),
        best_performance,
        best_iteration,
        convergence_time,
        worst_performance,
        bad_iterations,
        initial_mean,
        initial_std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(perfs: &[f64]) -> Vec<TraceEntry> {
        perfs
            .iter()
            .enumerate()
            .map(|(i, &p)| TraceEntry {
                iteration: i,
                config: Configuration::new(vec![i as i64]),
                performance: p,
            })
            .collect()
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let r = analyze_trace(&[], &ReportOptions::default());
        assert_eq!(r.iterations, 0);
        assert_eq!(r.best_performance, 0.0);
    }

    #[test]
    fn basic_metrics() {
        let t = trace(&[10.0, 50.0, 30.0, 99.0, 98.0, 99.5]);
        let r = analyze_trace(&t, &ReportOptions::default());
        assert_eq!(r.iterations, 6);
        assert_eq!(r.best_performance, 99.5);
        assert_eq!(r.best_iteration, 5);
        assert_eq!(r.worst_performance, 10.0);
        // 99.0 is within 1% of 99.5, so convergence at iteration 3.
        assert_eq!(r.convergence_time, 3);
        // Bad threshold 74.6: iterations 0, 1, 2 are bad.
        assert_eq!(r.bad_iterations, 3);
    }

    #[test]
    fn initial_window_statistics() {
        let t = trace(&[10.0, 20.0, 30.0, 100.0, 100.0]);
        let opts = ReportOptions {
            initial_window: 3,
            ..Default::default()
        };
        let r = analyze_trace(&t, &opts);
        assert!((r.initial_mean - 20.0).abs() < 1e-12);
        assert!((r.initial_std - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn convergence_detects_early_plateau() {
        // Found the optimum immediately.
        let t = trace(&[100.0, 100.0, 100.0]);
        let r = analyze_trace(&t, &ReportOptions::default());
        assert_eq!(r.convergence_time, 0);
        assert_eq!(r.bad_iterations, 0);
    }

    #[test]
    fn smoother_run_has_smaller_initial_std() {
        let rough = analyze_trace(
            &trace(&[10.0, 90.0, 20.0, 85.0, 90.0]),
            &ReportOptions::default(),
        );
        let smooth = analyze_trace(
            &trace(&[70.0, 80.0, 85.0, 88.0, 90.0]),
            &ReportOptions::default(),
        );
        assert!(smooth.initial_std < rough.initial_std);
        assert!(smooth.worst_performance > rough.worst_performance);
    }
}
