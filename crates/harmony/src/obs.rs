//! Metric handles for the tuning kernel, registered lazily in the
//! process-global [`harmony_obs`] registry.
//!
//! Every accessor caches its `Arc` in a `OnceLock`, so the hot paths
//! (one counter bump per live iteration, one histogram observation per
//! classify/save) never touch the registry lock after first use.
//!
//! Metric names exported here:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `harmony_session_iterations_total` | counter | live measurements observed across all sessions |
//! | `harmony_sessions_finished_total` | counter | sessions closed via `finish()` |
//! | `harmony_sessions_converged_total` | counter | finished sessions that met the spread criteria |
//! | `harmony_session_wall_seconds` | histogram | wall time from session creation to `finish()` |
//! | `harmony_training_iterations_total` | counter | virtual (estimated) training iterations spent |
//! | `harmony_simplex_ops_total{op=…}` | counter | simplex state transitions by kind |
//! | `harmony_db_classify_seconds` | histogram | experience-db classification latency |
//! | `harmony_db_save_seconds` | histogram | experience-db persistence latency |
//! | `harmony_db_saves_total` | counter | successful experience-db saves |
//! | `harmony_sensitivity_reports_total` | counter | sensitivity reports computed from history |

use harmony_obs::metrics::{global, Counter, Histogram, LATENCY_SECONDS};
use std::sync::{Arc, OnceLock};

/// Buckets for whole-session wall time: 100µs up to ~half an hour.
const SESSION_SECONDS: &[f64] = &[
    1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
];

macro_rules! handle {
    ($fn_name:ident, $kind:ty, $init:expr) => {
        pub(crate) fn $fn_name() -> &'static Arc<$kind> {
            static H: OnceLock<Arc<$kind>> = OnceLock::new();
            H.get_or_init(|| $init)
        }
    };
}

handle!(
    iterations_total,
    Counter,
    global().counter(
        "harmony_session_iterations_total",
        "Live tuning iterations observed across all sessions.",
    )
);

handle!(
    sessions_finished_total,
    Counter,
    global().counter(
        "harmony_sessions_finished_total",
        "Tuning sessions closed (including abandoned ones).",
    )
);

handle!(
    sessions_converged_total,
    Counter,
    global().counter(
        "harmony_sessions_converged_total",
        "Finished sessions stopped by the spread criteria rather than the budget.",
    )
);

handle!(
    session_wall_seconds,
    Histogram,
    global().histogram(
        "harmony_session_wall_seconds",
        "Wall time from session creation to finish().",
        SESSION_SECONDS,
    )
);

handle!(
    training_iterations_total,
    Counter,
    global().counter(
        "harmony_training_iterations_total",
        "Virtual iterations answered from prior experience during training stages.",
    )
);

handle!(
    db_classify_seconds,
    Histogram,
    global().histogram(
        "harmony_db_classify_seconds",
        "Experience-db least-squares classification latency.",
        LATENCY_SECONDS,
    )
);

handle!(
    db_save_seconds,
    Histogram,
    global().histogram(
        "harmony_db_save_seconds",
        "Experience-db persistence latency (serialize + atomic rename).",
        LATENCY_SECONDS,
    )
);

handle!(
    db_saves_total,
    Counter,
    global().counter("harmony_db_saves_total", "Successful experience-db saves.",)
);

handle!(
    wal_appends_total,
    Counter,
    global().counter(
        "harmony_db_wal_appends_total",
        "Runs appended to the experience-db write-ahead journal.",
    )
);

handle!(
    wal_flush_seconds,
    Histogram,
    global().histogram(
        "harmony_db_wal_flush_seconds",
        "Write-ahead journal append+flush latency, per run.",
        LATENCY_SECONDS,
    )
);

handle!(
    db_compactions_total,
    Counter,
    global().counter(
        "harmony_db_compactions_total",
        "Journal compactions into a full experience-db snapshot.",
    )
);

/// Touch every database-path metric handle so a freshly started process
/// exposes the full `harmony_db_*` set (as zeros) before any run is
/// classified, journaled, or compacted. Called by daemon startup via
/// `harmony-net`'s preregistration.
pub fn preregister_db_metrics() {
    db_classify_seconds();
    db_save_seconds();
    db_saves_total();
    wal_appends_total();
    wal_flush_seconds();
    db_compactions_total();
}

handle!(
    sensitivity_reports_total,
    Counter,
    global().counter(
        "harmony_sensitivity_reports_total",
        "Sensitivity reports computed (live sweeps and from-history estimates).",
    )
);

/// Per-operation counters for the simplex state machine.
pub(crate) struct SimplexOps {
    pub reflect: Arc<Counter>,
    pub expand: Arc<Counter>,
    pub contract: Arc<Counter>,
    pub shrink: Arc<Counter>,
    pub refresh: Arc<Counter>,
}

pub(crate) fn simplex_ops() -> &'static SimplexOps {
    static H: OnceLock<SimplexOps> = OnceLock::new();
    H.get_or_init(|| {
        let op = |name: &str| {
            global().counter_with(
                "harmony_simplex_ops_total",
                "Simplex kernel state transitions, by operation.",
                &[("op", name)],
            )
        };
        SimplexOps {
            reflect: op("reflect"),
            expand: op("expand"),
            contract: op("contract"),
            shrink: op("shrink"),
            refresh: op("refresh"),
        }
    })
}
