#![warn(missing_docs)]

//! Active Harmony: an automated runtime performance tuning system, with
//! the prior-run improvements of Chung & Hollingsworth (SC 2004).
//!
//! The crate implements the paper's full pipeline:
//!
//! * [`kernel`] — the adaptation controller's tuning kernel: a Nelder-Mead
//!   simplex adapted to discrete spaces (§2), with both the original
//!   extreme-corner initial simplex and the improved evenly-spread one
//!   (§4.1);
//! * [`sensitivity`] — the standalone parameter prioritizing tool (§3);
//! * [`history`] — the experience database, workload characterization and
//!   least-squares classification behind the data analyzer (§4.2);
//! * [`estimate`] — triangulation-based performance estimation for
//!   configurations missing from the historical data (§4.3);
//! * [`tuner`] — two-stage tuning sessions (training on history, then live
//!   measurement) and the convergence/oscillation metrics the paper
//!   reports (Tables 1 & 2);
//! * [`search`] — comparison algorithms from the related-work discussion
//!   (Powell's direction-set method, random and exhaustive search);
//! * [`server`] — the Harmony server façade that wires all of the above
//!   into the workflow of §6: observe characteristics → classify → train →
//!   tune → record the new experience.
//!
//! # Quickstart
//!
//! ```
//! use harmony::prelude::*;
//! use harmony_space::{ParamDef, ParameterSpace};
//!
//! // A toy system: best at (6, 3), worse toward the edges.
//! let space = ParameterSpace::builder()
//!     .param(ParamDef::int("a", 0, 10, 5, 1))
//!     .param(ParamDef::int("b", 0, 10, 5, 1))
//!     .build()
//!     .unwrap();
//! let mut objective = FnObjective::new(|cfg: &Configuration| {
//!     let (a, b) = (cfg.get(0) as f64, cfg.get(1) as f64);
//!     100.0 - (a - 6.0).powi(2) - 2.0 * (b - 3.0).powi(2)
//! });
//!
//! let outcome = Tuner::new(space, TuningOptions::improved()).run(&mut objective);
//! assert!(outcome.best_performance > 95.0);
//! ```

pub mod adaptive;
pub mod estimate;
pub mod factorial;
pub mod history;
pub mod kernel;
pub mod objective;
pub(crate) mod obs;
pub use obs::preregister_db_metrics;
pub mod report;
pub mod search;
pub mod sensitivity;
pub mod server;
pub mod tuner;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::estimate::{estimate_performance, Estimator};
    pub use crate::history::{DataAnalyzer, ExperienceDb, RunHistory, TuningRecord};
    pub use crate::kernel::{InitStrategy, SimplexKernel};
    pub use crate::objective::{CachedObjective, FnObjective, Objective};
    pub use crate::report::TuningReport;
    pub use crate::sensitivity::{Prioritizer, SensitivityReport};
    pub use crate::server::{HarmonyServer, ServerOptions};
    pub use crate::tuner::{Tuner, TuningOptions, TuningOutcome, TuningSession};
    pub use harmony_exec::{Executor, MemoCache};
    pub use harmony_space::Configuration;
}
