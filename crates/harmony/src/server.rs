//! The Harmony server façade: the full §6 workflow in one object.
//!
//! A session against the server runs the loop the paper describes:
//! observe the workload's characteristics → classify them against the
//! experience database → train the kernel from the closest prior run →
//! tune live → store the new experience for next time.

use crate::history::{DataAnalyzer, ExperienceDb, RunHistory};
use crate::objective::Objective;
use crate::sensitivity::{Prioritizer, SensitivityReport, SubspaceFocus};
use crate::tuner::{TrainingMode, Tuner, TuningOptions, TuningOutcome};
use harmony_space::{parse_rsl, Configuration, ParameterSpace, RslError};

/// Server-level options.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Tuning-session options.
    pub tuning: TuningOptions,
    /// How prior experience is injected (§4.2).
    pub training: TrainingMode,
    /// Analyzer (classification mechanism + match gate).
    pub analyzer: DataAnalyzer,
    /// When set, tuning focuses on the `n` most sensitive parameters from
    /// the last prioritization (§3); the rest stay at their defaults.
    pub focus_top_n: Option<usize>,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            tuning: TuningOptions::improved(),
            training: TrainingMode::Replay(12),
            analyzer: DataAnalyzer::new(),
            focus_top_n: None,
        }
    }
}

/// Outcome of a server session: the tuning outcome plus what the server
/// decided along the way.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The live tuning result (best configuration is in *full-space*
    /// coordinates even when tuning was focused).
    pub tuning: TuningOutcome,
    /// Label of the prior run used for training, if any.
    pub trained_from: Option<String>,
    /// Parameter indices that were actually tuned.
    pub tuned_indices: Vec<usize>,
}

/// The Active Harmony tuning server.
#[derive(Debug, Clone)]
pub struct HarmonyServer {
    space: ParameterSpace,
    options: ServerOptions,
    db: ExperienceDb,
    sensitivity: Option<SensitivityReport>,
}

impl HarmonyServer {
    /// Server over a parameter space.
    pub fn new(space: ParameterSpace, options: ServerOptions) -> Self {
        HarmonyServer {
            space,
            options,
            db: ExperienceDb::new(),
            sensitivity: None,
        }
    }

    /// Server from a resource-specification-language document (Appendix B).
    pub fn from_rsl(rsl: &str, options: ServerOptions) -> Result<Self, RslError> {
        Ok(Self::new(parse_rsl(rsl)?, options))
    }

    /// The tuning space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// The experience database.
    pub fn db(&self) -> &ExperienceDb {
        &self.db
    }

    /// Mutable access (e.g. to preload persisted experience).
    pub fn db_mut(&mut self) -> &mut ExperienceDb {
        &mut self.db
    }

    /// Last sensitivity report, if prioritization has run.
    pub fn sensitivity(&self) -> Option<&SensitivityReport> {
        self.sensitivity.as_ref()
    }

    /// Run the parameter prioritizing tool and remember its ranking
    /// ("done once per new workload … amortized over many runs", §3).
    pub fn prioritize(&mut self, objective: &mut dyn Objective) -> &SensitivityReport {
        let report = Prioritizer::new(self.space.clone()).analyze(objective);
        self.sensitivity = Some(report);
        self.sensitivity.as_ref().expect("just set")
    }

    /// Inject an externally computed sensitivity report (e.g. from the
    /// parallel prioritizer).
    pub fn set_sensitivity(&mut self, report: SensitivityReport) {
        self.sensitivity = Some(report);
    }

    /// Run one full tuning session for a workload whose characteristics
    /// were observed as `characteristics` (e.g. the interaction-frequency
    /// distribution from the data analyzer's probe).
    ///
    /// The finished run is recorded in the experience database under
    /// `label`.
    pub fn tune_session(
        &mut self,
        objective: &mut dyn Objective,
        label: &str,
        characteristics: &[f64],
    ) -> SessionOutcome {
        // 1. Classify against prior experience.
        let prior: Option<RunHistory> = self.options.analyzer.select(&self.db, characteristics);
        let trained_from = prior.as_ref().map(|r| r.label.clone());

        // 2. Choose the space: full or focused on the top-n sensitive
        //    parameters.
        let focus: Option<SubspaceFocus> = match (self.options.focus_top_n, &self.sensitivity) {
            (Some(n), Some(report)) => {
                let indices = report.top_n(n);
                Some(SubspaceFocus::new(
                    self.space.clone(),
                    indices,
                    self.space.default_configuration(),
                ))
            }
            _ => None,
        };

        // 3. Tune (two-stage when prior experience exists).
        let outcome = match &focus {
            None => {
                let tuner = Tuner::new(self.space.clone(), self.options.tuning.clone());
                match &prior {
                    Some(history) => {
                        objective_trained(&tuner, objective, history, self.options.training)
                    }
                    None => tuner.run(objective),
                }
            }
            Some(focus) => {
                let reduced = focus.reduced_space();
                let tuner = Tuner::new(reduced.clone(), self.options.tuning.clone());
                // Bridge: measure reduced configs by embedding them.
                let mut bridged = BridgedObjective {
                    focus,
                    inner: objective,
                };
                let prior_reduced = prior.as_ref().map(|h| reduce_history(h, focus));
                let mut out = match &prior_reduced {
                    Some(history) => {
                        objective_trained(&tuner, &mut bridged, history, self.options.training)
                    }
                    None => tuner.run(&mut bridged),
                };
                // Report the outcome in full-space coordinates.
                out.best_configuration = focus.embed(&out.best_configuration);
                for t in &mut out.trace {
                    t.config = focus.embed(&t.config);
                }
                out
            }
        };

        // 4. Record the new experience.
        self.db
            .add_run(outcome.to_history(label, characteristics.to_vec()));

        let tuned_indices = match &focus {
            Some(f) => f.indices().to_vec(),
            None => (0..self.space.len()).collect(),
        };
        SessionOutcome {
            tuning: outcome,
            trained_from,
            tuned_indices,
        }
    }
}

fn objective_trained(
    tuner: &Tuner,
    objective: &mut dyn Objective,
    history: &RunHistory,
    mode: TrainingMode,
) -> TuningOutcome {
    tuner.run_trained(objective, history, mode)
}

/// Project a full-space history onto a focused subspace (dropping the
/// frozen coordinates; performances carry over unchanged).
fn reduce_history(history: &RunHistory, focus: &SubspaceFocus) -> RunHistory {
    let mut out = RunHistory::new(history.label.clone(), history.characteristics.clone());
    for r in &history.records {
        let reduced: Vec<i64> = focus.indices().iter().map(|&i| r.values[i]).collect();
        out.push(&Configuration::new(reduced), r.performance);
    }
    out
}

/// Adapter measuring reduced configurations through the full objective.
struct BridgedObjective<'a> {
    focus: &'a SubspaceFocus,
    inner: &'a mut dyn Objective,
}

impl Objective for BridgedObjective<'_> {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        self.inner.measure(&self.focus.embed(cfg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("big", 0, 40, 20, 1))
            .param(ParamDef::int("small", 0, 40, 20, 1))
            .param(ParamDef::int("dead", 0, 40, 20, 1))
            .build()
            .unwrap()
    }

    fn eval(cfg: &Configuration) -> f64 {
        let a = cfg.get(0) as f64;
        let b = cfg.get(1) as f64;
        500.0 - 2.0 * (a - 31.0).powi(2) - 0.3 * (b - 9.0).powi(2)
    }

    #[test]
    fn cold_session_records_experience() {
        let mut server = HarmonyServer::new(space(), ServerOptions::default());
        let mut obj = FnObjective::new(eval);
        let out = server.tune_session(&mut obj, "w1", &[1.0, 0.0]);
        assert!(out.trained_from.is_none(), "no prior experience yet");
        assert_eq!(server.db().len(), 1);
        assert!(out.tuning.best_performance > 450.0);
        assert_eq!(out.tuned_indices, vec![0, 1, 2]);
    }

    #[test]
    fn second_session_trains_from_the_first() {
        let mut server = HarmonyServer::new(space(), ServerOptions::default());
        let mut obj = FnObjective::new(eval);
        let _ = server.tune_session(&mut obj, "w1", &[1.0, 0.0]);
        let out2 = server.tune_session(&mut obj, "w2", &[0.9, 0.1]);
        assert_eq!(out2.trained_from.as_deref(), Some("w1"));
        assert_eq!(server.db().len(), 2);
        assert!(out2.tuning.training_iterations > 0 || out2.tuning.best_performance > 450.0);
    }

    #[test]
    fn focused_session_tunes_only_top_parameters() {
        let mut server = HarmonyServer::new(
            space(),
            ServerOptions {
                focus_top_n: Some(1),
                ..Default::default()
            },
        );
        let mut obj = FnObjective::new(eval);
        server.prioritize(&mut obj);
        let out = server.tune_session(&mut obj, "w", &[0.5, 0.5]);
        assert_eq!(
            out.tuned_indices,
            vec![0],
            "only the most sensitive parameter is tuned"
        );
        // Frozen parameters stay at their defaults in every explored config.
        for t in &out.tuning.trace {
            assert_eq!(t.config.get(1), 20);
            assert_eq!(t.config.get(2), 20);
        }
        // Still finds the strong parameter's optimum.
        assert!((out.tuning.best_configuration.get(0) - 31).abs() <= 2);
    }

    #[test]
    fn rsl_construction() {
        let server = HarmonyServer::from_rsl(
            "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}",
            ServerOptions::default(),
        )
        .unwrap();
        assert_eq!(server.space().len(), 2);
        assert!(server.space().is_restricted());
    }

    #[test]
    fn sensitivity_is_remembered() {
        let mut server = HarmonyServer::new(space(), ServerOptions::default());
        assert!(server.sensitivity().is_none());
        let mut obj = FnObjective::new(eval);
        server.prioritize(&mut obj);
        let ranked = server.sensitivity().unwrap().ranked();
        assert_eq!(ranked[0].name, "big");
        assert_eq!(ranked[2].name, "dead");
    }
}
