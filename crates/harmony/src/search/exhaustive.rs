//! Exhaustive search — ground truth for small/coarse spaces (Figure 4's
//! "performance obtained through exhaustive search").

use crate::objective::Objective;
use crate::report::TraceEntry;
use crate::search::SearchOutcome;
use harmony_space::{Configuration, ParameterSpace};

/// Evaluate every feasible configuration sequentially.
///
/// Returns `None` if the space yields no feasible configurations (cannot
/// happen for a validly built space, but restricted spaces deserialized
/// from hostile data could).
pub fn exhaustive_search(
    space: &ParameterSpace,
    objective: &mut dyn Objective,
) -> Option<SearchOutcome> {
    let mut trace = Vec::new();
    for (iteration, config) in space.iter().enumerate() {
        let performance = objective.measure(&config);
        trace.push(TraceEntry {
            iteration,
            config,
            performance,
        });
    }
    SearchOutcome::from_trace(trace)
}

/// Evaluate every feasible configuration on `threads` scoped threads.
///
/// Requires a pure evaluation function; configurations are materialized
/// once and chunks are scored independently — the embarrassingly parallel
/// shape scoped threads handle without any shared mutable state.
pub fn par_exhaustive_search<F>(
    space: &ParameterSpace,
    eval: F,
    threads: usize,
) -> Option<SearchOutcome>
where
    F: Fn(&Configuration) -> f64 + Sync,
{
    let configs: Vec<Configuration> = space.iter().collect();
    if configs.is_empty() {
        return None;
    }
    let threads = threads.max(1).min(configs.len());
    let chunk = configs.len().div_ceil(threads);
    let mut perfs: Vec<f64> = vec![0.0; configs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (cfg_chunk, perf_chunk) in configs.chunks(chunk).zip(perfs.chunks_mut(chunk)) {
            let eval = &eval;
            handles.push(scope.spawn(move || {
                for (c, p) in cfg_chunk.iter().zip(perf_chunk.iter_mut()) {
                    *p = eval(c);
                }
            }));
        }
        for h in handles {
            h.join().expect("exhaustive worker panicked");
        }
    });
    let trace: Vec<TraceEntry> = configs
        .into_iter()
        .zip(perfs)
        .enumerate()
        .map(|(iteration, (config, performance))| TraceEntry {
            iteration,
            config,
            performance,
        })
        .collect();
    SearchOutcome::from_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 9, 0, 1))
            .param(ParamDef::int("y", 0, 9, 0, 1))
            .build()
            .unwrap()
    }

    fn f(c: &Configuration) -> f64 {
        -((c.get(0) - 7).pow(2) + (c.get(1) - 2).pow(2)) as f64
    }

    #[test]
    fn visits_every_configuration_and_finds_the_optimum() {
        let s = space();
        let mut obj = FnObjective::new(f);
        let out = exhaustive_search(&s, &mut obj).unwrap();
        assert_eq!(out.trace.len(), 100);
        assert_eq!(out.best_configuration.values(), &[7, 2]);
        assert_eq!(out.best_performance, 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let s = space();
        let mut obj = FnObjective::new(f);
        let seq = exhaustive_search(&s, &mut obj).unwrap();
        for threads in [1, 2, 3, 16] {
            let par = par_exhaustive_search(&s, f, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn respects_restrictions() {
        let s = harmony_space::parse_rsl(
            "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}",
        )
        .unwrap();
        let out = par_exhaustive_search(&s, |c| (c.get(0) * c.get(1)) as f64, 4).unwrap();
        assert_eq!(out.trace.len(), 36);
        // max of B*C subject to B+C<=9: B=4,C=5 or B=5,C=4 → 20.
        assert_eq!(out.best_performance, 20.0);
    }
}
