//! Exhaustive search — ground truth for small/coarse spaces (Figure 4's
//! "performance obtained through exhaustive search").

use crate::objective::Objective;
use crate::report::TraceEntry;
use crate::search::SearchOutcome;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{Configuration, ParameterSpace};

/// Evaluate every feasible configuration sequentially.
///
/// Returns `None` if the space yields no feasible configurations (cannot
/// happen for a validly built space, but restricted spaces deserialized
/// from hostile data could).
pub fn exhaustive_search(
    space: &ParameterSpace,
    objective: &mut dyn Objective,
) -> Option<SearchOutcome> {
    let mut trace = Vec::new();
    for (iteration, config) in space.iter().enumerate() {
        let performance = objective.measure(&config);
        trace.push(TraceEntry {
            iteration,
            config,
            performance,
        });
    }
    SearchOutcome::from_trace(trace)
}

/// Evaluate every feasible configuration on `threads` scoped threads.
///
/// Requires a pure evaluation function; configurations are materialized
/// once and scored on an [`Executor`] — the embarrassingly parallel
/// shape the evaluation engine exists for.
pub fn par_exhaustive_search<F>(
    space: &ParameterSpace,
    eval: F,
    threads: usize,
) -> Option<SearchOutcome>
where
    F: Fn(&Configuration) -> f64 + Sync,
{
    exhaustive_search_with(space, &eval, &Executor::new(threads), None)
}

/// [`par_exhaustive_search`] over a caller-supplied [`Executor`], with
/// an optional [`MemoCache`] consulted before any measurement.
///
/// An exhaustive sweep never revisits a configuration *within* itself,
/// so the cache only pays off when shared with other stages of a
/// session (a sensitivity sweep or a tuning run over the same space);
/// the sweep then both reuses their measurements and seeds the cache
/// for them.
pub fn exhaustive_search_with<F>(
    space: &ParameterSpace,
    eval: &F,
    executor: &Executor,
    cache: Option<&MemoCache>,
) -> Option<SearchOutcome>
where
    F: Fn(&Configuration) -> f64 + Sync,
{
    let configs: Vec<Configuration> = space.iter().collect();
    if configs.is_empty() {
        return None;
    }
    let perfs = match cache {
        Some(c) => executor.evaluate_batch_cached(&configs, c, eval),
        None => executor.evaluate_batch(&configs, eval),
    };
    let trace: Vec<TraceEntry> = configs
        .into_iter()
        .zip(perfs)
        .enumerate()
        .map(|(iteration, (config, performance))| TraceEntry {
            iteration,
            config,
            performance,
        })
        .collect();
    SearchOutcome::from_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 9, 0, 1))
            .param(ParamDef::int("y", 0, 9, 0, 1))
            .build()
            .unwrap()
    }

    fn f(c: &Configuration) -> f64 {
        -((c.get(0) - 7).pow(2) + (c.get(1) - 2).pow(2)) as f64
    }

    #[test]
    fn visits_every_configuration_and_finds_the_optimum() {
        let s = space();
        let mut obj = FnObjective::new(f);
        let out = exhaustive_search(&s, &mut obj).unwrap();
        assert_eq!(out.trace.len(), 100);
        assert_eq!(out.best_configuration.values(), &[7, 2]);
        assert_eq!(out.best_performance, 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let s = space();
        let mut obj = FnObjective::new(f);
        let seq = exhaustive_search(&s, &mut obj).unwrap();
        for threads in [1, 2, 3, 16] {
            let par = par_exhaustive_search(&s, f, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn cached_sweep_matches_and_seeds_the_cache() {
        let s = space();
        let mut obj = FnObjective::new(f);
        let seq = exhaustive_search(&s, &mut obj).unwrap();
        let cache = MemoCache::new(1000);
        let first = exhaustive_search_with(&s, &f, &Executor::new(4), Some(&cache)).unwrap();
        assert_eq!(first, seq);
        assert_eq!(cache.hits(), 0, "a sweep never revisits within itself");
        // A second sweep over the same space is answered from the cache.
        let second = exhaustive_search_with(&s, &f, &Executor::new(4), Some(&cache)).unwrap();
        assert_eq!(second, seq);
        assert_eq!(cache.hits(), 100);
    }

    #[test]
    fn respects_restrictions() {
        let s = harmony_space::parse_rsl(
            "{ harmonyBundle B { int {1 8 1} }}\n{ harmonyBundle C { int {1 9-$B 1} }}",
        )
        .unwrap();
        let out = par_exhaustive_search(&s, |c| (c.get(0) * c.get(1)) as f64, 4).unwrap();
        assert_eq!(out.trace.len(), 36);
        // max of B*C subject to B+C<=9: B=4,C=5 or B=5,C=4 → 20.
        assert_eq!(out.best_performance, 20.0);
    }
}
