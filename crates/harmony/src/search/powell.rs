//! Powell's direction-set method, discretized.
//!
//! §7: "The basic idea behind Powell's Method is to break the N
//! dimensional minimization down into N separate 1-dimension minimization
//! problems. Then, for each 1-dimension problem a binary search is
//! implemented to find the local minimum within a given range. … This
//! method is similar to the Active Harmony parameter prioritizing tool
//! which explores one parameter at a time. However, this method does not
//! explore the relation among parameters while the Nelder-Mead simplex
//! method does."
//!
//! Our discrete adaptation: cycle through the parameter axes; along each
//! axis run a ternary search over the admissible grid values (the discrete
//! analogue of the 1-D binary search, exact for unimodal sections);
//! repeat until a full sweep yields no improvement or the budget runs out.

use crate::objective::Objective;
use crate::report::TraceEntry;
use crate::search::SearchOutcome;
use harmony_space::{Configuration, ParameterSpace};

/// Powell options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowellOptions {
    /// Total measurement budget.
    pub budget: usize,
    /// Maximum full axis sweeps.
    pub max_sweeps: usize,
}

impl Default for PowellOptions {
    fn default() -> Self {
        PowellOptions {
            budget: 300,
            max_sweeps: 10,
        }
    }
}

/// Run the search from the space's default configuration.
pub fn powell_search(
    space: &ParameterSpace,
    objective: &mut dyn Objective,
    opts: PowellOptions,
) -> Option<SearchOutcome> {
    let mut trace: Vec<TraceEntry> = Vec::new();
    let mut current = space.default_configuration();
    let measure = |cfg: &Configuration, trace: &mut Vec<TraceEntry>, obj: &mut dyn Objective| {
        let performance = obj.measure(cfg);
        trace.push(TraceEntry {
            iteration: trace.len(),
            config: cfg.clone(),
            performance,
        });
        performance
    };
    if opts.budget == 0 {
        return None;
    }
    let mut current_value = measure(&current, &mut trace, objective);

    'sweeps: for _ in 0..opts.max_sweeps {
        let mut improved = false;
        for j in 0..space.len() {
            // Restrict the axis section to the values admissible given the
            // already-chosen earlier parameters (Appendix B).
            let (lo_b, hi_b) = match space.effective_bounds(j, &current.values()[..j]) {
                Ok(b) => b,
                Err(_) => continue,
            };
            let values: Vec<i64> = space
                .param(j)
                .static_values()
                .into_iter()
                .filter(|&v| v >= lo_b && v <= hi_b)
                .collect();
            if values.len() < 2 {
                continue;
            }
            // Discrete ternary search over the axis section.
            let mut lo = 0usize;
            let mut hi = values.len() - 1;
            let mut axis_best = current_value;
            let mut axis_best_value = current.get(j);
            let probe = |idx: usize,
                         trace: &mut Vec<TraceEntry>,
                         obj: &mut dyn Objective,
                         axis_best: &mut f64,
                         axis_best_value: &mut i64|
             -> Option<f64> {
                if trace.len() >= opts.budget {
                    return None;
                }
                // Re-project so parameters depending on j stay feasible.
                let cfg = space.project(&current.with_value(j, values[idx]).to_point());
                let p = measure(&cfg, trace, obj);
                if p > *axis_best {
                    *axis_best = p;
                    *axis_best_value = values[idx];
                }
                Some(p)
            };
            while hi - lo > 2 {
                let m1 = lo + (hi - lo) / 3;
                let m2 = hi - (hi - lo) / 3;
                let p1 = match probe(
                    m1,
                    &mut trace,
                    objective,
                    &mut axis_best,
                    &mut axis_best_value,
                ) {
                    Some(p) => p,
                    None => break 'sweeps,
                };
                let p2 = match probe(
                    m2,
                    &mut trace,
                    objective,
                    &mut axis_best,
                    &mut axis_best_value,
                ) {
                    Some(p) => p,
                    None => break 'sweeps,
                };
                if p1 < p2 {
                    lo = m1 + 1;
                } else {
                    hi = m2 - 1;
                }
            }
            for idx in lo..=hi {
                if probe(
                    idx,
                    &mut trace,
                    objective,
                    &mut axis_best,
                    &mut axis_best_value,
                )
                .is_none()
                {
                    break 'sweeps;
                }
            }
            if axis_best > current_value {
                current = space.project(&current.with_value(j, axis_best_value).to_point());
                current_value = axis_best;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    SearchOutcome::from_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 100, 50, 1))
            .param(ParamDef::int("y", 0, 100, 50, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn solves_separable_unimodal_objectives() {
        let f = |c: &Configuration| -(c.get(0) - 73).pow(2) as f64 - (c.get(1) - 12).pow(2) as f64;
        let mut obj = FnObjective::new(f);
        let out = powell_search(&space(), &mut obj, PowellOptions::default()).unwrap();
        assert_eq!(out.best_configuration.values(), &[73, 12]);
    }

    #[test]
    fn handles_mild_interaction_via_repeated_sweeps() {
        // Rotated valley: axis moves alone are suboptimal but repeated
        // sweeps walk it.
        let f = |c: &Configuration| {
            let x = c.get(0) as f64;
            let y = c.get(1) as f64;
            -(x - y).powi(2) - 0.1 * (x - 80.0).powi(2)
        };
        let mut obj = FnObjective::new(f);
        let out = powell_search(
            &space(),
            &mut obj,
            PowellOptions {
                budget: 500,
                max_sweeps: 20,
            },
        )
        .unwrap();
        assert!(
            out.best_configuration.get(0) > 70,
            "{:?}",
            out.best_configuration
        );
        assert!((out.best_configuration.get(0) - out.best_configuration.get(1)).abs() <= 3);
    }

    #[test]
    fn respects_budget() {
        let mut obj = FnObjective::new(|_: &Configuration| 1.0);
        let out = powell_search(
            &space(),
            &mut obj,
            PowellOptions {
                budget: 25,
                max_sweeps: 100,
            },
        )
        .unwrap();
        assert!(out.trace.len() <= 25);
        assert_eq!(obj.count() as usize, out.trace.len());
    }

    #[test]
    fn zero_budget_is_none() {
        let mut obj = FnObjective::new(|_: &Configuration| 1.0);
        assert!(powell_search(
            &space(),
            &mut obj,
            PowellOptions {
                budget: 0,
                max_sweeps: 1
            }
        )
        .is_none());
    }

    #[test]
    fn stops_when_no_improvement() {
        // Flat objective: one sweep, no improvement, stop well under budget.
        let mut obj = FnObjective::new(|_: &Configuration| 5.0);
        let out = powell_search(
            &space(),
            &mut obj,
            PowellOptions {
                budget: 10_000,
                max_sweeps: 50,
            },
        )
        .unwrap();
        assert!(
            out.trace.len() < 200,
            "flat objective should stop early, used {}",
            out.trace.len()
        );
    }
}
