//! Uniform random search baseline.

use crate::objective::Objective;
use crate::report::TraceEntry;
use crate::search::SearchOutcome;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{Configuration, ParameterSpace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sample `budget` feasible configurations uniformly (per-parameter
/// fractions mapped through the restricted space) and keep the best.
///
/// Returns `None` for a zero budget.
pub fn random_search(
    space: &ParameterSpace,
    objective: &mut dyn Objective,
    budget: usize,
    seed: u64,
) -> Option<SearchOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(budget);
    for iteration in 0..budget {
        let fracs: Vec<f64> = (0..space.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let config = space.from_fractions(&fracs);
        let performance = objective.measure(&config);
        trace.push(TraceEntry {
            iteration,
            config,
            performance,
        });
    }
    SearchOutcome::from_trace(trace)
}

/// [`random_search`] for a pure evaluation function, measured through an
/// [`Executor`] with an optional [`MemoCache`] consulted first.
///
/// The sample stream depends only on the seed — configurations never
/// depend on measured values — so the whole budget is drawn up front and
/// evaluated as one batch; the outcome is identical to [`random_search`]
/// with the same seed at any job count (for a deterministic objective
/// when a cache is used: duplicate draws then answer with their first
/// measurement).
pub fn random_search_with<F>(
    space: &ParameterSpace,
    eval: &F,
    budget: usize,
    seed: u64,
    executor: &Executor,
    cache: Option<&MemoCache>,
) -> Option<SearchOutcome>
where
    F: Fn(&Configuration) -> f64 + Sync,
{
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let configs: Vec<Configuration> = (0..budget)
        .map(|_| {
            let fracs: Vec<f64> = (0..space.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
            space.from_fractions(&fracs)
        })
        .collect();
    let perfs = match cache {
        Some(c) => executor.evaluate_batch_cached(&configs, c, eval),
        None => executor.evaluate_batch(&configs, eval),
    };
    let trace: Vec<TraceEntry> = configs
        .into_iter()
        .zip(perfs)
        .enumerate()
        .map(|(iteration, (config, performance))| TraceEntry {
            iteration,
            config,
            performance,
        })
        .collect();
    SearchOutcome::from_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::{Configuration, ParamDef};

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 50, 25, 1))
            .param(ParamDef::int("y", 0, 50, 25, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn zero_budget_is_none() {
        let mut obj = FnObjective::new(|_: &Configuration| 0.0);
        assert!(random_search(&space(), &mut obj, 0, 1).is_none());
    }

    #[test]
    fn finds_decent_points_and_is_deterministic() {
        let f = |c: &Configuration| -((c.get(0) - 30).pow(2) + (c.get(1) - 10).pow(2)) as f64;
        let mut o1 = FnObjective::new(f);
        let a = random_search(&space(), &mut o1, 200, 7).unwrap();
        let mut o2 = FnObjective::new(f);
        let b = random_search(&space(), &mut o2, 200, 7).unwrap();
        assert_eq!(a, b);
        assert!(
            a.best_performance > -100.0,
            "200 samples should get close: {}",
            a.best_performance
        );
        assert_eq!(a.trace.len(), 200);
    }

    #[test]
    fn parallel_matches_sequential_for_the_same_seed() {
        let f = |c: &Configuration| -((c.get(0) - 30).pow(2) + (c.get(1) - 10).pow(2)) as f64;
        let mut obj = FnObjective::new(f);
        let seq = random_search(&space(), &mut obj, 150, 11).unwrap();
        for jobs in [1, 2, 8] {
            let par = random_search_with(&space(), &f, 150, 11, &Executor::new(jobs), None);
            assert_eq!(par.unwrap(), seq, "jobs={jobs}");
        }
        // With a cache, duplicate draws reuse their first measurement —
        // identical here because the objective is deterministic.
        let cache = MemoCache::new(10_000);
        let cached = random_search_with(&space(), &f, 150, 11, &Executor::new(4), Some(&cache));
        assert_eq!(cached.unwrap(), seq);
    }

    #[test]
    fn all_samples_feasible() {
        let s = space();
        let mut obj = FnObjective::new(|_: &Configuration| 0.0);
        let out = random_search(&s, &mut obj, 50, 3).unwrap();
        for t in &out.trace {
            assert!(s.is_feasible(&t.config).unwrap());
        }
    }
}
