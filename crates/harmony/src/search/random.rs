//! Uniform random search baseline.

use crate::objective::Objective;
use crate::report::TraceEntry;
use crate::search::SearchOutcome;
use harmony_space::ParameterSpace;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sample `budget` feasible configurations uniformly (per-parameter
/// fractions mapped through the restricted space) and keep the best.
///
/// Returns `None` for a zero budget.
pub fn random_search(
    space: &ParameterSpace,
    objective: &mut dyn Objective,
    budget: usize,
    seed: u64,
) -> Option<SearchOutcome> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut trace = Vec::with_capacity(budget);
    for iteration in 0..budget {
        let fracs: Vec<f64> = (0..space.len()).map(|_| rng.gen_range(0.0..1.0)).collect();
        let config = space.from_fractions(&fracs);
        let performance = objective.measure(&config);
        trace.push(TraceEntry {
            iteration,
            config,
            performance,
        });
    }
    SearchOutcome::from_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::{Configuration, ParamDef};

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 50, 25, 1))
            .param(ParamDef::int("y", 0, 50, 25, 1))
            .build()
            .unwrap()
    }

    #[test]
    fn zero_budget_is_none() {
        let mut obj = FnObjective::new(|_: &Configuration| 0.0);
        assert!(random_search(&space(), &mut obj, 0, 1).is_none());
    }

    #[test]
    fn finds_decent_points_and_is_deterministic() {
        let f = |c: &Configuration| -((c.get(0) - 30).pow(2) + (c.get(1) - 10).pow(2)) as f64;
        let mut o1 = FnObjective::new(f);
        let a = random_search(&space(), &mut o1, 200, 7).unwrap();
        let mut o2 = FnObjective::new(f);
        let b = random_search(&space(), &mut o2, 200, 7).unwrap();
        assert_eq!(a, b);
        assert!(
            a.best_performance > -100.0,
            "200 samples should get close: {}",
            a.best_performance
        );
        assert_eq!(a.trace.len(), 200);
    }

    #[test]
    fn all_samples_feasible() {
        let s = space();
        let mut obj = FnObjective::new(|_: &Configuration| 0.0);
        let out = random_search(&s, &mut obj, 50, 3).unwrap();
        for t in &out.trace {
            assert!(s.is_feasible(&t.config).unwrap());
        }
    }
}
