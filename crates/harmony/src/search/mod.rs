//! Comparison search algorithms from the related-work discussion (§7).
//!
//! These exist to benchmark the simplex kernel against, and to power
//! experiments that need ground truth (exhaustive search for Figure 4).

mod exhaustive;
mod powell;
mod random;

pub use exhaustive::{exhaustive_search, exhaustive_search_with, par_exhaustive_search};
pub use powell::{powell_search, PowellOptions};
pub use random::{random_search, random_search_with};

use crate::report::TraceEntry;
use harmony_space::Configuration;

/// Common result shape for the baseline searches.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Explorations in order.
    pub trace: Vec<TraceEntry>,
    /// Best configuration found.
    pub best_configuration: Configuration,
    /// Its performance.
    pub best_performance: f64,
}

impl SearchOutcome {
    pub(crate) fn from_trace(trace: Vec<TraceEntry>) -> Option<Self> {
        let best = trace
            .iter()
            .max_by(|a, b| a.performance.total_cmp(&b.performance))?
            .clone();
        Some(SearchOutcome {
            best_configuration: best.config,
            best_performance: best.performance,
            trace,
        })
    }
}
