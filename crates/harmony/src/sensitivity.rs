//! The parameter prioritizing tool (§3).
//!
//! "For each parameter, the software tool will explore possible values
//! v1…vn (based on the distance given) while the rest of the parameters
//! are fixed with the default value. … We defined the sensitivity of a
//! parameter to be ΔP/Δv′ where ΔP = Pa − Pb, Δv′ = v′a − v′b,
//! Pa = max Pi, Pb = min Pi. Also each parameter value is normalized …
//! so that parameters with a wide range of values are not given excessive
//! weight."
//!
//! The tool is standalone ("done once per new workload; the overhead can
//! be amortized over many runs") and comes in a sequential flavour for
//! stateful objectives and a scoped-thread parallel flavour for pure
//! evaluation functions — each parameter's sweep is independent, which is
//! exactly the data-parallel shape the HPC guides recommend exploiting.

use crate::objective::Objective;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{Configuration, ParameterSpace};

/// Sensitivity result for one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSensitivity {
    /// Index in the space.
    pub index: usize,
    /// Parameter name.
    pub name: String,
    /// The paper's ΔP/Δv′ score (≥ 0).
    pub sensitivity: f64,
    /// The swept value with the best observed performance.
    pub best_value: i64,
    /// Raw sweep samples `(value, performance)`.
    pub sweep: Vec<(i64, f64)>,
}

/// Output of the prioritizing tool.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    entries: Vec<ParamSensitivity>,
    explorations: u64,
}

impl SensitivityReport {
    /// Per-parameter results, in space order.
    pub fn entries(&self) -> &[ParamSensitivity] {
        &self.entries
    }

    /// Total configuration explorations spent (the cost being amortized).
    pub fn explorations(&self) -> u64 {
        self.explorations
    }

    /// Entries sorted by descending sensitivity.
    pub fn ranked(&self) -> Vec<&ParamSensitivity> {
        let mut v: Vec<&ParamSensitivity> = self.entries.iter().collect();
        v.sort_by(|a, b| b.sensitivity.total_cmp(&a.sensitivity));
        v
    }

    /// Indices of the `n` most sensitive parameters ("focus on the
    /// performance critical parameters and discard or leave the less
    /// important ones for later").
    pub fn top_n(&self, n: usize) -> Vec<usize> {
        self.ranked().into_iter().take(n).map(|e| e.index).collect()
    }

    /// Estimate sensitivities from recorded explorations instead of fresh
    /// sweeps.
    ///
    /// Prior runs already paid for their measurements; re-using them gives
    /// a free (if rougher) ranking: for each parameter the records are
    /// bucketed by that parameter's value, each bucket keeps its mean
    /// performance, and the bucket means are scored with the same ΔP/Δv′
    /// formula the live tool uses. Parameters whose records never vary
    /// score zero.
    pub fn from_history(
        space: &ParameterSpace,
        records: &[crate::history::TuningRecord],
    ) -> SensitivityReport {
        crate::obs::sensitivity_reports_total().inc();
        let mut entries = Vec::with_capacity(space.len());
        for j in 0..space.len() {
            let p = space.param(j);
            // Bucket mean performance by this parameter's value.
            let mut buckets: std::collections::BTreeMap<i64, (f64, usize)> =
                std::collections::BTreeMap::new();
            for r in records {
                if let Some(&v) = r.values.get(j) {
                    let slot = buckets.entry(v).or_insert((0.0, 0));
                    slot.0 += r.performance;
                    slot.1 += 1;
                }
            }
            let sweep: Vec<(i64, f64)> = buckets
                .into_iter()
                .map(|(v, (sum, n))| (v, sum / n as f64))
                .collect();
            let entry =
                match sweep.iter().copied().reduce(
                    |best, cand| {
                        if cand.1 > best.1 {
                            cand
                        } else {
                            best
                        }
                    },
                ) {
                    Some((best_value, best_perf)) if sweep.len() > 1 => {
                        let (worst_value, worst_perf) = sweep
                            .iter()
                            .copied()
                            .reduce(|w, c| if c.1 < w.1 { c } else { w })
                            .expect("non-empty");
                        let dp = (best_perf - worst_perf).max(0.0);
                        let dv = (p.normalize(best_value) - p.normalize(worst_value)).abs();
                        ParamSensitivity {
                            index: j,
                            name: p.name().to_string(),
                            sensitivity: if dp > 0.0 && dv > 0.0 { dp / dv } else { 0.0 },
                            best_value,
                            sweep,
                        }
                    }
                    _ => ParamSensitivity {
                        index: j,
                        name: p.name().to_string(),
                        sensitivity: 0.0,
                        best_value: sweep.first().map_or_else(|| p.default(), |&(v, _)| v),
                        sweep,
                    },
                };
            entries.push(entry);
        }
        // Historical records are sunk cost: no new explorations spent.
        SensitivityReport {
            entries,
            explorations: 0,
        }
    }

    /// Indices whose sensitivity falls below `fraction` of the maximum —
    /// candidates for discarding.
    pub fn irrelevant(&self, fraction: f64) -> Vec<usize> {
        let max = self
            .entries
            .iter()
            .map(|e| e.sensitivity)
            .fold(0.0f64, f64::max);
        self.entries
            .iter()
            .filter(|e| e.sensitivity <= max * fraction)
            .map(|e| e.index)
            .collect()
    }
}

/// The prioritizing tool.
///
/// # Examples
///
/// ```
/// use harmony::objective::FnObjective;
/// use harmony::sensitivity::Prioritizer;
/// use harmony_space::{Configuration, ParamDef, ParameterSpace};
///
/// let space = ParameterSpace::builder()
///     .param(ParamDef::int("strong", 0, 10, 5, 1))
///     .param(ParamDef::int("weak", 0, 10, 5, 1))
///     .build()
///     .unwrap();
/// let mut objective = FnObjective::new(|cfg: &Configuration| {
///     -(10.0 * (cfg.get(0) - 7) as f64).abs() - (cfg.get(1) - 3) as f64 * 0.1
/// });
/// let report = Prioritizer::new(space).analyze(&mut objective);
/// assert_eq!(report.ranked()[0].name, "strong");
/// assert_eq!(report.top_n(1), vec![0]);
/// ```
#[derive(Debug, Clone)]
pub struct Prioritizer {
    space: ParameterSpace,
    base: Configuration,
    max_samples_per_param: Option<usize>,
    repeats: usize,
    noise_floor_samples: usize,
}

impl Prioritizer {
    /// Tool over a space, sweeping around the space's defaults.
    pub fn new(space: ParameterSpace) -> Self {
        let base = space.default_configuration();
        Prioritizer {
            space,
            base,
            max_samples_per_param: None,
            repeats: 1,
            noise_floor_samples: 0,
        }
    }

    /// Estimate the run-to-run noise floor by measuring the base
    /// configuration `n` extra times (with the same per-value averaging as
    /// the sweeps) and subtract the observed swing from every parameter's
    /// ΔP before scoring. A truly flat parameter then scores ~0 even under
    /// heavy output perturbation. This is an extension beyond the paper's
    /// formula; disabled (0) by default.
    pub fn with_noise_floor(mut self, n: usize) -> Self {
        self.noise_floor_samples = n;
        self
    }

    /// Measure each swept value `r` times and average — the defence
    /// against run-to-run output perturbation (§5.2 evaluates the tool
    /// under ±25% noise; averaging keeps the ΔP/Δv′ ranking stable).
    pub fn with_repeats(mut self, r: usize) -> Self {
        assert!(r >= 1, "need at least one measurement per value");
        self.repeats = r;
        self
    }

    /// Sweep around a custom base configuration instead of the defaults.
    pub fn with_base(mut self, base: Configuration) -> Self {
        assert_eq!(
            base.len(),
            self.space.len(),
            "base configuration dimension mismatch"
        );
        self.base = base;
        self
    }

    /// Cap the number of sampled values per parameter (evenly subsampled);
    /// the paper's "distance between two neighbor values decides the
    /// number of sample points", this lets expensive systems coarsen it.
    pub fn with_max_samples(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples to compute a swing");
        self.max_samples_per_param = Some(n);
        self
    }

    /// The values swept for parameter `j`.
    fn sweep_values(&self, j: usize) -> Vec<i64> {
        let all = self.space.param(j).static_values();
        match self.max_samples_per_param {
            Some(cap) if all.len() > cap => {
                let last = all.len() - 1;
                (0..cap).map(|k| all[(k * last) / (cap - 1)]).collect()
            }
            _ => all,
        }
    }

    /// One averaged measurement of a configuration.
    fn measure_avg(
        &self,
        objective: &mut dyn Objective,
        cfg: &Configuration,
        count: &mut u64,
    ) -> f64 {
        let mut sum = 0.0;
        for _ in 0..self.repeats {
            *count += 1;
            sum += objective.measure(cfg);
        }
        sum / self.repeats as f64
    }

    /// Observed swing of repeated base-configuration measurements — the
    /// noise floor subtracted from every ΔP when enabled.
    fn noise_floor(&self, objective: &mut dyn Objective, count: &mut u64) -> f64 {
        if self.noise_floor_samples < 2 {
            return 0.0;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..self.noise_floor_samples {
            let v = self.measure_avg(objective, &self.base, count);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }

    /// Score one parameter's sweep with the paper's ΔP/Δv′ formula, with a
    /// pre-measured noise floor subtracted from ΔP (0 when disabled).
    fn score_with_floor(&self, j: usize, sweep: Vec<(i64, f64)>, floor: f64) -> ParamSensitivity {
        let p = self.space.param(j);
        let (mut amax, mut amin) = (0usize, 0usize);
        for (k, &(_, perf)) in sweep.iter().enumerate() {
            if perf > sweep[amax].1 {
                amax = k;
            }
            if perf < sweep[amin].1 {
                amin = k;
            }
        }
        let dp = (sweep[amax].1 - sweep[amin].1 - floor).max(0.0);
        let dv = (p.normalize(sweep[amax].0) - p.normalize(sweep[amin].0)).abs();
        // Distinct grid values always have dv > 0; a flat sweep has dp = 0
        // and scores 0 regardless.
        let sensitivity = if dp <= 0.0 {
            0.0
        } else if dv > 0.0 {
            dp / dv
        } else {
            0.0
        };
        ParamSensitivity {
            index: j,
            name: p.name().to_string(),
            sensitivity,
            best_value: sweep[amax].0,
            sweep,
        }
    }

    /// Run the tool against a (possibly stateful) objective.
    pub fn analyze(&self, objective: &mut dyn Objective) -> SensitivityReport {
        crate::obs::sensitivity_reports_total().inc();
        let mut entries = Vec::with_capacity(self.space.len());
        let mut explorations = 0u64;
        let floor = self.noise_floor(objective, &mut explorations);
        for j in 0..self.space.len() {
            let sweep: Vec<(i64, f64)> = self
                .sweep_values(j)
                .into_iter()
                .map(|v| {
                    let cfg = self.base.with_value(j, v);
                    (v, self.measure_avg(objective, &cfg, &mut explorations))
                })
                .collect();
            entries.push(self.score_with_floor(j, sweep, floor));
        }
        SensitivityReport {
            entries,
            explorations,
        }
    }

    /// Parallel variant for pure evaluation functions: the sweeps run
    /// on an [`Executor`] with `threads` jobs.
    pub fn analyze_parallel<F>(&self, eval: F, threads: usize) -> SensitivityReport
    where
        F: Fn(&Configuration) -> f64 + Sync,
    {
        self.analyze_with(&eval, &Executor::new(threads), None)
    }

    /// Run the tool through an [`Executor`], optionally consulting a
    /// [`MemoCache`] before any measurement.
    ///
    /// Every `(parameter, value, repeat)` probe is independent, so the
    /// whole sweep is flattened into one batch; results are identical
    /// to [`analyze`](Self::analyze) for a pure evaluation function at
    /// any job count. The noise floor (when enabled) is always measured
    /// uncached and sequentially — its entire purpose is to observe
    /// fresh run-to-run swing, which a memo of the first sample would
    /// hide.
    pub fn analyze_with<F>(
        &self,
        eval: &F,
        executor: &Executor,
        cache: Option<&MemoCache>,
    ) -> SensitivityReport
    where
        F: Fn(&Configuration) -> f64 + Sync,
    {
        crate::obs::sensitivity_reports_total().inc();
        let mut explorations = 0u64;
        // Noise floor first (uncached: see above).
        let floor = if self.noise_floor_samples >= 2 {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for _ in 0..self.noise_floor_samples {
                let mut sum = 0.0;
                for _ in 0..self.repeats {
                    explorations += 1;
                    sum += eval(&self.base);
                }
                let v = sum / self.repeats as f64;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            hi - lo
        } else {
            0.0
        };
        // Flatten every (parameter, value, repeat) probe into one batch.
        let sweeps: Vec<Vec<i64>> = (0..self.space.len())
            .map(|j| self.sweep_values(j))
            .collect();
        let mut batch: Vec<Configuration> = Vec::new();
        for (j, values) in sweeps.iter().enumerate() {
            for &v in values {
                for _ in 0..self.repeats {
                    batch.push(self.base.with_value(j, v));
                }
            }
        }
        explorations += batch.len() as u64;
        let measured = match cache {
            Some(c) => executor.evaluate_batch_cached(&batch, c, eval),
            None => executor.evaluate_batch(&batch, eval),
        };
        // Reassemble per-value averages in sweep order.
        let mut results = measured.iter();
        let entries = sweeps
            .into_iter()
            .enumerate()
            .map(|(j, values)| {
                let sweep: Vec<(i64, f64)> = values
                    .into_iter()
                    .map(|v| {
                        let mut sum = 0.0;
                        for _ in 0..self.repeats {
                            sum += results.next().expect("one result per probe");
                        }
                        (v, sum / self.repeats as f64)
                    })
                    .collect();
                self.score_with_floor(j, sweep, floor)
            })
            .collect();
        SensitivityReport {
            entries,
            explorations,
        }
    }
}

/// A focus onto the `n` most sensitive parameters: tuning happens in the
/// reduced space "while leaving the rest of the parameters with their
/// default values" (§5.2).
#[derive(Debug, Clone)]
pub struct SubspaceFocus {
    full: ParameterSpace,
    indices: Vec<usize>,
    base: Configuration,
}

impl SubspaceFocus {
    /// Focus a space onto the given parameter indices, freezing the rest
    /// at `base`'s values.
    ///
    /// # Panics
    /// Panics if indices are out of range, duplicated, or any selected
    /// parameter carries an Appendix-B restriction (restricted bounds may
    /// reference frozen parameters; keep those in the full space).
    pub fn new(full: ParameterSpace, mut indices: Vec<usize>, base: Configuration) -> Self {
        assert_eq!(base.len(), full.len(), "base dimension mismatch");
        indices.sort_unstable();
        for w in indices.windows(2) {
            assert_ne!(w[0], w[1], "duplicate focus index {}", w[0]);
        }
        for &i in &indices {
            assert!(i < full.len(), "focus index {i} out of range");
            assert!(
                !full.param(i).is_restricted(),
                "cannot focus restricted parameter {:?}",
                full.param(i).name()
            );
        }
        SubspaceFocus {
            full,
            indices,
            base,
        }
    }

    /// The reduced space (one dimension per focused parameter).
    pub fn reduced_space(&self) -> ParameterSpace {
        ParameterSpace::new(
            self.indices
                .iter()
                .map(|&i| self.full.param(i).clone())
                .collect(),
        )
        .expect("reduced space inherits valid params")
    }

    /// Embed a reduced configuration back into the full space.
    pub fn embed(&self, reduced: &Configuration) -> Configuration {
        assert_eq!(
            reduced.len(),
            self.indices.len(),
            "reduced dimension mismatch"
        );
        let mut values = self.base.values().to_vec();
        for (k, &i) in self.indices.iter().enumerate() {
            values[i] = reduced.get(k);
        }
        Configuration::new(values)
    }

    /// The focused indices (sorted).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    fn space3() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("strong", 0, 10, 5, 1))
            .param(ParamDef::int("weak", 0, 10, 5, 1))
            .param(ParamDef::int("dead", 0, 10, 5, 1))
            .build()
            .unwrap()
    }

    fn eval(cfg: &Configuration) -> f64 {
        let a = cfg.get(0) as f64;
        let b = cfg.get(1) as f64;
        100.0 - 5.0 * (a - 7.0).powi(2) - 0.5 * (b - 3.0).powi(2)
    }

    #[test]
    fn ranks_parameters_by_impact() {
        let p = Prioritizer::new(space3());
        let mut obj = FnObjective::new(eval);
        let report = p.analyze(&mut obj);
        let ranked = report.ranked();
        assert_eq!(ranked[0].name, "strong");
        assert_eq!(ranked[1].name, "weak");
        assert_eq!(ranked[2].name, "dead");
        assert_eq!(ranked[2].sensitivity, 0.0);
        assert_eq!(report.explorations(), 33); // 11 values × 3 params
        assert_eq!(obj.count(), 33);
    }

    #[test]
    fn finds_best_value_per_parameter() {
        let p = Prioritizer::new(space3());
        let report = p.analyze(&mut FnObjective::new(eval));
        assert_eq!(report.entries()[0].best_value, 7);
        assert_eq!(report.entries()[1].best_value, 3);
    }

    #[test]
    fn top_n_and_irrelevant() {
        let p = Prioritizer::new(space3());
        let report = p.analyze(&mut FnObjective::new(eval));
        assert_eq!(report.top_n(1), vec![0]);
        assert_eq!(report.top_n(2), vec![0, 1]);
        assert!(report.irrelevant(0.01).contains(&2));
        assert!(!report.irrelevant(0.01).contains(&0));
    }

    #[test]
    fn history_estimate_ranks_like_the_live_tool() {
        use crate::history::RunHistory;
        let space = space3();
        // Records covering a grid along each axis pair.
        let mut run = RunHistory::new("prior", vec![0.5]);
        for a in [0, 2, 5, 7, 10] {
            for b in [0, 3, 6, 10] {
                let cfg = space
                    .default_configuration()
                    .with_value(0, a)
                    .with_value(1, b);
                run.push(&cfg, eval(&cfg));
            }
        }
        let report = SensitivityReport::from_history(&space, &run.records);
        let ranked = report.ranked();
        assert_eq!(ranked[0].name, "strong");
        assert_eq!(ranked[2].name, "dead");
        assert_eq!(
            ranked[2].sensitivity, 0.0,
            "never-varied parameter scores zero"
        );
        assert_eq!(
            report.explorations(),
            0,
            "history costs no new measurements"
        );
    }

    #[test]
    fn history_estimate_handles_empty_records() {
        let space = space3();
        let report = SensitivityReport::from_history(&space, &[]);
        assert_eq!(report.entries().len(), 3);
        assert!(report.entries().iter().all(|e| e.sensitivity == 0.0));
    }

    #[test]
    fn parallel_matches_sequential() {
        let p = Prioritizer::new(space3());
        let seq = p.analyze(&mut FnObjective::new(eval));
        for threads in [1, 2, 7] {
            let par = p.analyze_parallel(eval, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn subsampling_caps_explorations() {
        let p = Prioritizer::new(space3()).with_max_samples(3);
        let report = p.analyze(&mut FnObjective::new(eval));
        assert_eq!(report.explorations(), 9);
        // Endpoint values always included.
        let sweep0: Vec<i64> = report.entries()[0].sweep.iter().map(|&(v, _)| v).collect();
        assert_eq!(sweep0, vec![0, 5, 10]);
    }

    #[test]
    fn custom_base_changes_the_sweep_context() {
        // With an interaction, the base matters; here we just assert the
        // base is respected in the explored configurations.
        let p = Prioritizer::new(space3()).with_base(Configuration::new(vec![1, 2, 3]));
        let mut seen_base = true;
        {
            let mut obj = FnObjective::new(|cfg: &Configuration| {
                // Whenever parameter 0 is swept, others must hold 2 and 3.
                if cfg.get(1) != 2 && cfg.get(2) != 3 {
                    seen_base = false;
                }
                0.0
            });
            let _ = p.analyze(&mut obj);
        }
        assert!(seen_base);
    }

    #[test]
    fn flat_objective_scores_zero_everywhere() {
        let p = Prioritizer::new(space3());
        let report = p.analyze(&mut FnObjective::new(|_| 42.0));
        for e in report.entries() {
            assert_eq!(e.sensitivity, 0.0, "{}", e.name);
        }
    }

    #[test]
    fn subspace_focus_embeds_correctly() {
        let space = space3();
        let base = Configuration::new(vec![9, 8, 7]);
        let focus = SubspaceFocus::new(space, vec![2, 0], base);
        assert_eq!(focus.indices(), &[0, 2]);
        let reduced = focus.reduced_space();
        assert_eq!(reduced.len(), 2);
        assert_eq!(reduced.param(0).name(), "strong");
        assert_eq!(reduced.param(1).name(), "dead");
        let full = focus.embed(&Configuration::new(vec![1, 2]));
        assert_eq!(full.values(), &[1, 8, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate focus index")]
    fn subspace_focus_rejects_duplicates() {
        let space = space3();
        let base = space.default_configuration();
        let _ = SubspaceFocus::new(space, vec![0, 0], base);
    }
}
