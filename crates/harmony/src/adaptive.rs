//! Continuous adaptation: re-tune when the workload drifts.
//!
//! The paper's motivation (§1): "when the environment for the systems or
//! the applications changes rapidly, there is frequently no single
//! configuration good for all situations". This module closes that loop:
//! each monitoring period the data analyzer's characteristic probe is
//! compared against the characteristics the current configuration was
//! tuned for; if the workload has drifted beyond a threshold, a fresh
//! tuning session runs (warm-started from the experience database as
//! usual) and the system moves to the new configuration.

use crate::objective::Objective;
use crate::server::{HarmonyServer, ServerOptions, SessionOutcome};
use harmony_linalg::stats::euclidean;
use harmony_space::{Configuration, ParameterSpace};

/// Adaptation policy.
#[derive(Debug, Clone)]
pub struct AdaptiveOptions {
    /// Characteristic-space distance beyond which the workload counts as
    /// changed and a re-tune is triggered.
    pub drift_threshold: f64,
    /// Underlying server options (training mode, analyzer, focus).
    pub server: ServerOptions,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            drift_threshold: 0.10,
            server: ServerOptions::default(),
        }
    }
}

/// What the controller decided for one monitoring period.
#[derive(Debug, Clone)]
pub enum Decision {
    /// Workload unchanged (distance below threshold): keep the current
    /// configuration.
    Steady {
        /// Distance between the observed and the tuned-for
        /// characteristics.
        drift: f64,
    },
    /// Workload changed (or first period): a tuning session ran.
    Retuned {
        /// Drift that triggered the session (`None` on the first period).
        drift: Option<f64>,
        /// The session's outcome.
        outcome: SessionOutcome,
    },
}

/// The adaptation controller: wraps a [`HarmonyServer`] with drift
/// detection and a notion of the currently deployed configuration.
#[derive(Debug, Clone)]
pub struct AdaptiveTuner {
    server: HarmonyServer,
    options: AdaptiveOptions,
    tuned_for: Option<Vec<f64>>,
    deployed: Option<Configuration>,
    sessions: u64,
}

impl AdaptiveTuner {
    /// Controller over a space.
    pub fn new(space: ParameterSpace, options: AdaptiveOptions) -> Self {
        let server = HarmonyServer::new(space, options.server.clone());
        AdaptiveTuner {
            server,
            options,
            tuned_for: None,
            deployed: None,
            sessions: 0,
        }
    }

    /// The wrapped server (e.g. to preload experience or sensitivity).
    pub fn server(&self) -> &HarmonyServer {
        &self.server
    }

    /// Mutable access to the wrapped server.
    pub fn server_mut(&mut self) -> &mut HarmonyServer {
        &mut self.server
    }

    /// The configuration currently deployed, if any session has run.
    pub fn deployed(&self) -> Option<&Configuration> {
        self.deployed.as_ref()
    }

    /// Number of tuning sessions run so far.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// One monitoring period: compare the probe's characteristics against
    /// what the deployed configuration was tuned for; re-tune on drift.
    pub fn observe(
        &mut self,
        objective: &mut dyn Objective,
        label: &str,
        characteristics: &[f64],
    ) -> Decision {
        let drift = self
            .tuned_for
            .as_ref()
            .filter(|t| t.len() == characteristics.len())
            .map(|t| euclidean(t, characteristics));
        match drift {
            Some(d) if d <= self.options.drift_threshold => Decision::Steady { drift: d },
            _ => {
                let outcome = self.server.tune_session(objective, label, characteristics);
                self.tuned_for = Some(characteristics.to_vec());
                self.deployed = Some(outcome.tuning.best_configuration.clone());
                self.sessions += 1;
                Decision::Retuned { drift, outcome }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 40, 20, 1))
            .param(ParamDef::int("y", 0, 40, 20, 1))
            .build()
            .unwrap()
    }

    /// A system whose optimum tracks the first workload characteristic.
    fn objective(w0: f64) -> FnObjective<impl FnMut(&Configuration) -> f64> {
        FnObjective::new(move |cfg: &Configuration| {
            let peak = 5.0 + 30.0 * w0;
            100.0 - (cfg.get(0) as f64 - peak).powi(2) - 0.2 * (cfg.get(1) as f64 - 15.0).powi(2)
        })
    }

    #[test]
    fn first_period_always_tunes() {
        let mut at = AdaptiveTuner::new(space(), AdaptiveOptions::default());
        assert!(at.deployed().is_none());
        let mut obj = objective(0.2);
        let d = at.observe(&mut obj, "w", &[0.2, 0.8]);
        assert!(matches!(d, Decision::Retuned { drift: None, .. }));
        assert_eq!(at.sessions(), 1);
        assert!(at.deployed().is_some());
    }

    #[test]
    fn small_drift_keeps_the_configuration() {
        let mut at = AdaptiveTuner::new(space(), AdaptiveOptions::default());
        let mut obj = objective(0.2);
        let _ = at.observe(&mut obj, "w", &[0.2, 0.8]);
        let deployed = at.deployed().unwrap().clone();
        let d = at.observe(&mut obj, "w", &[0.22, 0.78]);
        match d {
            Decision::Steady { drift } => assert!(drift < 0.10, "drift {drift}"),
            other => panic!("expected steady, got {other:?}"),
        }
        assert_eq!(at.sessions(), 1);
        assert_eq!(at.deployed().unwrap(), &deployed);
    }

    #[test]
    fn large_drift_triggers_a_retune_toward_the_new_optimum() {
        let mut at = AdaptiveTuner::new(space(), AdaptiveOptions::default());
        let mut obj = objective(0.1);
        let _ = at.observe(&mut obj, "w1", &[0.1, 0.9]);
        let old = at.deployed().unwrap().clone();

        // The workload flips: the optimum of x moves from ~8 to ~32.
        let mut obj2 = objective(0.9);
        let d = at.observe(&mut obj2, "w2", &[0.9, 0.1]);
        assert!(matches!(d, Decision::Retuned { drift: Some(_), .. }));
        assert_eq!(at.sessions(), 2);
        let new = at.deployed().unwrap();
        assert_ne!(new, &old, "configuration should move with the workload");
        assert!(
            (new.get(0) - 32).abs() <= 4,
            "new optimum near 32, got {}",
            new.get(0)
        );
    }

    #[test]
    fn retunes_accumulate_experience_in_the_server() {
        let mut at = AdaptiveTuner::new(space(), AdaptiveOptions::default());
        let mut a = objective(0.1);
        let _ = at.observe(&mut a, "w1", &[0.1, 0.9]);
        let mut b = objective(0.9);
        let _ = at.observe(&mut b, "w2", &[0.9, 0.1]);
        assert_eq!(at.server().db().len(), 2);
        // Returning to the first workload trains from its stored run.
        let mut c = objective(0.1);
        let d = at.observe(&mut c, "w1-again", &[0.11, 0.89]);
        match d {
            Decision::Retuned { outcome, .. } => {
                assert_eq!(outcome.trained_from.as_deref(), Some("w1"));
            }
            other => panic!("expected a retune, got {other:?}"),
        }
    }

    #[test]
    fn dimension_change_counts_as_new_workload() {
        let mut at = AdaptiveTuner::new(space(), AdaptiveOptions::default());
        let mut obj = objective(0.5);
        let _ = at.observe(&mut obj, "w", &[0.5, 0.5]);
        // A probe with a different characteristic arity cannot be compared:
        // treat as changed.
        let d = at.observe(&mut obj, "w-wide", &[0.5, 0.3, 0.2]);
        assert!(matches!(d, Decision::Retuned { .. }));
    }
}
