//! Performance estimation by triangulation (§4.3).
//!
//! "If the parameter values in the historical data do not match those in
//! the current configuration … we use triangulation with interpolation or
//! extrapolation to estimate the performance at those 'missing'
//! configuration points": pick k recorded vertices near the target, fit
//! the hyperplane through their `(configuration, performance)` points —
//! `x = A⁻¹b`, least squares when over/under-determined — and evaluate it
//! at the target (`Pt = [Ct 1]·x`).

use crate::history::TuningRecord;
use harmony_linalg::{lstsq, Matrix};
use harmony_space::{Configuration, ParameterSpace};
use std::collections::HashMap;

/// How many vertices to use: the paper's simplex has `N+1` vertices for
/// `N` parameters; we take a few extra when available so noisy records
/// average out in the least-squares fit.
fn vertex_count(dims: usize, available: usize) -> usize {
    (dims + 1).min(available).max(1.min(available))
}

/// Estimate the performance of `target` from historical records.
///
/// Returns `None` when there are no records at all. An exact match in the
/// records short-circuits to its recorded performance. Coordinates are
/// normalized before fitting so wide-range parameters don't dominate the
/// conditioning (the fit itself is affine-equivalent either way).
///
/// One-shot convenience over [`Estimator`]; callers issuing many queries
/// against the same records (the replay training stage, virtual search)
/// should build the [`Estimator`] once and reuse it.
pub fn estimate_performance(
    space: &ParameterSpace,
    records: &[TuningRecord],
    target: &Configuration,
) -> Option<f64> {
    Estimator::new(space, records).estimate(target)
}

/// A reusable estimation index over one set of historical records.
///
/// Construction is a single O(n) pass that hashes every recorded
/// configuration for exact-match lookup and pre-normalizes its
/// coordinates; each [`estimate`](Estimator::estimate) is then O(n) — a
/// hash probe, one distance pass, and an O(n) partial select of the k
/// nearest vertices (`select_nth_unstable_by`) instead of a full
/// O(n log n) sort — followed by the fixed-size k-vertex fit.
#[derive(Debug, Clone)]
pub struct Estimator<'a> {
    space: &'a ParameterSpace,
    records: &'a [TuningRecord],
    /// First-recorded performance per exact configuration (first wins,
    /// matching the linear-scan short-circuit this index replaces).
    exact: HashMap<&'a [i64], f64>,
    /// Normalized coordinates per record, computed once.
    normalized: Vec<Vec<f64>>,
}

impl<'a> Estimator<'a> {
    /// Build the index.
    pub fn new(space: &'a ParameterSpace, records: &'a [TuningRecord]) -> Self {
        let mut exact: HashMap<&[i64], f64> = HashMap::with_capacity(records.len());
        let normalized = records
            .iter()
            .map(|r| {
                exact.entry(r.values.as_slice()).or_insert(r.performance);
                space.normalize(&Configuration::new(r.values.clone()))
            })
            .collect();
        Estimator {
            space,
            records,
            exact,
            normalized,
        }
    }

    /// Estimate the performance of `target` (see
    /// [`estimate_performance`]).
    pub fn estimate(&self, target: &Configuration) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        assert_eq!(
            target.len(),
            self.space.len(),
            "estimate: dimension mismatch"
        );

        // Exact match wins.
        if let Some(&p) = self.exact.get(target.values()) {
            return Some(p);
        }

        // "Currently our implementation uses vertices that are close to
        // the target vertex": take the k nearest by normalized distance.
        // Ties break by record index, the order the old stable full sort
        // produced.
        let tn = self.space.normalize(target);
        let mut by_distance: Vec<(f64, usize)> = self
            .normalized
            .iter()
            .enumerate()
            .map(|(i, rn)| {
                let d2: f64 = rn.iter().zip(&tn).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, i)
            })
            .collect();
        let k = vertex_count(self.space.len(), by_distance.len());
        let cmp = |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
        if k < by_distance.len() {
            by_distance.select_nth_unstable_by(k - 1, cmp);
        }
        let chosen = &mut by_distance[..k];
        chosen.sort_unstable_by(cmp);

        // A = [C'_i 1], b = P_i in normalized coordinates. The fit is done
        // in *centered* form — subtract the mean coordinate and mean
        // performance, fit the slope, add the means back — which is
        // algebraically identical for determined/over-determined systems
        // but makes the regularized under-determined solution shrink
        // toward the local mean performance instead of toward zero (one
        // record estimates itself everywhere).
        let b: Vec<f64> = chosen
            .iter()
            .map(|&(_, i)| self.records[i].performance)
            .collect();
        let mean_b = b.iter().sum::<f64>() / b.len() as f64;
        if chosen.len() == 1 {
            return Some(mean_b);
        }
        let coords: Vec<&[f64]> = chosen
            .iter()
            .map(|&(_, i)| self.normalized[i].as_slice())
            .collect();
        let dims = self.space.len();
        let mean_c: Vec<f64> = (0..dims)
            .map(|j| coords.iter().map(|c| c[j]).sum::<f64>() / coords.len() as f64)
            .collect();
        let rows: Vec<Vec<f64>> = coords
            .iter()
            .map(|c| c.iter().zip(&mean_c).map(|(x, m)| x - m).collect())
            .collect();
        let b_centered: Vec<f64> = b.iter().map(|p| p - mean_b).collect();
        let a = Matrix::from_rows(&rows);
        let x = lstsq(&a, &b_centered).ok()?;

        let pt: f64 = mean_b
            + tn.iter()
                .zip(&mean_c)
                .zip(&x)
                .map(|((t, m), xi)| (t - m) * xi)
                .sum::<f64>();
        pt.is_finite().then_some(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_space::ParamDef;

    fn space2() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("a", 0, 10, 5, 1))
            .param(ParamDef::int("b", 0, 10, 5, 1))
            .build()
            .unwrap()
    }

    fn rec(values: Vec<i64>, performance: f64) -> TuningRecord {
        TuningRecord {
            values,
            performance,
        }
    }

    /// The affine ground truth used across tests: p = 3a + 2b + 10.
    fn plane(a: i64, b: i64) -> f64 {
        3.0 * a as f64 + 2.0 * b as f64 + 10.0
    }

    #[test]
    fn no_records_gives_none() {
        let s = space2();
        assert_eq!(
            estimate_performance(&s, &[], &s.default_configuration()),
            None
        );
    }

    #[test]
    fn exact_match_short_circuits() {
        let s = space2();
        let records = vec![rec(vec![5, 5], 123.0), rec(vec![1, 1], 50.0)];
        let t = Configuration::new(vec![5, 5]);
        assert_eq!(estimate_performance(&s, &records, &t), Some(123.0));
    }

    #[test]
    fn interpolates_a_plane_exactly() {
        // Figure 3: three configurations form a plane in (a, b, P); the
        // target's estimate falls on it.
        let s = space2();
        let records = vec![
            rec(vec![0, 0], plane(0, 0)),
            rec(vec![10, 0], plane(10, 0)),
            rec(vec![0, 10], plane(0, 10)),
        ];
        let t = Configuration::new(vec![4, 6]);
        let est = estimate_performance(&s, &records, &t).unwrap();
        assert!(
            (est - plane(4, 6)).abs() < 1e-9,
            "est {est} vs truth {}",
            plane(4, 6)
        );
    }

    #[test]
    fn extrapolates_beyond_the_simplex() {
        let s = space2();
        let records = vec![
            rec(vec![2, 2], plane(2, 2)),
            rec(vec![4, 2], plane(4, 2)),
            rec(vec![2, 4], plane(2, 4)),
        ];
        let t = Configuration::new(vec![9, 9]);
        let est = estimate_performance(&s, &records, &t).unwrap();
        assert!((est - plane(9, 9)).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_single_record_estimates_constant() {
        let s = space2();
        let records = vec![rec(vec![3, 3], 77.0)];
        let t = Configuration::new(vec![8, 1]);
        let est = estimate_performance(&s, &records, &t).unwrap();
        // With one record the least-squares hyperplane is (near-)constant.
        assert!((est - 77.0).abs() < 1.0, "est {est}");
    }

    #[test]
    fn two_records_fit_the_line_through_them() {
        let s = space2();
        let records = vec![rec(vec![0, 0], 10.0), rec(vec![10, 0], 40.0)];
        let t = Configuration::new(vec![5, 0]);
        let est = estimate_performance(&s, &records, &t).unwrap();
        assert!((est - 25.0).abs() < 0.5, "midpoint estimate {est}");
    }

    #[test]
    fn uses_nearest_vertices_for_a_curved_surface() {
        // Quadratic surface: local fits near the target beat global ones.
        let s = space2();
        let f = |a: i64, b: i64| -((a - 5) * (a - 5) + (b - 5) * (b - 5)) as f64;
        let mut records = Vec::new();
        for a in 0..=10 {
            for b in 0..=10 {
                if (a + b) % 2 == 0 && !(a == 5 && b == 5) {
                    records.push(rec(vec![a, b], f(a, b)));
                }
            }
        }
        let t = Configuration::new(vec![5, 5]);
        let est = estimate_performance(&s, &records, &t).unwrap();
        // Local plane through the nearest points: estimate should be near
        // the true 0 maximum, certainly better than the global mean (~-17).
        assert!(est > -6.0, "estimate {est} not local enough");
    }

    #[test]
    fn estimator_index_matches_one_shot_everywhere() {
        let s = space2();
        let mut records = Vec::new();
        for a in 0..=10 {
            for b in (0..=10).step_by(2) {
                records.push(rec(vec![a, b], plane(a, b) + ((a * b) % 3) as f64));
            }
        }
        let est = Estimator::new(&s, &records);
        for a in 0..=10 {
            for b in 0..=10 {
                let t = Configuration::new(vec![a, b]);
                assert_eq!(
                    est.estimate(&t),
                    estimate_performance(&s, &records, &t),
                    "target {t}"
                );
            }
        }
    }

    #[test]
    fn exact_match_on_duplicates_uses_the_first_record() {
        let s = space2();
        let records = vec![rec(vec![5, 5], 1.0), rec(vec![5, 5], 2.0)];
        let t = Configuration::new(vec![5, 5]);
        assert_eq!(estimate_performance(&s, &records, &t), Some(1.0));
    }

    #[test]
    fn noisy_overdetermined_fit_is_reasonable() {
        let s = space2();
        // Plane with small deterministic perturbation.
        let mut records = Vec::new();
        let noise = [0.4, -0.3, 0.2, -0.1, 0.3, -0.2];
        let pts = [(0, 0), (10, 0), (0, 10), (10, 10), (5, 0), (0, 5)];
        for (k, &(a, b)) in pts.iter().enumerate() {
            records.push(rec(vec![a, b], plane(a, b) + noise[k]));
        }
        let t = Configuration::new(vec![6, 4]);
        let est = estimate_performance(&s, &records, &t).unwrap();
        assert!((est - plane(6, 4)).abs() < 1.5, "est {est}");
    }
}
