//! Full and fractional factorial experiment designs.
//!
//! §3: the one-at-a-time prioritizing tool "is based on an assumption that
//! the interaction among parameters is relatively small. … If this case is
//! not true, the user may need to use full or fractional factorial
//! experiment design [Jain; Plackett & Burman] to further investigate the
//! relation among parameters when deciding the importance of parameters."
//!
//! This module supplies that escape hatch:
//!
//! * [`full_factorial`] — the 2ᵏ design, supporting both main effects and
//!   pairwise interaction effects;
//! * [`plackett_burman`] — Plackett & Burman's screening designs (and
//!   Sylvester-Hadamard designs for power-of-two run counts): estimate all
//!   k main effects in the smallest run count N ≡ 0 (mod 4), N > k;
//! * [`Screening`] — run a design against an [`Objective`], mapping the
//!   two levels onto low/high quantiles of each parameter's range, and
//!   rank parameters by |main effect| — directly comparable to the
//!   prioritizing tool's ranking.

use crate::objective::Objective;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{Configuration, ParameterSpace};

/// A two-level design matrix: `runs × factors` entries in {−1, +1},
/// stored as booleans (`true` = high level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TwoLevelDesign {
    factors: usize,
    rows: Vec<Vec<bool>>,
}

impl TwoLevelDesign {
    /// Number of factors (columns).
    pub fn factors(&self) -> usize {
        self.factors
    }

    /// Number of runs (rows).
    pub fn runs(&self) -> usize {
        self.rows.len()
    }

    /// Level of factor `j` in run `i` (`true` = high).
    pub fn level(&self, i: usize, j: usize) -> bool {
        self.rows[i][j]
    }

    /// Main effect of each factor: mean(response at high) − mean(response
    /// at low).
    ///
    /// # Panics
    /// Panics if `responses.len() != self.runs()`.
    pub fn main_effects(&self, responses: &[f64]) -> Vec<f64> {
        assert_eq!(
            responses.len(),
            self.runs(),
            "one response per run required"
        );
        (0..self.factors)
            .map(|j| {
                let mut hi_sum = 0.0;
                let mut hi_n = 0u32;
                let mut lo_sum = 0.0;
                let mut lo_n = 0u32;
                for (row, &y) in self.rows.iter().zip(responses) {
                    if row[j] {
                        hi_sum += y;
                        hi_n += 1;
                    } else {
                        lo_sum += y;
                        lo_n += 1;
                    }
                }
                // Balanced designs guarantee hi_n == lo_n > 0.
                hi_sum / hi_n.max(1) as f64 - lo_sum / lo_n.max(1) as f64
            })
            .collect()
    }

    /// Two-factor interaction effect between factors `a` and `b`: the main
    /// effect of the elementwise product column. Unaliased only in a full
    /// factorial; in a PB screening design this measures the *alias
    /// chain*, which is still useful as an interaction alarm.
    pub fn interaction_effect(&self, a: usize, b: usize, responses: &[f64]) -> f64 {
        assert_eq!(
            responses.len(),
            self.runs(),
            "one response per run required"
        );
        let mut hi_sum = 0.0;
        let mut hi_n = 0u32;
        let mut lo_sum = 0.0;
        let mut lo_n = 0u32;
        for (row, &y) in self.rows.iter().zip(responses) {
            if row[a] == row[b] {
                hi_sum += y;
                hi_n += 1;
            } else {
                lo_sum += y;
                lo_n += 1;
            }
        }
        hi_sum / hi_n.max(1) as f64 - lo_sum / lo_n.max(1) as f64
    }

    /// True if every column is balanced (equal highs and lows) and every
    /// pair of columns is orthogonal — the defining property of these
    /// designs, exposed for tests and for validating custom matrices.
    pub fn is_orthogonal(&self) -> bool {
        for j in 0..self.factors {
            let highs = self.rows.iter().filter(|r| r[j]).count();
            if highs * 2 != self.runs() {
                return false;
            }
            for k in (j + 1)..self.factors {
                let agree = self.rows.iter().filter(|r| r[j] == r[k]).count();
                if agree * 2 != self.runs() {
                    return false;
                }
            }
        }
        true
    }
}

/// The 2ᵏ full factorial design.
///
/// # Panics
/// Panics if `factors > 20` (over a million runs — a programming error for
/// a measurement design).
pub fn full_factorial(factors: usize) -> TwoLevelDesign {
    assert!(
        (1..=20).contains(&factors),
        "full factorial limited to 1..=20 factors"
    );
    let runs = 1usize << factors;
    let rows = (0..runs)
        .map(|i| (0..factors).map(|j| (i >> j) & 1 == 1).collect())
        .collect();
    TwoLevelDesign { factors, rows }
}

/// Plackett-Burman first rows (N ≡ 0 mod 4, non-power-of-two sizes), from
/// the 1946 paper; `+` = high.
const PB_GENERATORS: &[(usize, &str)] = &[
    (12, "++-+++---+-"),
    (20, "++--++++-+-+----++-"),
    (24, "+++++-+-++--++--+-+----"),
];

/// A screening design for `factors` main effects: the smallest
/// Sylvester-Hadamard (power-of-two) or Plackett-Burman (12, 20, 24) run
/// count strictly greater than `factors`, up to 24 factors beyond which
/// Sylvester sizes continue (32, 64, …).
pub fn plackett_burman(factors: usize) -> TwoLevelDesign {
    assert!(factors >= 1, "need at least one factor");
    // Candidate run counts in ascending order.
    let mut n = 4usize;
    loop {
        if n > factors {
            if n.is_power_of_two() {
                return sylvester(n, factors);
            }
            if let Some((_, gen)) = PB_GENERATORS.iter().find(|(size, _)| *size == n) {
                return pb_cyclic(n, factors, gen);
            }
        }
        n += 4;
        if n > 1 << 20 {
            unreachable!("run count search diverged");
        }
    }
}

/// Sylvester-Hadamard design of `n` runs (power of two), first column
/// dropped (it is constant), truncated to `factors` columns.
fn sylvester(n: usize, factors: usize) -> TwoLevelDesign {
    debug_assert!(n.is_power_of_two());
    let rows = (0..n)
        .map(|i| {
            (1..=factors)
                .map(|j| (i & j).count_ones() % 2 == 1) // H[i][j] = parity of i·j
                .collect()
        })
        .collect();
    TwoLevelDesign { factors, rows }
}

/// Cyclic Plackett-Burman construction: rotate the generator row n−1
/// times, append the all-low run.
fn pb_cyclic(n: usize, factors: usize, gen: &str) -> TwoLevelDesign {
    let first: Vec<bool> = gen.chars().map(|c| c == '+').collect();
    debug_assert_eq!(first.len(), n - 1);
    let mut rows: Vec<Vec<bool>> = Vec::with_capacity(n);
    for shift in 0..(n - 1) {
        let row: Vec<bool> = (0..factors)
            .map(|j| first[(j + n - 1 - shift) % (n - 1)])
            .collect();
        rows.push(row);
    }
    rows.push(vec![false; factors]);
    TwoLevelDesign { factors, rows }
}

/// Result of screening a parameter space through a two-level design.
#[derive(Debug, Clone, PartialEq)]
pub struct Screening {
    /// |main effect| per parameter, in space order.
    pub effects: Vec<f64>,
    /// Explorations spent (= design runs).
    pub explorations: u64,
    /// The design used.
    pub design: TwoLevelDesign,
    /// Raw responses, one per run.
    pub responses: Vec<f64>,
}

impl Screening {
    /// Parameter indices by descending |effect|.
    pub fn ranked(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.effects.len()).collect();
        idx.sort_by(|&a, &b| self.effects[b].total_cmp(&self.effects[a]));
        idx
    }

    /// The `n` highest-|effect| parameter indices.
    pub fn top_n(&self, n: usize) -> Vec<usize> {
        self.ranked().into_iter().take(n).collect()
    }
}

/// Run a screening experiment: map each factor's low/high level to the
/// `low_q`/`high_q` quantiles of its range (e.g. 0.25/0.75), measure every
/// design run, and report |main effects|.
///
/// # Examples
///
/// Eleven factors screened in twelve runs:
///
/// ```
/// use harmony::factorial::{plackett_burman, screen};
/// use harmony::objective::FnObjective;
/// use harmony_space::{Configuration, ParamDef, ParameterSpace};
///
/// let space = ParameterSpace::new(
///     (0..11).map(|i| ParamDef::int(format!("p{i}"), 0, 100, 50, 1)).collect(),
/// ).unwrap();
/// let mut objective = FnObjective::new(|cfg: &Configuration| {
///     cfg.get(3) as f64 * 5.0 + cfg.get(7) as f64 // p3 dominates, p7 matters a little
/// });
/// let design = plackett_burman(11);
/// let s = screen(&space, &mut objective, &design, 0.25, 0.75);
/// assert_eq!(s.explorations, 12);
/// assert_eq!(s.top_n(2), vec![3, 7]);
/// ```
///
/// # Panics
/// Panics unless `0 ≤ low_q < high_q ≤ 1`.
pub fn screen(
    space: &ParameterSpace,
    objective: &mut dyn Objective,
    design: &TwoLevelDesign,
    low_q: f64,
    high_q: f64,
) -> Screening {
    assert!(
        (0.0..=1.0).contains(&low_q) && (0.0..=1.0).contains(&high_q) && low_q < high_q,
        "quantiles must satisfy 0 <= low < high <= 1"
    );
    assert_eq!(
        design.factors(),
        space.len(),
        "design factor count must match the space"
    );
    let lows: Vec<i64> = space
        .params()
        .iter()
        .map(|p| p.denormalize(low_q))
        .collect();
    let highs: Vec<i64> = space
        .params()
        .iter()
        .map(|p| p.denormalize(high_q))
        .collect();
    let mut responses = Vec::with_capacity(design.runs());
    for cfg in design_configs(space, design, &lows, &highs) {
        responses.push(objective.measure(&cfg));
    }
    screening_from_responses(design, responses)
}

/// [`screen`] for a pure evaluation function: every design run is
/// independent, so the whole design is measured as one batch on
/// `executor`, consulting `cache` first when given. Identical to
/// [`screen`] for a pure evaluation at any job count.
///
/// # Panics
/// Same contract as [`screen`].
pub fn screen_with<F>(
    space: &ParameterSpace,
    eval: &F,
    design: &TwoLevelDesign,
    low_q: f64,
    high_q: f64,
    executor: &Executor,
    cache: Option<&MemoCache>,
) -> Screening
where
    F: Fn(&Configuration) -> f64 + Sync,
{
    assert!(
        (0.0..=1.0).contains(&low_q) && (0.0..=1.0).contains(&high_q) && low_q < high_q,
        "quantiles must satisfy 0 <= low < high <= 1"
    );
    assert_eq!(
        design.factors(),
        space.len(),
        "design factor count must match the space"
    );
    let lows: Vec<i64> = space
        .params()
        .iter()
        .map(|p| p.denormalize(low_q))
        .collect();
    let highs: Vec<i64> = space
        .params()
        .iter()
        .map(|p| p.denormalize(high_q))
        .collect();
    let configs = design_configs(space, design, &lows, &highs);
    let responses = match cache {
        Some(c) => executor.evaluate_batch_cached(&configs, c, eval),
        None => executor.evaluate_batch(&configs, eval),
    };
    screening_from_responses(design, responses)
}

/// The design's runs mapped onto feasible configurations, in run order.
fn design_configs(
    space: &ParameterSpace,
    design: &TwoLevelDesign,
    lows: &[i64],
    highs: &[i64],
) -> Vec<Configuration> {
    (0..design.runs())
        .map(|i| {
            let values: Vec<i64> = (0..space.len())
                .map(|j| {
                    if design.level(i, j) {
                        highs[j]
                    } else {
                        lows[j]
                    }
                })
                .collect();
            // Project so restricted spaces stay feasible.
            space.project(&Configuration::new(values).to_point())
        })
        .collect()
}

fn screening_from_responses(design: &TwoLevelDesign, responses: Vec<f64>) -> Screening {
    let effects = design
        .main_effects(&responses)
        .into_iter()
        .map(f64::abs)
        .collect();
    Screening {
        effects,
        explorations: design.runs() as u64,
        design: design.clone(),
        responses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    #[test]
    fn full_factorial_shape() {
        let d = full_factorial(3);
        assert_eq!(d.runs(), 8);
        assert_eq!(d.factors(), 3);
        assert!(d.is_orthogonal());
        // All 8 distinct level combinations present.
        let mut seen = std::collections::HashSet::new();
        for i in 0..8 {
            let key: Vec<bool> = (0..3).map(|j| d.level(i, j)).collect();
            assert!(seen.insert(key));
        }
    }

    #[test]
    fn plackett_burman_sizes() {
        assert_eq!(plackett_burman(3).runs(), 4);
        assert_eq!(plackett_burman(7).runs(), 8);
        assert_eq!(plackett_burman(8).runs(), 12);
        assert_eq!(plackett_burman(11).runs(), 12);
        assert_eq!(plackett_burman(15).runs(), 16);
        assert_eq!(plackett_burman(19).runs(), 20);
        assert_eq!(plackett_burman(23).runs(), 24);
        assert_eq!(plackett_burman(24).runs(), 32);
    }

    #[test]
    fn screening_designs_are_orthogonal() {
        for factors in [3usize, 7, 8, 11, 15, 19, 23] {
            let d = plackett_burman(factors);
            assert!(
                d.is_orthogonal(),
                "PB design for {factors} factors not orthogonal"
            );
        }
    }

    #[test]
    fn main_effects_recover_additive_coefficients() {
        // y = 10 + 3*A - 2*B + 0*C with A,B,C in {-1,+1}: effects 6, -4, 0.
        let d = full_factorial(3);
        let responses: Vec<f64> = (0..d.runs())
            .map(|i| {
                let s = |j: usize| if d.level(i, j) { 1.0 } else { -1.0 };
                10.0 + 3.0 * s(0) - 2.0 * s(1)
            })
            .collect();
        let e = d.main_effects(&responses);
        assert!((e[0] - 6.0).abs() < 1e-12);
        assert!((e[1] + 4.0).abs() < 1e-12);
        assert!(e[2].abs() < 1e-12);
    }

    #[test]
    fn pb_estimates_main_effects_despite_more_factors_than_a_nested_design() {
        // 11 factors in 12 runs: additive effects recovered exactly.
        let d = plackett_burman(11);
        let coefs = [5.0, -3.0, 0.0, 2.0, 0.0, 1.0, -1.0, 0.0, 4.0, 0.0, -2.0];
        let responses: Vec<f64> = (0..d.runs())
            .map(|i| {
                (0..11)
                    .map(|j| coefs[j] * if d.level(i, j) { 1.0 } else { -1.0 })
                    .sum::<f64>()
            })
            .collect();
        let e = d.main_effects(&responses);
        for (j, (&c, got)) in coefs.iter().zip(&e).enumerate() {
            assert!(
                (got - 2.0 * c).abs() < 1e-9,
                "factor {j}: effect {got} vs {}",
                2.0 * c
            );
        }
    }

    #[test]
    fn interaction_effect_detects_products() {
        // y = A*B: no main effects, strong interaction.
        let d = full_factorial(2);
        let responses: Vec<f64> = (0..4)
            .map(|i| {
                let s = |j: usize| if d.level(i, j) { 1.0 } else { -1.0 };
                s(0) * s(1)
            })
            .collect();
        let mains = d.main_effects(&responses);
        assert!(mains[0].abs() < 1e-12 && mains[1].abs() < 1e-12);
        assert!((d.interaction_effect(0, 1, &responses) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn screen_ranks_like_the_prioritizer_on_additive_systems() {
        let space = harmony_space::ParameterSpace::new(vec![
            ParamDef::int("big", 0, 100, 50, 1),
            ParamDef::int("small", 0, 100, 50, 1),
            ParamDef::int("dead", 0, 100, 50, 1),
        ])
        .unwrap();
        let mut obj = FnObjective::new(|cfg: &Configuration| {
            5.0 * cfg.get(0) as f64 + 0.5 * cfg.get(1) as f64
        });
        let design = plackett_burman(3);
        let s = screen(&space, &mut obj, &design, 0.25, 0.75);
        assert_eq!(s.ranked(), vec![0, 1, 2]);
        assert_eq!(s.explorations, 4);
        assert!(s.effects[2].abs() < 1e-9);
    }

    #[test]
    fn screen_finds_an_interaction_the_one_at_a_time_tool_misses() {
        // y = A*B centered so that sweeping A at B's default (0 after
        // centering) shows nothing: the §3 tool is blind here, the full
        // factorial's interaction column is not.
        let space = harmony_space::ParameterSpace::new(vec![
            ParamDef::int("a", -1, 1, 0, 1),
            ParamDef::int("b", -1, 1, 0, 1),
        ])
        .unwrap();
        let f = |cfg: &Configuration| (cfg.get(0) * cfg.get(1)) as f64;

        // One-at-a-time tool sees a flat function.
        let mut obj = FnObjective::new(f);
        let oat = crate::sensitivity::Prioritizer::new(space.clone()).analyze(&mut obj);
        assert!(oat.entries().iter().all(|e| e.sensitivity == 0.0));

        // The factorial design exposes the interaction.
        let d = full_factorial(2);
        let mut obj = FnObjective::new(f);
        let s = screen(&space, &mut obj, &d, 0.0, 1.0);
        let inter = d.interaction_effect(0, 1, &s.responses);
        assert!(
            inter.abs() > 1.0,
            "interaction effect should be visible: {inter}"
        );
    }

    #[test]
    fn screen_with_matches_sequential_screen() {
        let space = harmony_space::ParameterSpace::new(
            (0..11)
                .map(|i| ParamDef::int(format!("p{i}"), 0, 100, 50, 1))
                .collect(),
        )
        .unwrap();
        let f = |cfg: &Configuration| {
            (0..11)
                .map(|j| (j as f64 - 5.0) * cfg.get(j) as f64)
                .sum::<f64>()
        };
        let design = plackett_burman(11);
        let mut obj = FnObjective::new(f);
        let seq = screen(&space, &mut obj, &design, 0.25, 0.75);
        for jobs in [1, 3, 8] {
            let par = screen_with(&space, &f, &design, 0.25, 0.75, &Executor::new(jobs), None);
            assert_eq!(par, seq, "jobs={jobs}");
        }
        let cache = MemoCache::new(256);
        let cached = screen_with(
            &space,
            &f,
            &design,
            0.25,
            0.75,
            &Executor::new(4),
            Some(&cache),
        );
        assert_eq!(cached, seq);
    }

    #[test]
    #[should_panic(expected = "quantiles")]
    fn bad_quantiles_rejected() {
        let space =
            harmony_space::ParameterSpace::new(vec![ParamDef::int("a", 0, 1, 0, 1)]).unwrap();
        let mut obj = FnObjective::new(|_: &Configuration| 0.0);
        let d = plackett_burman(1);
        let _ = screen(&space, &mut obj, &d, 0.9, 0.1);
    }
}
