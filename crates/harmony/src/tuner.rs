//! Tuning sessions: the normal one-stage flow and the §4.2 two-stage
//! (training + live) flow.

use crate::estimate::Estimator;
use crate::history::RunHistory;
use crate::kernel::{InitStrategy, SimplexKernel, SimplexOptions};
use crate::objective::Objective;
use crate::report::{analyze_trace, ReportOptions, TraceEntry, TuningReport};
use harmony_exec::{Executor, MemoCache};
use harmony_obs::event::{event, Level};
use harmony_space::{Configuration, ParameterSpace};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Normalized point spread below which a trained simplex counts as
/// collapsed and is re-expanded before live tuning.
const RESTART_SPREAD: f64 = 0.05;

/// How historical experience is injected before live tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingMode {
    /// No training stage (the original Active Harmony behaviour).
    None,
    /// Seed the initial simplex directly with the best recorded
    /// configurations ("the system should use previous data layout as the
    /// starting point for tuning").
    SeedSimplex,
    /// Replay: run the kernel for up to this many *virtual* iterations,
    /// answering its requests with triangulation estimates from the
    /// historical records instead of live measurements (§4.3). Falls back
    /// to seeding when estimation is impossible.
    Replay(usize),
}

/// Session options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningOptions {
    /// Live measurement budget.
    pub max_iterations: usize,
    /// Initial simplex strategy (§4.1).
    pub init: InitStrategy,
    /// Stop once the simplex's relative value spread falls below this
    /// (and at least `min_iterations` live measurements were spent).
    pub value_eps: f64,
    /// Stop once every vertex projects within this normalized distance of
    /// the best vertex.
    pub point_eps: f64,
    /// Never stop before this many live iterations.
    pub min_iterations: usize,
    /// Trace-analysis thresholds.
    pub report: ReportOptions,
}

impl TuningOptions {
    /// The original Active Harmony configuration: extreme-corner initial
    /// exploration.
    pub fn original() -> Self {
        TuningOptions {
            max_iterations: 200,
            init: InitStrategy::ExtremeCorners,
            value_eps: 5e-3,
            point_eps: 0.02,
            min_iterations: 10,
            report: ReportOptions::default(),
        }
    }

    /// The paper's improved configuration: evenly spread initial simplex
    /// (§4.1).
    pub fn improved() -> Self {
        TuningOptions {
            init: InitStrategy::EvenSpread,
            ..Self::original()
        }
    }

    /// Builder-style max iterations.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }
}

impl Default for TuningOptions {
    fn default() -> Self {
        Self::improved()
    }
}

/// Result of a tuning session.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningOutcome {
    /// Every live exploration, in order.
    pub trace: Vec<TraceEntry>,
    /// Best configuration measured live.
    pub best_configuration: Configuration,
    /// Its performance.
    pub best_performance: f64,
    /// Metrics over the trace.
    pub report: TuningReport,
    /// Whether the spread criteria (rather than the budget) stopped the
    /// session.
    pub converged: bool,
    /// Virtual (estimated) iterations spent in the training stage.
    pub training_iterations: usize,
}

impl TuningOutcome {
    /// Convert the live trace into a [`RunHistory`] for the experience
    /// database.
    pub fn to_history(&self, label: impl Into<String>, characteristics: Vec<f64>) -> RunHistory {
        let mut run = RunHistory::new(label, characteristics);
        for t in &self.trace {
            run.push(&t.config, t.performance);
        }
        run
    }
}

/// Stepping a [`TuningSession`] out of order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// [`TuningSession::observe`] was called with no outstanding
    /// configuration to attach the measurement to.
    NoPendingConfiguration,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::NoPendingConfiguration => {
                write!(
                    f,
                    "observe called before next_config proposed a configuration"
                )
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// An incremental (ask–tell) tuning session.
///
/// [`Tuner::run`] drives the whole measurement loop itself; a session
/// exposes the same loop one step at a time, for callers that cannot hand
/// over control — a network daemon answering `Fetch`/`Report` messages,
/// or any measurement harness living outside the process.
///
/// ```
/// use harmony::objective::FnObjective;
/// use harmony::prelude::*;
/// use harmony_space::{ParamDef, ParameterSpace};
///
/// let space = ParameterSpace::builder()
///     .param(ParamDef::int("x", 0, 50, 25, 1))
///     .build()
///     .unwrap();
/// let mut session = Tuner::new(space, TuningOptions::improved()).session();
/// while let Some(cfg) = session.next_config() {
///     session.observe(-((cfg.get(0) - 30).pow(2)) as f64).unwrap();
/// }
/// let outcome = session.finish();
/// assert!(outcome.best_performance > -5.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TuningSession {
    space: ParameterSpace,
    options: TuningOptions,
    kernel: SimplexKernel,
    trace: Vec<TraceEntry>,
    live_best: Option<(Configuration, f64)>,
    pending: Option<Configuration>,
    converged: bool,
    training_iterations: usize,
    #[serde(skip)]
    created: SessionClock,
}

/// Wall-clock anchor for the session-duration metric. Not serialized — a
/// session revived from a snapshot restarts its clock, so the wall-time
/// histogram only ever counts time the session spent resident.
#[derive(Debug, Clone, Copy)]
struct SessionClock(Instant);

impl Default for SessionClock {
    fn default() -> Self {
        SessionClock(Instant::now())
    }
}

impl TuningSession {
    fn from_kernel(
        space: ParameterSpace,
        options: TuningOptions,
        kernel: SimplexKernel,
        training_iterations: usize,
    ) -> Self {
        crate::obs::training_iterations_total().add(training_iterations as u64);
        TuningSession {
            space,
            options,
            kernel,
            trace: Vec::new(),
            live_best: None,
            pending: None,
            converged: false,
            training_iterations,
            created: SessionClock::default(),
        }
    }

    /// The next configuration to measure, or `None` once the session is
    /// over (budget spent or converged).
    ///
    /// Idempotent until the proposal is answered: asking again without an
    /// intervening [`observe`](Self::observe) returns the same
    /// configuration, so a retried `Fetch` cannot burn budget.
    pub fn next_config(&mut self) -> Option<Configuration> {
        if let Some(cfg) = &self.pending {
            return Some(cfg.clone());
        }
        if self.is_done() {
            return None;
        }
        let cfg = self.kernel.next_config();
        self.pending = Some(cfg.clone());
        Some(cfg)
    }

    /// Every configuration whose measurement can be gathered before the
    /// next proposal depends on it, capped at the remaining budget —
    /// the whole remaining initial simplex during the init phase, the
    /// remaining vertices during a post-training refresh, and otherwise
    /// the single outstanding configuration.
    ///
    /// Evaluate the batch (in any order, e.g. on an
    /// [`Executor`]) and report the results *in
    /// batch order* through [`observe_batch`](Self::observe_batch).
    /// Empty once the session is over.
    pub fn next_batch(&mut self) -> Vec<Configuration> {
        if let Some(cfg) = &self.pending {
            return vec![cfg.clone()];
        }
        if self.is_done() {
            return Vec::new();
        }
        let remaining = self.options.max_iterations - self.trace.len();
        let mut batch = self.kernel.batchable_configs();
        batch.truncate(remaining.max(1));
        batch
    }

    /// Report measurements for a batch from
    /// [`next_batch`](Self::next_batch), in batch order.
    ///
    /// Observation stops as soon as the session ends mid-batch (the
    /// convergence check runs after every single measurement, exactly as
    /// in the one-at-a-time loop); surplus measurements are discarded so
    /// the outcome is identical to sequential stepping. Returns how many
    /// measurements were consumed.
    pub fn observe_batch(&mut self, performances: &[f64]) -> Result<usize, SessionError> {
        let mut used = 0;
        for &performance in performances {
            if self.is_done() {
                break;
            }
            if self.pending.is_none() {
                self.pending = Some(self.kernel.next_config());
            }
            self.observe(performance)?;
            used += 1;
        }
        Ok(used)
    }

    /// Report the measured performance of the outstanding configuration.
    pub fn observe(&mut self, performance: f64) -> Result<(), SessionError> {
        let config = self
            .pending
            .take()
            .ok_or(SessionError::NoPendingConfiguration)?;
        {
            // Observation-only: the span measures the kernel step, it
            // never feeds back into it.
            let _span = harmony_obs::trace::child(harmony_obs::trace::stage::SIMPLEX_STEP, "");
            self.kernel.observe(performance);
        }
        match &self.live_best {
            Some((_, b)) if *b >= performance => {}
            _ => self.live_best = Some((config.clone(), performance)),
        }
        let iteration = self.trace.len();
        crate::obs::iterations_total().inc();
        event(Level::Debug, "tune.iteration")
            .u64("iteration", iteration as u64)
            .f64("performance", performance)
            .f64(
                "best",
                self.live_best
                    .as_ref()
                    .map(|(_, b)| *b)
                    .unwrap_or(performance),
            )
            .emit();
        self.trace.push(TraceEntry {
            iteration,
            config,
            performance,
        });
        if self.kernel.initialized()
            && self.trace.len() >= self.options.min_iterations
            && self.kernel.value_spread() < self.options.value_eps
            && self.kernel.point_spread() < self.options.point_eps
        {
            self.converged = true;
        }
        Ok(())
    }

    /// Whether the session has ended (no further configurations will be
    /// proposed).
    pub fn is_done(&self) -> bool {
        self.converged || self.trace.len() >= self.options.max_iterations
    }

    /// Whether the spread criteria (rather than the budget) have stopped
    /// the session. `false` while the session is still running.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Live measurements spent so far.
    pub fn iterations(&self) -> usize {
        self.trace.len()
    }

    /// Best live measurement so far.
    pub fn best(&self) -> Option<(&Configuration, f64)> {
        self.live_best.as_ref().map(|(c, p)| (c, *p))
    }

    /// Live explorations so far, in measurement order.
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// The space under tuning.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Virtual iterations spent training before the live stage.
    pub fn training_iterations(&self) -> usize {
        self.training_iterations
    }

    /// Close the session and analyze its trace.
    ///
    /// Callable at any point — an abandoned session still yields a valid
    /// outcome over whatever was measured.
    pub fn finish(self) -> TuningOutcome {
        let (best_configuration, best_performance) = self
            .live_best
            .unwrap_or_else(|| (self.space.default_configuration(), f64::NEG_INFINITY));
        crate::obs::sessions_finished_total().inc();
        if self.converged {
            crate::obs::sessions_converged_total().inc();
        }
        crate::obs::session_wall_seconds().observe(self.created.0.elapsed().as_secs_f64());
        event(Level::Info, "tune.finish")
            .u64("iterations", self.trace.len() as u64)
            .u64("training_iterations", self.training_iterations as u64)
            .f64("best", best_performance)
            .bool("converged", self.converged)
            .emit();
        let report = analyze_trace(&self.trace, &self.options.report);
        TuningOutcome {
            trace: self.trace,
            best_configuration,
            best_performance,
            report,
            converged: self.converged,
            training_iterations: self.training_iterations,
        }
    }
}

/// A tuning session driver.
#[derive(Debug, Clone)]
pub struct Tuner {
    space: ParameterSpace,
    options: TuningOptions,
}

impl Tuner {
    /// Create a session driver.
    pub fn new(space: ParameterSpace, options: TuningOptions) -> Self {
        Tuner { space, options }
    }

    /// The space under tuning.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Options in force.
    pub fn options(&self) -> &TuningOptions {
        &self.options
    }

    /// One-stage tuning: measure everything live.
    pub fn run(&self, objective: &mut dyn Objective) -> TuningOutcome {
        let kernel = SimplexKernel::new(self.space.clone(), self.options.init);
        self.drive(kernel, objective, 0)
    }

    /// Two-stage tuning with prior experience (§4.2): a training stage
    /// that costs no live measurements, then the live stage.
    ///
    /// # Examples
    ///
    /// ```
    /// use harmony::objective::FnObjective;
    /// use harmony::prelude::*;
    /// use harmony::tuner::TrainingMode;
    /// use harmony_space::{ParamDef, ParameterSpace};
    ///
    /// let space = ParameterSpace::builder()
    ///     .param(ParamDef::int("x", 0, 50, 25, 1))
    ///     .build()
    ///     .unwrap();
    /// let f = |cfg: &Configuration| -((cfg.get(0) - 30).pow(2)) as f64;
    ///
    /// // A prior run left records behind …
    /// let mut history = RunHistory::new("prior", vec![1.0]);
    /// for x in [10, 20, 28, 33, 40] {
    ///     let cfg = Configuration::new(vec![x]);
    ///     history.push(&cfg, f(&cfg));
    /// }
    ///
    /// // … which the next session replays as free virtual iterations.
    /// let tuner = Tuner::new(space, TuningOptions::improved().with_max_iterations(30));
    /// let mut objective = FnObjective::new(f);
    /// let out = tuner.run_trained(&mut objective, &history, TrainingMode::Replay(8));
    /// assert!(out.best_performance > -5.0);
    /// ```
    pub fn run_trained(
        &self,
        objective: &mut dyn Objective,
        history: &RunHistory,
        mode: TrainingMode,
    ) -> TuningOutcome {
        let (kernel, trained) = self.trained_kernel(history, mode);
        self.drive(kernel, objective, trained)
    }

    /// [`run`](Self::run) for a pure evaluation function, with batchable
    /// phases (initial simplex, post-training refresh) measured through
    /// `executor` and, when a `cache` is given, every measurement
    /// consulted against it first.
    ///
    /// Without a cache the outcome is identical to [`run`](Self::run)
    /// at any job count: batches preserve input order and the
    /// observation loop replays the sequential one exactly. With a
    /// cache, revisited configurations answer with their memoized first
    /// measurement instead of a fresh sample — for a deterministic
    /// objective that changes nothing; for a noisy one it keeps the
    /// kernel from chasing noise on configurations it already paid for.
    pub fn run_parallel<F>(
        &self,
        eval: &F,
        executor: &Executor,
        cache: Option<&MemoCache>,
    ) -> TuningOutcome
    where
        F: Fn(&Configuration) -> f64 + Sync,
    {
        let kernel = SimplexKernel::new(self.space.clone(), self.options.init);
        self.drive_parallel(kernel, eval, executor, cache, 0)
    }

    /// [`run_trained`](Self::run_trained) for a pure evaluation function
    /// (see [`run_parallel`](Self::run_parallel)). The training stage
    /// itself is virtual and stays sequential; the live refresh of the
    /// trained simplex is where the batch evaluation pays off.
    pub fn run_trained_parallel<F>(
        &self,
        eval: &F,
        history: &RunHistory,
        mode: TrainingMode,
        executor: &Executor,
        cache: Option<&MemoCache>,
    ) -> TuningOutcome
    where
        F: Fn(&Configuration) -> f64 + Sync,
    {
        let (kernel, trained) = self.trained_kernel(history, mode);
        self.drive_parallel(kernel, eval, executor, cache, trained)
    }

    /// Batch counterpart of [`drive`](Self::drive).
    fn drive_parallel<F>(
        &self,
        kernel: SimplexKernel,
        eval: &F,
        executor: &Executor,
        cache: Option<&MemoCache>,
        training_iterations: usize,
    ) -> TuningOutcome
    where
        F: Fn(&Configuration) -> f64 + Sync,
    {
        let mut session = TuningSession::from_kernel(
            self.space.clone(),
            self.options.clone(),
            kernel,
            training_iterations,
        );
        loop {
            let batch = session.next_batch();
            if batch.is_empty() {
                break;
            }
            let performances = match cache {
                Some(c) => executor.evaluate_batch_cached(&batch, c, eval),
                None => executor.evaluate_batch(&batch, eval),
            };
            session
                .observe_batch(&performances)
                .expect("batch proposals are outstanding");
        }
        session.finish()
    }

    /// Step-at-a-time flavour of [`run`](Self::run): the caller measures.
    pub fn session(&self) -> TuningSession {
        let kernel = SimplexKernel::new(self.space.clone(), self.options.init);
        TuningSession::from_kernel(self.space.clone(), self.options.clone(), kernel, 0)
    }

    /// [`session`](Self::session) with custom simplex coefficients.
    ///
    /// Coefficients only take effect if installed before the kernel
    /// computes its first reflection, so they are applied to a cold
    /// kernel here rather than exposed as a mutator. Callers that tune
    /// the kernel's hyperparameters (the engine tournament) go through
    /// this entry point.
    pub fn session_with_options(&self, simplex: SimplexOptions) -> TuningSession {
        let kernel =
            SimplexKernel::new(self.space.clone(), self.options.init).with_options(simplex);
        TuningSession::from_kernel(self.space.clone(), self.options.clone(), kernel, 0)
    }

    /// Step-at-a-time flavour of [`run_trained`](Self::run_trained).
    ///
    /// The training stage costs no live measurements, so it runs entirely
    /// here; the returned session starts at the live stage.
    pub fn session_trained(&self, history: &RunHistory, mode: TrainingMode) -> TuningSession {
        let (kernel, trained) = self.trained_kernel(history, mode);
        TuningSession::from_kernel(self.space.clone(), self.options.clone(), kernel, trained)
    }

    /// Build the starting kernel for a trained session, returning it with
    /// the count of virtual training iterations spent. Falls back to the
    /// cold-start kernel when the history cannot seed one.
    fn trained_kernel(&self, history: &RunHistory, mode: TrainingMode) -> (SimplexKernel, usize) {
        let cold = || SimplexKernel::new(self.space.clone(), self.options.init);
        match mode {
            TrainingMode::None => (cold(), 0),
            TrainingMode::SeedSimplex => {
                let seeds = self.diverse_seeds(history);
                if seeds.is_empty() {
                    return (cold(), 0);
                }
                let mut kernel = SimplexKernel::with_seeded_simplex(self.space.clone(), seeds);
                // Seeded values came from a (possibly different) prior
                // workload: restore geometry if the seeds were clustered,
                // then re-measure everything live before searching.
                if kernel.initialized() && kernel.point_spread() < RESTART_SPREAD {
                    kernel.expand_around_best(0.25);
                }
                kernel.refresh();
                (kernel, 0)
            }
            TrainingMode::Replay(budget) => {
                if history.records.is_empty() {
                    return (cold(), 0);
                }
                // Start from the recorded experience as the simplex, then
                // let the kernel explore *virtually*: requests are answered
                // with triangulation estimates.
                let seeds = self.diverse_seeds(history);
                let mut kernel = SimplexKernel::with_seeded_simplex(self.space.clone(), seeds);
                let mut trained = 0usize;
                // One index over the records answers every virtual
                // iteration; rebuilding it per request would re-sort the
                // whole history each time.
                let estimator = Estimator::new(&self.space, &history.records);
                for _ in 0..budget {
                    let cfg = kernel.next_config();
                    match estimator.estimate(&cfg) {
                        Some(est) => {
                            kernel.observe(est);
                            trained += 1;
                        }
                        None => break,
                    }
                }
                // Trained values are estimates from prior experience; the
                // virtual search may also have collapsed the simplex onto
                // the *old* optimum. Restore geometry, then re-measure the
                // vertices live so stale optimism cannot pin the search to
                // the prior workload's optimum.
                if kernel.initialized() && kernel.point_spread() < RESTART_SPREAD {
                    kernel.expand_around_best(0.25);
                }
                kernel.refresh();
                (kernel, trained)
            }
        }
    }

    /// Pick up to `n+1` seed vertices from a prior run: the best record
    /// first, then greedy farthest-point selection among the
    /// better-performing half. Post-convergence traces cluster at the old
    /// optimum; without the diversity requirement the seeded simplex would
    /// start (nearly) collapsed.
    fn diverse_seeds(&self, history: &RunHistory) -> Vec<(Configuration, f64)> {
        let records = &history.records;
        if records.is_empty() {
            return Vec::new();
        }
        let mut order: Vec<usize> = (0..records.len()).collect();
        order.sort_by(|&a, &b| records[b].performance.total_cmp(&records[a].performance));
        // Candidates: the better half (at least n+1 when available).
        let keep = (records.len() / 2)
            .max(self.space.len() + 1)
            .min(records.len());
        let candidates = &order[..keep];

        let mut chosen: Vec<usize> = vec![candidates[0]]; // the best record
        while chosen.len() < self.space.len() + 1 {
            let next = candidates
                .iter()
                .copied()
                .filter(|i| !chosen.contains(i))
                .max_by(|&a, &b| {
                    let da = self.min_dist_to_chosen(records, &chosen, a);
                    let db = self.min_dist_to_chosen(records, &chosen, b);
                    da.total_cmp(&db)
                });
            match next {
                // Stop once only duplicates remain — the kernel fills the
                // rest with axis offsets around the best seed.
                Some(i) if self.min_dist_to_chosen(records, &chosen, i) > 1e-9 => chosen.push(i),
                _ => break,
            }
        }
        chosen
            .into_iter()
            .map(|i| (records[i].configuration(), records[i].performance))
            .collect()
    }

    fn min_dist_to_chosen(
        &self,
        records: &[crate::history::TuningRecord],
        chosen: &[usize],
        candidate: usize,
    ) -> f64 {
        let c = records[candidate].configuration();
        chosen
            .iter()
            .map(|&i| {
                self.space
                    .normalized_distance(&records[i].configuration(), &c)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Main measurement loop shared by all flows: drive a session to
    /// completion against an in-process objective.
    fn drive(
        &self,
        kernel: SimplexKernel,
        objective: &mut dyn Objective,
        training_iterations: usize,
    ) -> TuningOutcome {
        let mut session = TuningSession::from_kernel(
            self.space.clone(),
            self.options.clone(),
            kernel,
            training_iterations,
        );
        while let Some(config) = session.next_config() {
            let performance = objective.measure(&config);
            session
                .observe(performance)
                .expect("a configuration is outstanding");
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use harmony_space::ParamDef;

    fn space2() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 100, 50, 1))
            .param(ParamDef::int("y", 0, 100, 50, 1))
            .build()
            .unwrap()
    }

    fn paraboloid(cfg: &Configuration) -> f64 {
        let x = cfg.get(0) as f64;
        let y = cfg.get(1) as f64;
        1000.0 - (x - 40.0).powi(2) - (y - 70.0).powi(2)
    }

    #[test]
    fn serialized_session_resumes_bit_identically() {
        // Interrupt a session at various depths — including with a
        // proposal outstanding — and check the revived copy finishes the
        // run with exactly the same trajectory and outcome.
        for cut in [0usize, 1, 4, 17] {
            let opts = TuningOptions::improved().with_max_iterations(60);
            let mut live = Tuner::new(space2(), opts).session();
            for _ in 0..cut {
                let cfg = live.next_config().unwrap();
                live.observe(paraboloid(&cfg)).unwrap();
            }
            // Leave a proposal pending, as a mid-`Fetch` disconnect would.
            let pending = live.next_config();
            let json = serde_json::to_string(&live).unwrap();
            let mut revived: TuningSession = serde_json::from_str(&json).unwrap();
            assert_eq!(revived.next_config(), pending, "cut at {cut}");
            assert_eq!(revived.iterations(), live.iterations());
            let drive = |mut s: TuningSession| {
                while let Some(cfg) = s.next_config() {
                    s.observe(paraboloid(&cfg)).unwrap();
                }
                s.finish()
            };
            let a = drive(live);
            let b = drive(revived);
            assert_eq!(a.trace, b.trace, "cut at {cut}");
            assert_eq!(a.best_configuration, b.best_configuration);
            assert_eq!(a.best_performance, b.best_performance);
            assert_eq!(a.converged, b.converged);
        }
    }

    #[test]
    fn plain_run_finds_the_optimum_region() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run(&mut obj);
        assert!(out.best_performance > 980.0, "{}", out.best_performance);
        assert_eq!(out.trace.len(), out.report.iterations);
        assert_eq!(out.training_iterations, 0);
        // The recorded best matches the trace maximum.
        let trace_max = out
            .trace
            .iter()
            .map(|t| t.performance)
            .fold(f64::MIN, f64::max);
        assert_eq!(out.best_performance, trace_max);
    }

    #[test]
    fn improved_init_avoids_extreme_first_iterations() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run(&mut obj);
        // The first three explorations (the initial simplex) must be
        // interior points under EvenSpread.
        for t in &out.trace[..3] {
            for j in 0..2 {
                let v = t.config.get(j);
                assert!(
                    v > 0 && v < 100,
                    "initial exploration at extreme: {}",
                    t.config
                );
            }
        }
    }

    #[test]
    fn original_init_explores_extremes_first() {
        let tuner = Tuner::new(space2(), TuningOptions::original());
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run(&mut obj);
        assert_eq!(out.trace[0].config.values(), &[0, 0]);
    }

    #[test]
    fn converges_before_budget_on_easy_problems() {
        let opts = TuningOptions::improved().with_max_iterations(500);
        let tuner = Tuner::new(space2(), opts);
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run(&mut obj);
        assert!(out.converged, "should converge before 500 iterations");
        assert!(out.trace.len() < 500);
    }

    #[test]
    fn seeded_training_converges_faster_than_cold() {
        let space = space2();
        // History recorded near the optimum.
        let mut history = RunHistory::new("prior", vec![0.5]);
        for (x, y) in [(38, 68), (44, 72), (40, 66), (36, 74), (42, 69)] {
            let cfg = Configuration::new(vec![x, y]);
            history.push(&cfg, paraboloid(&cfg));
        }
        let opts = TuningOptions::improved();
        let tuner = Tuner::new(space, opts);

        let mut cold_obj = FnObjective::new(paraboloid);
        let cold = tuner.run(&mut cold_obj);
        let mut warm_obj = FnObjective::new(paraboloid);
        let warm = tuner.run_trained(&mut warm_obj, &history, TrainingMode::SeedSimplex);

        assert!(warm.report.convergence_time <= cold.report.convergence_time);
        assert!(
            warm.report.worst_performance >= cold.report.worst_performance,
            "warm start should avoid the deep initial dips: warm {} vs cold {}",
            warm.report.worst_performance,
            cold.report.worst_performance
        );
        assert!(warm.best_performance > 990.0);
    }

    #[test]
    fn replay_training_spends_virtual_iterations() {
        let space = space2();
        let mut history = RunHistory::new("prior", vec![0.5]);
        // A modest grid of records around mid-space so estimation works.
        for x in [20, 40, 60, 80] {
            for y in [30, 50, 70, 90] {
                let cfg = Configuration::new(vec![x, y]);
                history.push(&cfg, paraboloid(&cfg));
            }
        }
        let tuner = Tuner::new(space, TuningOptions::improved());
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run_trained(&mut obj, &history, TrainingMode::Replay(15));
        assert!(out.training_iterations > 0, "replay must train virtually");
        assert!(out.best_performance > 980.0);
    }

    #[test]
    fn empty_history_falls_back_to_cold_run() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let empty = RunHistory::new("empty", vec![]);
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run_trained(&mut obj, &empty, TrainingMode::Replay(10));
        assert_eq!(out.training_iterations, 0);
        assert!(out.best_performance > 950.0);
    }

    #[test]
    fn outcome_to_history_preserves_trace() {
        let tuner = Tuner::new(space2(), TuningOptions::improved().with_max_iterations(20));
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run(&mut obj);
        let run = out.to_history("label", vec![0.3, 0.7]);
        assert_eq!(run.records.len(), out.trace.len());
        assert_eq!(run.best().unwrap().performance, out.best_performance);
        assert_eq!(run.characteristics, vec![0.3, 0.7]);
    }

    #[test]
    fn session_matches_run_exactly() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let mut obj = FnObjective::new(paraboloid);
        let run_out = tuner.run(&mut obj);

        let mut session = tuner.session();
        while let Some(cfg) = session.next_config() {
            session.observe(paraboloid(&cfg)).unwrap();
        }
        let session_out = session.finish();
        assert_eq!(
            run_out, session_out,
            "session stepping must replay run() exactly"
        );
    }

    #[test]
    fn session_next_config_is_idempotent_until_observed() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let mut session = tuner.session();
        let a = session.next_config().unwrap();
        let b = session.next_config().unwrap();
        assert_eq!(a, b, "repeated fetch must not advance the kernel");
        session.observe(paraboloid(&a)).unwrap();
        let c = session.next_config().unwrap();
        assert_ne!(a, c, "after observe the kernel proposes the next vertex");
        assert_eq!(session.iterations(), 1);
    }

    #[test]
    fn session_observe_without_fetch_is_an_error() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let mut session = tuner.session();
        assert_eq!(
            session.observe(1.0),
            Err(SessionError::NoPendingConfiguration)
        );
        let cfg = session.next_config().unwrap();
        assert!(session.observe(paraboloid(&cfg)).is_ok());
        assert_eq!(
            session.observe(1.0),
            Err(SessionError::NoPendingConfiguration)
        );
    }

    #[test]
    fn trained_session_matches_run_trained() {
        let space = space2();
        let mut history = RunHistory::new("prior", vec![0.5]);
        for x in [20, 40, 60, 80] {
            for y in [30, 50, 70, 90] {
                let cfg = Configuration::new(vec![x, y]);
                history.push(&cfg, paraboloid(&cfg));
            }
        }
        let tuner = Tuner::new(space, TuningOptions::improved());
        let mut obj = FnObjective::new(paraboloid);
        let run_out = tuner.run_trained(&mut obj, &history, TrainingMode::Replay(15));

        let mut session = tuner.session_trained(&history, TrainingMode::Replay(15));
        assert!(session.training_iterations() > 0);
        while let Some(cfg) = session.next_config() {
            session.observe(paraboloid(&cfg)).unwrap();
        }
        assert_eq!(run_out, session.finish());
    }

    #[test]
    fn abandoned_session_reports_partial_trace() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let mut session = tuner.session();
        for _ in 0..3 {
            let cfg = session.next_config().unwrap();
            session.observe(paraboloid(&cfg)).unwrap();
        }
        assert_eq!(
            session.best().unwrap().1,
            session.clone().finish().best_performance
        );
        let out = session.finish();
        assert_eq!(out.trace.len(), 3);
        assert!(!out.converged);
    }

    #[test]
    fn run_parallel_matches_run_exactly() {
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let mut obj = FnObjective::new(paraboloid);
        let seq = tuner.run(&mut obj);
        for jobs in [1, 2, 8] {
            let par = tuner.run_parallel(&paraboloid, &Executor::new(jobs), None);
            assert_eq!(par, seq, "jobs={jobs}");
        }
    }

    #[test]
    fn run_trained_parallel_matches_run_trained() {
        let space = space2();
        let mut history = RunHistory::new("prior", vec![0.5]);
        for x in [20, 40, 60, 80] {
            for y in [30, 50, 70, 90] {
                let cfg = Configuration::new(vec![x, y]);
                history.push(&cfg, paraboloid(&cfg));
            }
        }
        let tuner = Tuner::new(space, TuningOptions::improved());
        let mut obj = FnObjective::new(paraboloid);
        let seq = tuner.run_trained(&mut obj, &history, TrainingMode::Replay(15));
        let par = tuner.run_trained_parallel(
            &paraboloid,
            &history,
            TrainingMode::Replay(15),
            &Executor::new(4),
            None,
        );
        assert_eq!(par, seq);
    }

    #[test]
    fn cached_run_consults_the_cache_before_measuring() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let tuner = Tuner::new(space2(), TuningOptions::improved());
        let calls = AtomicU64::new(0);
        let eval = |cfg: &Configuration| {
            calls.fetch_add(1, Ordering::Relaxed);
            paraboloid(cfg)
        };
        let cache = MemoCache::new(100_000);
        let out = tuner.run_parallel(&eval, &Executor::new(2), Some(&cache));
        // The deterministic objective makes caching behaviour-neutral:
        // same outcome as the uncached run.
        let uncached = tuner.run_parallel(&paraboloid, &Executor::new(2), None);
        assert_eq!(out, uncached);
        // The discrete simplex revisits grid points; all of those came
        // from the cache instead of fresh measurements.
        assert!(cache.hits() > 0, "simplex revisits must hit the cache");
        assert_eq!(
            calls.load(Ordering::Relaxed) + cache.hits(),
            out.trace.len() as u64
        );
    }

    #[test]
    fn next_batch_respects_pending_and_budget() {
        let tuner = Tuner::new(space2(), TuningOptions::improved().with_max_iterations(2));
        let mut session = tuner.session();
        let batch = session.next_batch();
        assert_eq!(batch.len(), 2, "3 init vertices capped at budget 2");
        let cfg = session.next_config().unwrap();
        assert_eq!(session.next_batch(), vec![cfg.clone()], "pending wins");
        session.observe(paraboloid(&cfg)).unwrap();
        let used = session.observe_batch(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(used, 1, "budget ends the session mid-batch");
        assert!(session.is_done());
        assert!(session.next_batch().is_empty());
    }

    #[test]
    fn budget_is_respected() {
        let tuner = Tuner::new(space2(), TuningOptions::improved().with_max_iterations(7));
        let mut obj = FnObjective::new(paraboloid);
        let out = tuner.run(&mut obj);
        assert!(out.trace.len() <= 7);
        assert_eq!(obj.count(), out.trace.len() as u64);
    }
}
