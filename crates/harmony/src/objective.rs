//! The black-box objective the tuner optimizes.
//!
//! Active Harmony "has no knowledge about the input and thus treats the
//! system to be tuned as a black box" (§4.2): one configuration in, one
//! performance number out. Higher is better throughout this crate (the
//! paper maximizes WIPS; the simplex kernel internally negates as needed).

use harmony_space::Configuration;
use std::collections::HashMap;

/// A tunable system: measuring a configuration returns its performance
/// (higher is better). Measurement may be expensive and noisy — the whole
/// paper is about spending fewer of these calls.
pub trait Objective {
    /// Measure one configuration.
    fn measure(&mut self, cfg: &Configuration) -> f64;
}

/// Adapter turning any closure into an [`Objective`].
pub struct FnObjective<F: FnMut(&Configuration) -> f64> {
    f: F,
    count: u64,
}

impl<F: FnMut(&Configuration) -> f64> FnObjective<F> {
    /// Wrap a closure.
    pub fn new(f: F) -> Self {
        FnObjective { f, count: 0 }
    }

    /// Number of measurements so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<F: FnMut(&Configuration) -> f64> Objective for FnObjective<F> {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        self.count += 1;
        (self.f)(cfg)
    }
}

impl Objective for Box<dyn Objective + '_> {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        (**self).measure(cfg)
    }
}

/// Memoizing wrapper: identical configurations are measured once.
///
/// The discrete projection of the simplex method frequently lands several
/// continuous points on the same integer configuration; for slow systems
/// ("5 to 10 minutes to explore one configuration", §3) re-measuring is
/// wasteful. Note this trades away noise averaging — use only where that
/// is acceptable.
pub struct CachedObjective<O: Objective> {
    inner: O,
    cache: HashMap<Configuration, f64>,
    hits: u64,
    misses: u64,
}

impl<O: Objective> CachedObjective<O> {
    /// Wrap an objective.
    pub fn new(inner: O) -> Self {
        CachedObjective {
            inner,
            cache: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (= real measurements) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Unwrap the inner objective.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Objective> Objective for CachedObjective<O> {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        if let Some(&v) = self.cache.get(cfg) {
            self.hits += 1;
            return v;
        }
        let v = self.inner.measure(cfg);
        self.cache.insert(cfg.clone(), v);
        self.misses += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_objective_counts() {
        let mut o = FnObjective::new(|c: &Configuration| c.get(0) as f64);
        assert_eq!(o.measure(&Configuration::new(vec![3])), 3.0);
        assert_eq!(o.measure(&Configuration::new(vec![5])), 5.0);
        assert_eq!(o.count(), 2);
    }

    #[test]
    fn cached_objective_deduplicates() {
        let mut calls = 0u32;
        {
            let inner = FnObjective::new(|c: &Configuration| {
                calls += 1;
                c.get(0) as f64
            });
            let mut cached = CachedObjective::new(inner);
            let a = Configuration::new(vec![1]);
            let b = Configuration::new(vec![2]);
            assert_eq!(cached.measure(&a), 1.0);
            assert_eq!(cached.measure(&a), 1.0);
            assert_eq!(cached.measure(&b), 2.0);
            assert_eq!(cached.hits(), 1);
            assert_eq!(cached.misses(), 2);
        }
        assert_eq!(calls, 2);
    }

    #[test]
    fn boxed_objective_dispatches() {
        let mut boxed: Box<dyn Objective> =
            Box::new(FnObjective::new(|c: &Configuration| -(c.get(0) as f64)));
        assert_eq!(boxed.measure(&Configuration::new(vec![4])), -4.0);
    }
}
