//! Property-based tests for the synthetic data engine.

use harmony_synth::scenario::{
    section5_system, weblike_system, SECTION5_IRRELEVANT, SECTION5_RANGE,
};
use harmony_synth::{Condition, GridRuleSet, Rule, RuleSet};
use proptest::prelude::*;

fn arb_condition() -> impl Strategy<Value = Condition> {
    prop_oneof![
        (-20i64..20).prop_map(Condition::Eq),
        (-20i64..20, 1i64..15).prop_map(|(lo, span)| Condition::Range { lo, hi: lo + span }),
    ]
}

proptest! {
    #[test]
    fn condition_distance_zero_iff_matches(c in arb_condition(), v in -40i64..40) {
        prop_assert_eq!(c.matches(v), c.distance(v) == 0);
    }

    #[test]
    fn condition_overlap_is_symmetric(a in arb_condition(), b in arb_condition()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn overlapping_conditions_share_a_witness(a in arb_condition(), b in arb_condition()) {
        // If overlaps() is true there must exist a value satisfying both;
        // if false there must be none (checked over the finite support).
        let witness = (-40i64..40).any(|v| a.matches(v) && b.matches(v));
        prop_assert_eq!(a.overlaps(&b), witness, "a={:?} b={:?}", a, b);
    }

    #[test]
    fn rule_distance_is_zero_iff_satisfied(
        c1 in arb_condition(),
        c2 in arb_condition(),
        v1 in -40i64..40,
        v2 in -40i64..40,
    ) {
        let rule = Rule::new(vec![(0, c1), (1, c2)], 1.0);
        prop_assert_eq!(rule.satisfied(&[v1, v2]), rule.distance(&[v1, v2]) == 0.0);
    }

    #[test]
    fn grid_rule_sets_fire_exactly_one_rule(
        edges0 in proptest::collection::btree_set(0i64..30, 2..6),
        edges1 in proptest::collection::btree_set(0i64..30, 2..6),
        v0 in 0i64..29,
        v1 in 0i64..29,
    ) {
        let e0: Vec<i64> = edges0.into_iter().collect();
        let e1: Vec<i64> = edges1.into_iter().collect();
        let g = GridRuleSet::new(vec![e0.clone(), e1.clone()], Box::new(|c| c[0] + 10.0 * c[1]));
        // Materialized rule fires on its own input when the input is
        // inside the covered region.
        let inside = v0 >= e0[0] && v0 < *e0.last().unwrap() && v1 >= e1[0] && v1 < *e1.last().unwrap();
        let rule = g.rule_for(&[v0, v1]);
        if inside {
            prop_assert!(rule.satisfied(&[v0, v1]), "rule {rule} vs ({v0}, {v1})");
        }
        // And the evaluation equals that rule's performance either way.
        prop_assert_eq!(g.evaluate(&[v0, v1]), rule.performance());
    }

    #[test]
    fn explicit_rulesets_from_disjoint_ranges_never_conflict(
        cuts in proptest::collection::btree_set(-20i64..20, 3..8),
    ) {
        let cuts: Vec<i64> = cuts.into_iter().collect();
        let rules: Vec<Rule> = cuts
            .windows(2)
            .enumerate()
            .map(|(i, w)| Rule::new(vec![(0, Condition::Range { lo: w[0], hi: w[1] })], i as f64))
            .collect();
        prop_assert!(RuleSet::new(rules).is_ok());
    }

    #[test]
    fn section5_irrelevant_params_never_matter(
        seed_vals in proptest::collection::vec(SECTION5_RANGE.0..=SECTION5_RANGE.1, 15),
        h in SECTION5_RANGE.0..=SECTION5_RANGE.1,
        m in SECTION5_RANGE.0..=SECTION5_RANGE.1,
    ) {
        let sys = section5_system([0.3, 0.4, 0.3], 0.0, 0);
        let base = harmony_space::Configuration::new(seed_vals);
        let moved = base
            .with_value(SECTION5_IRRELEVANT[0], h)
            .with_value(SECTION5_IRRELEVANT[1], m);
        prop_assert_eq!(sys.evaluate_clean(&base), sys.evaluate_clean(&moved));
    }

    #[test]
    fn weblike_output_is_finite_everywhere(fracs in proptest::collection::vec(0.0f64..1.0, 8)) {
        let sys = weblike_system(&[0.3, 0.2, 0.1, 0.2, 0.1, 0.1], 0.0, 0);
        let cfg = sys.space().from_fractions(&fracs);
        let p = sys.evaluate_clean(&cfg);
        prop_assert!(p.is_finite() && p >= 0.0, "perf {p} at {cfg}");
    }
}
