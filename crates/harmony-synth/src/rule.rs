//! CNF rules: `Pi ← Ca(vj) & Cb(vk) & …`.

use crate::condition::Condition;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One DataGen rule: a conjunction of per-variable conditions and the
/// performance value returned when all of them hold.
///
/// `conditions[k] = (var_index, condition)`; a variable index refers into
/// the combined input vector (tunable parameters followed by discretized
/// workload characteristics, as in §5.1). A variable may appear at most
/// once per rule — a conjunction with two conditions on the same variable
/// is either redundant or unsatisfiable, and the constructor rejects it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    conditions: Vec<(usize, Condition)>,
    performance: f64,
}

impl Rule {
    /// Build a rule.
    ///
    /// # Panics
    /// Panics if the same variable index appears twice (programmer error in
    /// rule construction).
    pub fn new(mut conditions: Vec<(usize, Condition)>, performance: f64) -> Self {
        conditions.sort_by_key(|&(i, _)| i);
        for w in conditions.windows(2) {
            assert_ne!(w[0].0, w[1].0, "Rule: variable {} appears twice", w[0].0);
        }
        Rule {
            conditions,
            performance,
        }
    }

    /// The conjunction's conditions, sorted by variable index.
    pub fn conditions(&self) -> &[(usize, Condition)] {
        &self.conditions
    }

    /// The performance returned when the rule fires.
    pub fn performance(&self) -> f64 {
        self.performance
    }

    /// "A rule is satisfied … when all its Boolean function results in the
    /// rule are true."
    ///
    /// # Panics
    /// Panics if a condition references a variable index outside `values`.
    pub fn satisfied(&self, values: &[i64]) -> bool {
        self.conditions.iter().all(|&(i, c)| c.matches(values[i]))
    }

    /// Distance from the input to this rule: the Euclidean norm of the
    /// per-condition distances (0 iff satisfied). The nearest-rule fallback
    /// minimizes this.
    pub fn distance(&self, values: &[i64]) -> f64 {
        self.conditions
            .iter()
            .map(|&(i, c)| {
                let d = c.distance(values[i]) as f64;
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Structural conflict test: two rules *may* fire on the same input iff
    /// every variable constrained by both has overlapping conditions.
    /// (Variables constrained by only one rule never disambiguate.)
    pub fn conflicts_with(&self, other: &Rule) -> bool {
        let mut i = 0;
        let mut j = 0;
        let mut disjoint_somewhere = false;
        while i < self.conditions.len() && j < other.conditions.len() {
            let (vi, ci) = self.conditions[i];
            let (vj, cj) = other.conditions[j];
            match vi.cmp(&vj) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if !ci.overlaps(&cj) {
                        disjoint_somewhere = true;
                        break;
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        !disjoint_somewhere
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} <-", self.performance)?;
        for (k, (i, c)) in self.conditions.iter().enumerate() {
            if k > 0 {
                write!(f, " &")?;
            }
            write!(f, " v{i} {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(conds: Vec<(usize, Condition)>, p: f64) -> Rule {
        Rule::new(conds, p)
    }

    #[test]
    fn satisfaction_is_conjunction() {
        let rule = r(
            vec![
                (0, Condition::Eq(3)),
                (2, Condition::Range { lo: 2, hi: 8 }),
            ],
            42.0,
        );
        assert!(rule.satisfied(&[3, 99, 5]));
        assert!(!rule.satisfied(&[3, 99, 8])); // second condition fails
        assert!(!rule.satisfied(&[4, 99, 5])); // first condition fails
        assert_eq!(rule.performance(), 42.0);
    }

    #[test]
    fn empty_rule_matches_everything() {
        let rule = r(vec![], 7.0);
        assert!(rule.satisfied(&[1, 2, 3]));
        assert_eq!(rule.distance(&[1, 2, 3]), 0.0);
    }

    #[test]
    fn distance_is_zero_iff_satisfied() {
        let rule = r(vec![(0, Condition::Eq(3)), (1, Condition::Eq(5))], 1.0);
        assert_eq!(rule.distance(&[3, 5]), 0.0);
        assert!((rule.distance(&[0, 9]) - 5.0).abs() < 1e-12); // sqrt(9+16)
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_variable_rejected() {
        let _ = r(vec![(0, Condition::Eq(1)), (0, Condition::Eq(2))], 1.0);
    }

    #[test]
    fn conflict_detection() {
        let a = r(vec![(0, Condition::Range { lo: 0, hi: 5 })], 1.0);
        let b = r(vec![(0, Condition::Range { lo: 5, hi: 9 })], 2.0);
        let c = r(vec![(0, Condition::Range { lo: 4, hi: 6 })], 3.0);
        assert!(!a.conflicts_with(&b));
        assert!(a.conflicts_with(&c));
        assert!(b.conflicts_with(&c));
        // Conditions on different variables can't disambiguate.
        let d = r(vec![(1, Condition::Eq(0))], 4.0);
        assert!(a.conflicts_with(&d));
        // Same variable, disjoint second condition.
        let e = r(
            vec![
                (0, Condition::Range { lo: 0, hi: 5 }),
                (1, Condition::Eq(1)),
            ],
            5.0,
        );
        let f = r(
            vec![
                (0, Condition::Range { lo: 0, hi: 5 }),
                (1, Condition::Eq(2)),
            ],
            6.0,
        );
        assert!(!e.conflicts_with(&f));
    }

    #[test]
    fn display_is_readable() {
        let rule = r(vec![(0, Condition::Eq(3))], 10.0);
        assert_eq!(rule.to_string(), "10.000 <- v0 = 3");
    }
}
