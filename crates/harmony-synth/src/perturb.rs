//! Run-to-run output perturbation.
//!
//! §5.2: "we also perturb the performance output from 0% to ±25% with a
//! uniform random distribution. This is because in real systems, given
//! exactly the same environment and input, the performance output will not
//! always be the same for two different runs."

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Multiplicative uniform noise: each call scales the input by
/// `1 + U(-level, +level)`.
///
/// Deterministic for a given seed, so whole experiments replay exactly.
#[derive(Debug, Clone)]
pub struct Perturb {
    level: f64,
    rng: ChaCha8Rng,
}

impl Perturb {
    /// Create a perturber with `level` in `[0, 1)` (0.25 = ±25%).
    ///
    /// # Panics
    /// Panics if `level` is negative or not finite.
    pub fn new(level: f64, seed: u64) -> Self {
        assert!(
            level.is_finite() && level >= 0.0,
            "perturbation level must be >= 0"
        );
        Perturb {
            level,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The perturbation level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Apply one draw of noise to a performance value.
    pub fn apply(&mut self, perf: f64) -> f64 {
        if self.level == 0.0 {
            return perf;
        }
        let noise: f64 = self.rng.gen_range(-self.level..=self.level);
        perf * (1.0 + noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_level_is_identity() {
        let mut p = Perturb::new(0.0, 1);
        assert_eq!(p.apply(42.0), 42.0);
        assert_eq!(p.apply(42.0), 42.0);
    }

    #[test]
    fn noise_is_bounded() {
        let mut p = Perturb::new(0.25, 7);
        for _ in 0..10_000 {
            let v = p.apply(100.0);
            assert!((75.0..=125.0).contains(&v), "{v} out of ±25% envelope");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = Perturb::new(0.1, 99);
        let mut b = Perturb::new(0.1, 99);
        for _ in 0..100 {
            assert_eq!(a.apply(10.0), b.apply(10.0));
        }
        let mut c = Perturb::new(0.1, 100);
        let run_a: Vec<f64> = (0..32).map(|_| a.apply(10.0)).collect();
        let run_c: Vec<f64> = (0..32).map(|_| c.apply(10.0)).collect();
        assert_ne!(run_a, run_c, "different seeds should differ");
    }

    #[test]
    fn mean_noise_is_roughly_centered() {
        let mut p = Perturb::new(0.25, 3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.apply(1.0)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean} should be near 1");
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_level_panics() {
        let _ = Perturb::new(-0.1, 0);
    }
}
