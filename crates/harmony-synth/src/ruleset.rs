//! Rule sets: explicit collections and grid-generated virtual collections.

use crate::condition::Condition;
use crate::rule::Rule;
use std::fmt;

/// A latent response surface over continuous cell-center coordinates.
pub type Latent = Box<dyn Fn(&[f64]) -> f64 + Send + Sync>;

/// Errors from building an explicit rule set.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleSetError {
    /// Two rules can fire on the same input ("no conflicts" is a DataGen
    /// invariant, §5.1); the payload is the offending pair's indices.
    Conflict(usize, usize),
    /// No rules at all — evaluation would have no fallback.
    Empty,
}

impl fmt::Display for RuleSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleSetError::Conflict(a, b) => write!(f, "rules {a} and {b} can both fire"),
            RuleSetError::Empty => write!(f, "rule set is empty"),
        }
    }
}

impl std::error::Error for RuleSetError {}

/// An explicit, conflict-free set of DataGen rules.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Build a rule set, verifying pairwise conflict-freedom (O(n²) over
    /// rule pairs — explicit sets are meant to stay small; large surfaces
    /// use [`GridRuleSet`]).
    pub fn new(rules: Vec<Rule>) -> Result<Self, RuleSetError> {
        if rules.is_empty() {
            return Err(RuleSetError::Empty);
        }
        for i in 0..rules.len() {
            for j in (i + 1)..rules.len() {
                if rules[i].conflicts_with(&rules[j]) {
                    return Err(RuleSetError::Conflict(i, j));
                }
            }
        }
        Ok(RuleSet { rules })
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluate an input: the satisfied rule's performance, or — "when no
    /// rule is satisfied, it will return the performance result from the
    /// closest rule".
    pub fn evaluate(&self, values: &[i64]) -> f64 {
        let mut best_dist = f64::INFINITY;
        let mut best_perf = 0.0;
        for r in &self.rules {
            let d = r.distance(values);
            if d == 0.0 {
                return r.performance();
            }
            if d < best_dist {
                best_dist = d;
                best_perf = r.performance();
            }
        }
        best_perf
    }

    /// The rule that fired for this input, if any (exact match only).
    pub fn matching_rule(&self, values: &[i64]) -> Option<&Rule> {
        self.rules.iter().find(|r| r.satisfied(values))
    }
}

/// A rule set generated from a grid partition of a latent response surface.
///
/// Per input dimension, `edges[d]` holds sorted cell boundaries
/// `b0 < b1 < … < bk`; cell `i` covers `[b_i, b_{i+1})`. The Cartesian
/// product of the per-dimension cells partitions the whole input space, so
/// *exactly one* (virtual) rule fires for any in-range input —
/// conflict-freedom and full coverage hold by construction instead of by
/// O(n²) checking. Out-of-range inputs clamp to the nearest cell, which is
/// precisely the nearest-rule fallback for grid rules.
///
/// The performance of a cell's rule is the latent surface sampled at the
/// cell's center, making the synthetic system piecewise-constant — the same
/// shape real DataGen output has.
pub struct GridRuleSet {
    edges: Vec<Vec<i64>>,
    latent: Latent,
}

impl GridRuleSet {
    /// Build from per-dimension cell edges and a latent surface.
    ///
    /// # Panics
    /// Panics if any dimension has fewer than 2 edges or unsorted edges.
    pub fn new(edges: Vec<Vec<i64>>, latent: Latent) -> Self {
        for (d, e) in edges.iter().enumerate() {
            assert!(e.len() >= 2, "GridRuleSet: dimension {d} needs >= 2 edges");
            assert!(
                e.windows(2).all(|w| w[0] < w[1]),
                "GridRuleSet: dimension {d} edges not sorted"
            );
        }
        GridRuleSet { edges, latent }
    }

    /// Convenience: unit cells covering `lo..=hi` in every dimension (each
    /// integer value is its own cell, so the grid reproduces the latent
    /// surface exactly on integer points).
    pub fn unit_cells(dims: usize, lo: i64, hi: i64, latent: Latent) -> Self {
        let edges: Vec<Vec<i64>> = (0..dims).map(|_| (lo..=hi + 1).collect()).collect();
        Self::new(edges, latent)
    }

    /// Number of input dimensions.
    pub fn dims(&self) -> usize {
        self.edges.len()
    }

    /// Total number of (virtual) rules.
    pub fn rule_count(&self) -> u128 {
        self.edges.iter().map(|e| (e.len() - 1) as u128).product()
    }

    /// Index of the cell containing `v` in dimension `d` (clamped).
    fn cell_index(&self, d: usize, v: i64) -> usize {
        let e = &self.edges[d];
        if v < e[0] {
            return 0;
        }
        let last = e.len() - 2;
        if v >= *e.last().expect("edges nonempty") {
            return last;
        }
        // Binary search for the cell with e[i] <= v < e[i+1].
        match e.binary_search(&v) {
            Ok(i) => i.min(last),
            Err(i) => i - 1,
        }
    }

    /// Center of cell `i` in dimension `d`.
    fn cell_center(&self, d: usize, i: usize) -> f64 {
        let e = &self.edges[d];
        // Cells are half-open integer ranges; the center of [a, b) is the
        // midpoint of its integer extent a ..= b-1.
        (e[i] as f64 + (e[i + 1] - 1) as f64) / 2.0
    }

    /// Evaluate an input through the grid rules.
    ///
    /// # Panics
    /// Panics if `values.len() != self.dims()`.
    pub fn evaluate(&self, values: &[i64]) -> f64 {
        assert_eq!(values.len(), self.dims(), "GridRuleSet: dimension mismatch");
        let center: Vec<f64> = values
            .iter()
            .enumerate()
            .map(|(d, &v)| self.cell_center(d, self.cell_index(d, v)))
            .collect();
        (self.latent)(&center)
    }

    /// Materialize the explicit [`Rule`] that fires for this input — the
    /// bridge between the virtual grid and the paper's rule notation.
    pub fn rule_for(&self, values: &[i64]) -> Rule {
        assert_eq!(values.len(), self.dims(), "GridRuleSet: dimension mismatch");
        let mut conds = Vec::with_capacity(self.dims());
        let mut center = Vec::with_capacity(self.dims());
        for (d, &v) in values.iter().enumerate() {
            let i = self.cell_index(d, v);
            let e = &self.edges[d];
            conds.push((
                d,
                Condition::Range {
                    lo: e[i],
                    hi: e[i + 1],
                },
            ));
            center.push(self.cell_center(d, i));
        }
        Rule::new(conds, (self.latent)(&center))
    }
}

impl fmt::Debug for GridRuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GridRuleSet({} dims, {} rules)",
            self.dims(),
            self.rule_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(var: usize, cond: Condition, p: f64) -> Rule {
        Rule::new(vec![(var, cond)], p)
    }

    #[test]
    fn ruleset_rejects_conflicts_and_empty() {
        let a = rule(0, Condition::Range { lo: 0, hi: 5 }, 1.0);
        let b = rule(0, Condition::Range { lo: 3, hi: 8 }, 2.0);
        assert_eq!(
            RuleSet::new(vec![a.clone(), b]),
            Err(RuleSetError::Conflict(0, 1))
        );
        assert_eq!(RuleSet::new(vec![]), Err(RuleSetError::Empty));
        assert!(RuleSet::new(vec![a]).is_ok());
    }

    #[test]
    fn ruleset_exact_match_wins() {
        let rs = RuleSet::new(vec![
            rule(0, Condition::Range { lo: 0, hi: 5 }, 10.0),
            rule(0, Condition::Range { lo: 5, hi: 10 }, 20.0),
        ])
        .unwrap();
        assert_eq!(rs.evaluate(&[2]), 10.0);
        assert_eq!(rs.evaluate(&[5]), 20.0);
        assert!(rs.matching_rule(&[2]).is_some());
    }

    #[test]
    fn ruleset_nearest_fallback() {
        let rs = RuleSet::new(vec![
            rule(0, Condition::Range { lo: 0, hi: 3 }, 10.0),
            rule(0, Condition::Range { lo: 7, hi: 9 }, 20.0),
        ])
        .unwrap();
        // 4 is distance 2 from [0,3) (nearest sat 2), distance 3 from [7,9).
        assert_eq!(rs.evaluate(&[4]), 10.0);
        assert_eq!(rs.evaluate(&[6]), 20.0);
        assert!(rs.matching_rule(&[4]).is_none());
    }

    #[test]
    fn grid_covers_everything_exactly_once() {
        let g = GridRuleSet::new(
            vec![vec![0, 5, 10], vec![0, 2, 4]],
            Box::new(|c| c[0] * 100.0 + c[1]),
        );
        assert_eq!(g.dims(), 2);
        assert_eq!(g.rule_count(), 4);
        // Every in-range point lands in exactly one cell; materialized
        // rules for two points in the same cell are identical.
        let r1 = g.rule_for(&[1, 0]);
        let r2 = g.rule_for(&[4, 1]);
        assert_eq!(r1, r2);
        let r3 = g.rule_for(&[5, 0]);
        assert_ne!(r1, r3);
        // And the materialized rule actually fires on its inputs.
        assert!(r1.satisfied(&[1, 0]));
        assert!(r3.satisfied(&[7, 1]));
    }

    #[test]
    fn grid_materialized_rules_are_conflict_free() {
        let g = GridRuleSet::new(
            vec![vec![0, 5, 10], vec![0, 2, 4]],
            Box::new(|c| c[0] + c[1]),
        );
        // Materialize all four cells' rules and check pairwise.
        let pts = [[0i64, 0i64], [0, 2], [5, 0], [5, 2]];
        let rules: Vec<Rule> = pts.iter().map(|p| g.rule_for(p)).collect();
        assert!(RuleSet::new(rules).is_ok());
    }

    #[test]
    fn grid_out_of_range_clamps_to_nearest_cell() {
        let g = GridRuleSet::new(vec![vec![0, 5, 10]], Box::new(|c| c[0]));
        assert_eq!(g.evaluate(&[-100]), g.evaluate(&[0]));
        assert_eq!(g.evaluate(&[100]), g.evaluate(&[9]));
    }

    #[test]
    fn unit_cells_reproduce_latent_on_integers() {
        let g = GridRuleSet::unit_cells(2, 1, 10, Box::new(|c| c[0] * 10.0 + c[1]));
        assert_eq!(g.rule_count(), 100);
        for a in 1..=10i64 {
            for b in 1..=10i64 {
                assert_eq!(g.evaluate(&[a, b]), (a * 10 + b) as f64);
            }
        }
    }

    #[test]
    fn grid_piecewise_constant_within_cell() {
        let g = GridRuleSet::new(vec![vec![0, 4, 8]], Box::new(|c| c[0] * c[0]));
        assert_eq!(g.evaluate(&[0]), g.evaluate(&[3]));
        assert_ne!(g.evaluate(&[3]), g.evaluate(&[4]));
    }
}
