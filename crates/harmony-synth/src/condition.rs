//! Boolean conditions over a single input variable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Boolean test over one input variable, the `Ca(vj)` of a DataGen rule.
///
/// The paper's examples are equality tests ("if vj = 3") and half-open
/// ranges ("if 2 ≤ vk < 8"); both are represented here, with ranges stored
/// inclusive-exclusive exactly as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Condition {
    /// `v == x`.
    Eq(i64),
    /// `lo <= v < hi`.
    Range {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
}

impl Condition {
    /// Does the value satisfy this condition?
    pub fn matches(&self, v: i64) -> bool {
        match *self {
            Condition::Eq(x) => v == x,
            Condition::Range { lo, hi } => lo <= v && v < hi,
        }
    }

    /// Distance from `v` to the nearest satisfying value — 0 when the
    /// condition already holds. Used by the nearest-rule fallback.
    pub fn distance(&self, v: i64) -> u64 {
        match *self {
            Condition::Eq(x) => v.abs_diff(x),
            Condition::Range { lo, hi } => {
                if self.matches(v) {
                    0
                } else if v < lo {
                    v.abs_diff(lo)
                } else {
                    // Nearest satisfying value is hi - 1 (range is empty if
                    // hi <= lo; then distance to lo is used as a sentinel).
                    if hi > lo {
                        v.abs_diff(hi - 1)
                    } else {
                        v.abs_diff(lo)
                    }
                }
            }
        }
    }

    /// Can any value satisfy both conditions? (Used for structural
    /// conflict detection between rules.)
    pub fn overlaps(&self, other: &Condition) -> bool {
        match (*self, *other) {
            (Condition::Eq(a), Condition::Eq(b)) => a == b,
            (Condition::Eq(a), Condition::Range { lo, hi })
            | (Condition::Range { lo, hi }, Condition::Eq(a)) => lo <= a && a < hi,
            (Condition::Range { lo: a, hi: b }, Condition::Range { lo: c, hi: d }) => {
                a < d && c < b && a < b && c < d
            }
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Condition::Eq(x) => write!(f, "= {x}"),
            Condition::Range { lo, hi } => write!(f, "in [{lo}, {hi})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_matches_and_distance() {
        let c = Condition::Eq(3);
        assert!(c.matches(3));
        assert!(!c.matches(4));
        assert_eq!(c.distance(3), 0);
        assert_eq!(c.distance(7), 4);
        assert_eq!(c.distance(-1), 4);
    }

    #[test]
    fn range_matches_half_open() {
        // "if 2 <= vk < 8"
        let c = Condition::Range { lo: 2, hi: 8 };
        assert!(c.matches(2));
        assert!(c.matches(7));
        assert!(!c.matches(8));
        assert!(!c.matches(1));
    }

    #[test]
    fn range_distance() {
        let c = Condition::Range { lo: 2, hi: 8 };
        assert_eq!(c.distance(5), 0);
        assert_eq!(c.distance(0), 2);
        assert_eq!(c.distance(10), 3); // nearest satisfying value is 7
    }

    #[test]
    fn empty_range_never_matches() {
        let c = Condition::Range { lo: 5, hi: 5 };
        assert!(!c.matches(5));
        assert!(c.distance(5) == 0 || c.distance(5) > 0); // defined, no panic
    }

    #[test]
    fn overlap_detection() {
        let r1 = Condition::Range { lo: 0, hi: 5 };
        let r2 = Condition::Range { lo: 5, hi: 10 };
        let r3 = Condition::Range { lo: 4, hi: 6 };
        assert!(!r1.overlaps(&r2)); // half-open ranges touch but don't overlap
        assert!(r1.overlaps(&r3));
        assert!(r2.overlaps(&r3));
        assert!(Condition::Eq(4).overlaps(&r1));
        assert!(!Condition::Eq(5).overlaps(&r1));
        assert!(Condition::Eq(2).overlaps(&Condition::Eq(2)));
        assert!(!Condition::Eq(2).overlaps(&Condition::Eq(3)));
        // Empty range overlaps nothing.
        let empty = Condition::Range { lo: 3, hi: 3 };
        assert!(!empty.overlaps(&r1));
    }
}
