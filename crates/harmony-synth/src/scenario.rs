//! The concrete synthetic experiment instances of §5.
//!
//! Two systems are generated:
//!
//! * [`section5_system`] — the fifteen-parameter system of §5.2/Figure 5,
//!   parameters named `D` through `R`, with `H` and `M` planted as
//!   performance-irrelevant, three workload-characteristic inputs
//!   (browsing, shopping, ordering), and uniform output perturbation.
//! * [`weblike_system`] — the §5.3/Figure 7 system "generated for a system
//!   like the cluster-based web service system": workload characteristics
//!   are a frequency distribution over web-interaction kinds, and the
//!   optimum shifts smoothly with the workload so historical data from a
//!   *nearby* workload is genuinely more useful than data from a distant
//!   one.
//!
//! All constants are fixed (not randomized) so every experiment in the
//! repository is reproducible bit-for-bit; they were chosen to give varied
//! per-parameter sensitivities and interior optima, not to encode any
//! particular result.

use crate::latent::LatentSurface;
use crate::perturb::Perturb;
use crate::ruleset::GridRuleSet;
use harmony_space::{Configuration, ParamDef, ParameterSpace};

/// Names of the fifteen §5 parameters, matching Figure 5's x-axis.
pub const SECTION5_PARAM_NAMES: [&str; 15] = [
    "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P", "Q", "R",
];

/// Indices of the two planted performance-irrelevant parameters (`H`, `M`).
pub const SECTION5_IRRELEVANT: [usize; 2] = [4, 9];

/// Workload-characteristic dimensions of the §5 system
/// ("three extra parameters are used to mimic the characteristics of the
/// input workloads: browsing, shopping and ordering").
pub const SECTION5_WORKLOAD_DIMS: usize = 3;

/// Value range shared by all §5 parameters.
pub const SECTION5_RANGE: (i64, i64) = (1, 10);

/// Workload-characteristic dimensions of the web-like system: frequency
/// shares of six web-interaction kinds.
pub const WEBLIKE_WORKLOAD_DIMS: usize = 6;

/// Number of tunable parameters in the web-like system.
pub const WEBLIKE_PARAMS: usize = 8;

/// A synthetic tunable system: a parameter space plus a grid rule set and
/// optional output perturbation. This is the black box the tuner sees.
pub struct SyntheticSystem {
    space: ParameterSpace,
    grid: GridRuleSet,
    perturb: Option<Perturb>,
    evaluations: u64,
}

impl SyntheticSystem {
    /// Assemble a system.
    pub fn new(space: ParameterSpace, grid: GridRuleSet, perturb: Option<Perturb>) -> Self {
        assert_eq!(space.len(), grid.dims(), "space and grid dimensions differ");
        SyntheticSystem {
            space,
            grid,
            perturb,
            evaluations: 0,
        }
    }

    /// The tunable space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// Measure one configuration (one "configuration exploration").
    ///
    /// # Panics
    /// Panics if the configuration has the wrong dimensionality.
    pub fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        self.evaluations += 1;
        let clean = self.grid.evaluate(cfg.values());
        match &mut self.perturb {
            Some(p) => p.apply(clean),
            None => clean,
        }
    }

    /// Noise-free evaluation (ground truth; used by experiment harnesses to
    /// score final configurations fairly).
    pub fn evaluate_clean(&self, cfg: &Configuration) -> f64 {
        self.grid.evaluate(cfg.values())
    }

    /// How many (noisy) evaluations have been performed.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

/// The §5 fifteen-parameter space: every parameter ranges 1..=10, step 1,
/// default 5.
pub fn section5_space() -> ParameterSpace {
    ParameterSpace::new(
        SECTION5_PARAM_NAMES
            .iter()
            .map(|n| ParamDef::int(*n, SECTION5_RANGE.0, SECTION5_RANGE.1, 5, 1))
            .collect(),
    )
    .expect("section5 space is statically valid")
}

/// The §5 latent surface.
///
/// Relevant parameters get weights spread over roughly 4–50 (so Figure 5
/// shows a spectrum of sensitivities), interior peaks, and mild workload
/// couplings; `H` (index 4) and `M` (index 9) get exactly zero weight.
pub fn section5_surface() -> LatentSurface {
    let mut b = LatentSurface::builder(15, SECTION5_WORKLOAD_DIMS)
        .offset(18.0)
        .scale(0.9);
    for j in 0..15 {
        if SECTION5_IRRELEVANT.contains(&j) {
            continue; // planted irrelevant: zero weight, zero couplings
        }
        // Deterministic variety: weights cycle through a co-prime lattice,
        // peaks stay in the interior 3..=8.
        let weight = 4.0 + ((j * 7) % 12) as f64 * 3.8;
        let peak = 3.0 + ((j * 5) % 6) as f64;
        let halfwidth = 5.0 + ((j * 3) % 4) as f64;
        b = b.param(j, peak, halfwidth, weight);
        // Workload couplings: browsing favours even-indexed parameters,
        // ordering odd-indexed ones — importance shifts with the mix.
        let k = j % SECTION5_WORKLOAD_DIMS;
        b = b.weight_coupling(j, k, 6.0);
    }
    // A few weak interactions (§3 assumes interaction is relatively small).
    b = b
        .interaction(0, 2, 3.0)
        .interaction(5, 7, 2.0)
        .interaction(11, 14, 2.5);
    b.build()
}

/// Build the complete §5 system for one workload mix.
///
/// `workload` is `[browsing, shopping, ordering]` (any non-negative
/// weights; typically summing to 1). `perturb_level` is the §5.2 output
/// perturbation (0.0, 0.05, 0.10, 0.25 in the paper).
pub fn section5_system(workload: [f64; 3], perturb_level: f64, seed: u64) -> SyntheticSystem {
    let space = section5_space();
    let latent = section5_surface().with_workload(workload.to_vec());
    let grid = GridRuleSet::unit_cells(space.len(), SECTION5_RANGE.0, SECTION5_RANGE.1, latent);
    let perturb = (perturb_level > 0.0).then(|| Perturb::new(perturb_level, seed));
    SyntheticSystem::new(space, grid, perturb)
}

/// The web-like tunable space: eight parameters with heterogeneous ranges
/// mimicking connection counts, buffer sizes and cache sizes.
pub fn weblike_space() -> ParameterSpace {
    ParameterSpace::new(vec![
        ParamDef::int("accept_count", 1, 32, 8, 1),
        ParamDef::int("max_processors", 1, 64, 16, 1),
        ParamDef::int("buffer_kb", 1, 128, 16, 1),
        ParamDef::int("max_connections", 1, 100, 20, 1),
        ParamDef::int("net_buffer_kb", 1, 64, 8, 1),
        ParamDef::int("delayed_queue", 1, 50, 10, 1),
        ParamDef::int("cache_mb", 1, 256, 32, 1),
        ParamDef::int("min_object_kb", 1, 64, 4, 1),
    ])
    .expect("weblike space is statically valid")
}

/// The web-like latent surface. Peaks shift with the workload-interaction
/// frequency distribution, so two workloads at small Euclidean distance in
/// characteristic space have nearby optima (the property Figure 7 needs).
pub fn weblike_surface() -> LatentSurface {
    let ranges: [(f64, f64); WEBLIKE_PARAMS] = [
        (1.0, 32.0),
        (1.0, 64.0),
        (1.0, 128.0),
        (1.0, 100.0),
        (1.0, 64.0),
        (1.0, 50.0),
        (1.0, 256.0),
        (1.0, 64.0),
    ];
    let mut b = LatentSurface::builder(WEBLIKE_PARAMS, WEBLIKE_WORKLOAD_DIMS)
        .offset(25.0)
        .scale(0.8)
        // Closed-loop throughput saturates: most configurations sit near
        // the ceiling, only bottlenecked ones fall off (Figure 4's
        // measured distribution shape).
        .saturating(110.0, 14.0);
    for (j, &(lo, hi)) in ranges.iter().enumerate() {
        let span = hi - lo;
        let peak = lo + span * (0.3 + 0.05 * j as f64); // interior, varied
        let halfwidth = span * 0.55;
        let weight = 6.0 + ((j * 5) % 9) as f64 * 3.0;
        b = b.param(j, peak, halfwidth, weight);
        // Every workload dimension drags some peaks around: parameter j
        // couples to dimensions j%6 and (j+3)%6 with opposite signs, so
        // changing the interaction mix moves the optimum smoothly.
        b = b
            .peak_coupling(j, j % WEBLIKE_WORKLOAD_DIMS, span * 0.35)
            .peak_coupling(j, (j + 3) % WEBLIKE_WORKLOAD_DIMS, -span * 0.25)
            .weight_coupling(j, (j + 1) % WEBLIKE_WORKLOAD_DIMS, 4.0);
    }
    b = b.interaction(1, 3, 4.0).interaction(4, 5, 3.0);
    b.build()
}

/// Build the web-like system for one workload characteristic vector
/// (length [`WEBLIKE_WORKLOAD_DIMS`]).
///
/// # Panics
/// Panics if the workload vector has the wrong length.
pub fn weblike_system(workload: &[f64], perturb_level: f64, seed: u64) -> SyntheticSystem {
    assert_eq!(
        workload.len(),
        WEBLIKE_WORKLOAD_DIMS,
        "weblike workload dims"
    );
    let space = weblike_space();
    let additive = weblike_surface().with_workload(workload.to_vec());
    // Web throughput is bottleneck-limited: undersized concurrency knobs
    // (worker processors, connection pool) scale the whole system down
    // multiplicatively, producing the low-performance tail the measured
    // Figure-4 distribution has; everything else rides the saturating
    // plateau.
    // The concurrency each tier *needs* depends on the interaction mix
    // (more DB-heavy traffic needs a deeper pool), so workloads at larger
    // characteristic distance have genuinely different bottleneck
    // settings — the property the Figure-7 experiment rests on.
    let worker_need = 8.0 + 45.0 * workload[0] + 25.0 * workload[3];
    let pool_need = 6.0 + 40.0 * workload[1] + 30.0 * workload[4];
    let latent: crate::ruleset::Latent = Box::new(move |v: &[f64]| {
        let base = additive(v);
        let worker_cap = (v[1] / worker_need).min(1.0); // undersized processors starve the pipeline
        let pool_cap = (v[3] / pool_need).min(1.0); // undersized pool starves the DB
        base * worker_cap.sqrt() * pool_cap.sqrt()
    });
    // Coarser grid cells (width scaled to each range) keep the virtual
    // rule count meaningful while preserving piecewise-constant structure.
    let edges: Vec<Vec<i64>> = space
        .params()
        .iter()
        .map(|p| {
            let lo = p.static_min();
            let hi = p.static_max();
            let cells = 16.min((hi - lo) as usize + 1).max(2);
            let mut e: Vec<i64> = (0..cells)
                .map(|i| lo + ((hi + 1 - lo) as f64 * i as f64 / cells as f64).round() as i64)
                .collect();
            e.push(hi + 1);
            e.dedup();
            e
        })
        .collect();
    let grid = GridRuleSet::new(edges, latent);
    let perturb = (perturb_level > 0.0).then(|| Perturb::new(perturb_level, seed));
    SyntheticSystem::new(space, grid, perturb)
}

/// The Figure-7 system: "synthetic data generated for a system like the
/// cluster-based web service system", purpose-built so that the *optimum
/// moves substantially* with the workload characteristics. Tuning
/// experience recorded under workload A′ then anchors the search farther
/// from workload A's optimum the farther apart the two are — the property
/// the historical-data-distance experiment measures.
///
/// Unlike [`weblike_system`] there is no saturating plateau: the response
/// is a steep unimodal basin, so the distance of the starting simplex from
/// the optimum translates directly into extra search iterations.
pub fn history_sensitivity_system(
    workload: &[f64],
    perturb_level: f64,
    seed: u64,
) -> SyntheticSystem {
    assert_eq!(workload.len(), WEBLIKE_WORKLOAD_DIMS, "workload dims");
    let space = weblike_space();
    let mut b = LatentSurface::builder(WEBLIKE_PARAMS, WEBLIKE_WORKLOAD_DIMS).offset(40.0);
    for (j, p) in space.params().iter().enumerate() {
        let span = (p.static_max() - p.static_min()) as f64;
        let peak = p.static_min() as f64 + span * 0.5;
        // Narrow basins and strong peak-workload couplings: one unit of
        // characteristic movement drags each peak across most of its range.
        b = b
            .param(j, peak, span * 0.45, 8.0)
            .peak_coupling(j, j % WEBLIKE_WORKLOAD_DIMS, span * 0.9)
            .peak_coupling(j, (j + 2) % WEBLIKE_WORKLOAD_DIMS, -span * 0.6);
    }
    let latent = b.build().with_workload(workload.to_vec());
    let edges: Vec<Vec<i64>> = space
        .params()
        .iter()
        .map(|p| {
            let mut e: Vec<i64> = (p.static_min()..=p.static_max() + 1).collect();
            e.dedup();
            e
        })
        .collect();
    let grid = GridRuleSet::new(edges, latent);
    let perturb = (perturb_level > 0.0).then(|| Perturb::new(perturb_level, seed));
    SyntheticSystem::new(space, grid, perturb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section5_space_shape() {
        let s = section5_space();
        assert_eq!(s.len(), 15);
        assert_eq!(s.param(4).name(), "H");
        assert_eq!(s.param(9).name(), "M");
        assert_eq!(s.unconstrained_size(), 10u128.pow(15));
    }

    #[test]
    fn irrelevant_parameters_do_not_affect_performance() {
        let mut sys = section5_system([0.4, 0.4, 0.2], 0.0, 0);
        let base = sys.space().default_configuration();
        let p0 = sys.evaluate(&base);
        for &j in &SECTION5_IRRELEVANT {
            for v in [1, 3, 7, 10] {
                let cfg = base.with_value(j, v);
                assert_eq!(sys.evaluate(&cfg), p0, "param {j} at {v} changed output");
            }
        }
        assert_eq!(sys.evaluations(), 9);
    }

    #[test]
    fn relevant_parameters_do_affect_performance() {
        let mut sys = section5_system([0.4, 0.4, 0.2], 0.0, 0);
        let base = sys.space().default_configuration();
        let p0 = sys.evaluate(&base);
        let mut moved = 0;
        for j in 0..15 {
            if SECTION5_IRRELEVANT.contains(&j) {
                continue;
            }
            let changed = [1, 10]
                .iter()
                .any(|&v| (sys.evaluate(&base.with_value(j, v)) - p0).abs() > 1e-9);
            if changed {
                moved += 1;
            }
        }
        assert!(
            moved >= 11,
            "only {moved} of 13 relevant parameters moved the output"
        );
    }

    #[test]
    fn workload_changes_sensitivities() {
        let mut browsing = section5_system([1.0, 0.0, 0.0], 0.0, 0);
        let mut ordering = section5_system([0.0, 0.0, 1.0], 0.0, 0);
        let base = browsing.space().default_configuration();
        // At least one parameter should change its swing between mixes.
        let mut any_diff = false;
        for j in 0..15 {
            let swing = |sys: &mut SyntheticSystem| {
                let a = sys.evaluate(&base.with_value(j, 1));
                let b = sys.evaluate(&base.with_value(j, 10));
                (a - b).abs()
            };
            if (swing(&mut browsing) - swing(&mut ordering)).abs() > 1.0 {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "sensitivities should depend on workload mix");
    }

    #[test]
    fn perturbation_stays_within_envelope() {
        let mut clean = section5_system([0.5, 0.3, 0.2], 0.0, 1);
        let mut noisy = section5_system([0.5, 0.3, 0.2], 0.25, 1);
        let cfg = clean.space().default_configuration();
        let truth = clean.evaluate(&cfg);
        for _ in 0..200 {
            let v = noisy.evaluate(&cfg);
            assert!(v >= truth * 0.75 - 1e-9 && v <= truth * 1.25 + 1e-9);
        }
    }

    #[test]
    fn weblike_optimum_shifts_with_workload() {
        // Two distant workloads should have different best configurations
        // when scanned along the most coupled parameter.
        let w1 = [1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let w2 = [0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let s1 = weblike_system(&w1, 0.0, 0);
        let s2 = weblike_system(&w2, 0.0, 0);
        let base = s1.space().default_configuration();
        let best_value = |sys: &SyntheticSystem, j: usize| {
            let p = sys.space().param(j);
            p.static_values()
                .into_iter()
                .max_by(|&a, &b| {
                    sys.evaluate_clean(&base.with_value(j, a))
                        .total_cmp(&sys.evaluate_clean(&base.with_value(j, b)))
                })
                .unwrap()
        };
        // Parameter 0 couples positively to dim 0 and negatively to dim 3.
        let b1 = best_value(&s1, 0);
        let b2 = best_value(&s2, 0);
        assert_ne!(
            b1, b2,
            "optimum of parameter 0 should move between workloads"
        );
    }

    #[test]
    fn history_sensitivity_optimum_moves_with_workload() {
        let w1 = [0.6, 0.1, 0.1, 0.1, 0.05, 0.05];
        let w2 = [0.05, 0.1, 0.1, 0.1, 0.05, 0.6];
        let s1 = history_sensitivity_system(&w1, 0.0, 0);
        let s2 = history_sensitivity_system(&w2, 0.0, 0);
        let base = s1.space().default_configuration();
        // Scan parameter 0 (coupled to dims 0 and 2): best values differ.
        let best = |sys: &SyntheticSystem| {
            s1.space()
                .param(0)
                .static_values()
                .into_iter()
                .max_by(|&a, &b| {
                    sys.evaluate_clean(&base.with_value(0, a))
                        .total_cmp(&sys.evaluate_clean(&base.with_value(0, b)))
                })
                .unwrap()
        };
        let b1 = best(&s1);
        let b2 = best(&s2);
        assert!(
            (b1 - b2).abs() >= 4,
            "optimum should move substantially: {b1} vs {b2}"
        );
        // And a config tuned for w1 loses real performance under w2.
        let tuned_for_w1 = base.with_value(0, b1);
        let loss = s2.evaluate_clean(&base.with_value(0, b2)) - s2.evaluate_clean(&tuned_for_w1);
        assert!(loss > 1.0, "stale config should lose noticeably: {loss}");
    }

    #[test]
    fn weblike_performance_positive_over_random_sample() {
        let sys = weblike_system(&[0.3, 0.2, 0.1, 0.2, 0.1, 0.1], 0.0, 0);
        let space = weblike_space();
        // Deterministic pseudo-random fractions.
        let mut s = 42u64;
        for _ in 0..200 {
            let fracs: Vec<f64> = (0..space.len())
                .map(|_| {
                    s = s
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((s >> 33) as f64) / (u32::MAX as f64)
                })
                .collect();
            let cfg = space.from_fractions(&fracs);
            let p = sys.evaluate_clean(&cfg);
            assert!(p > 0.0, "performance must stay positive, got {p} at {cfg}");
        }
    }
}
