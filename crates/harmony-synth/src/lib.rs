#![warn(missing_docs)]

//! DataGen-equivalent synthetic performance data for Active Harmony.
//!
//! §5.1 of the paper: "we used DataGen to generate synthetic data with the
//! desired attributes. The software generates a set of conjunctive normal
//! form rules … Each rule is in the form of `Pi ← Ca(vj) & Cb(vk) & …`
//! where Pi represents the performance result; vj, vk, vl are the input
//! variables that represent a set of tunable parameters (i.e., one
//! configuration) and workload characteristics. … The set of rules are
//! carefully generated so that no more than one rule will be satisfied for
//! all possible combinations of input variables (i.e., no conflicts). When
//! no rule is satisfied, it will return the performance result from the
//! closest rule."
//!
//! DataGen 3.0 itself is closed-source, so this crate rebuilds the same
//! machinery:
//!
//! * [`Condition`]/[`Rule`]/[`RuleSet`] — the rule language exactly as
//!   described, with structural conflict detection and nearest-rule
//!   fallback;
//! * [`GridRuleSet`] — a rule set generated from a *latent response
//!   surface* quantized on a grid partition; one rule per cell, which makes
//!   conflict-freedom and full coverage hold by construction (this is how
//!   large rule sets are "carefully generated" without materializing an
//!   exponential rule list);
//! * [`LatentSurface`] — composable synthetic response surfaces with
//!   per-parameter unimodal preferences, workload-dependent weights,
//!   pairwise interactions, and designated performance-irrelevant
//!   parameters;
//! * [`Perturb`] — the §5.2 uniform ±x% run-to-run output perturbation;
//! * [`scenario`] — the concrete §5 experiment instances (the fifteen
//!   parameters `D..R` with `H` and `M` irrelevant, and the
//!   web-service-like system used for the Figure-7 history experiment).

pub mod condition;
pub mod latent;
pub mod perturb;
pub mod rule;
pub mod ruleset;
pub mod scenario;

pub use condition::Condition;
pub use latent::{LatentSurface, LatentSurfaceBuilder};
pub use perturb::Perturb;
pub use rule::Rule;
pub use ruleset::{GridRuleSet, RuleSet, RuleSetError};
