//! Latent response surfaces: the "desired attributes" behind generated
//! rule sets.
//!
//! §5.1 generates data "similar to an existing e-commerce web application"
//! where "the performance is decided by both the input characteristics and
//! the tunable parameter values". A [`LatentSurface`] models exactly that:
//!
//! * each parameter contributes a unimodal bump peaked somewhere in the
//!   interior (so extreme values perform poorly, matching §4.1's
//!   observation);
//! * each parameter's *weight* — how much it matters — may depend on the
//!   workload characteristics (Figure 8: "when the system faces different
//!   workloads, the value for each parameter will have different
//!   importance");
//! * each parameter's *peak* — where its best value lies — may also shift
//!   with the workload (this is what makes historical data from a nearby
//!   workload useful, Figure 7);
//! * parameters with zero weight and zero couplings are performance
//!   irrelevant (the two planted irrelevant parameters of §5.2);
//! * sparse pairwise interactions keep "the interaction among parameters …
//!   relatively small" (§3) but non-zero.

/// Per-parameter shape description.
#[derive(Debug, Clone)]
struct ParamShape {
    peak: f64,
    halfwidth: f64,
    base_weight: f64,
    weight_coupling: Vec<f64>,
    peak_coupling: Vec<f64>,
}

/// A deterministic synthetic response surface over continuous parameter
/// coordinates plus a workload-characteristic vector.
#[derive(Debug, Clone)]
pub struct LatentSurface {
    shapes: Vec<ParamShape>,
    interactions: Vec<(usize, usize, f64)>,
    offset: f64,
    scale: f64,
    saturation: Option<(f64, f64)>,
    workload_dims: usize,
}

impl LatentSurface {
    /// Start building a surface over `params` parameters and
    /// `workload_dims` workload characteristics.
    pub fn builder(params: usize, workload_dims: usize) -> LatentSurfaceBuilder {
        LatentSurfaceBuilder {
            shapes: vec![
                ParamShape {
                    peak: 0.0,
                    halfwidth: 1.0,
                    base_weight: 0.0,
                    weight_coupling: vec![0.0; workload_dims],
                    peak_coupling: vec![0.0; workload_dims],
                };
                params
            ],
            interactions: Vec::new(),
            offset: 0.0,
            scale: 1.0,
            saturation: None,
            workload_dims,
        }
    }

    /// Number of parameters.
    pub fn params(&self) -> usize {
        self.shapes.len()
    }

    /// Number of workload characteristic dimensions.
    pub fn workload_dims(&self) -> usize {
        self.workload_dims
    }

    /// The workload-adjusted peak location of parameter `j`.
    pub fn effective_peak(&self, j: usize, workload: &[f64]) -> f64 {
        let s = &self.shapes[j];
        s.peak + dot(&s.peak_coupling, workload)
    }

    /// The workload-adjusted weight of parameter `j` (clamped at 0).
    pub fn effective_weight(&self, j: usize, workload: &[f64]) -> f64 {
        let s = &self.shapes[j];
        (s.base_weight + dot(&s.weight_coupling, workload)).max(0.0)
    }

    /// Evaluate the surface.
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn eval(&self, params: &[f64], workload: &[f64]) -> f64 {
        assert_eq!(params.len(), self.shapes.len(), "LatentSurface: param dims");
        assert_eq!(
            workload.len(),
            self.workload_dims,
            "LatentSurface: workload dims"
        );
        let bumps: Vec<f64> = self
            .shapes
            .iter()
            .enumerate()
            .map(|(j, s)| bump((params[j] - self.effective_peak(j, workload)) / s.halfwidth))
            .collect();
        let mut total = self.offset;
        for (j, b) in bumps.iter().enumerate() {
            total += self.effective_weight(j, workload) * b;
        }
        for &(i, j, strength) in &self.interactions {
            total += strength * bumps[i] * bumps[j];
        }
        let t = self.scale * total;
        match self.saturation {
            // Throughput-style saturating response: most of the space sits
            // near the ceiling and only genuinely bad regions fall off —
            // the shape real closed-loop systems (and Figure 4's measured
            // distribution) have.
            Some((cap, half)) => {
                let t = t.max(0.0);
                cap * t / (t + half)
            }
            None => t,
        }
    }

    /// Wrap into a closure over parameter coordinates with the workload
    /// frozen — the form [`crate::GridRuleSet`] consumes.
    pub fn with_workload(self, workload: Vec<f64>) -> crate::ruleset::Latent {
        assert_eq!(
            workload.len(),
            self.workload_dims,
            "LatentSurface: workload dims"
        );
        Box::new(move |params| self.eval(params, &workload))
    }
}

/// Unimodal bump: 1 at the peak, 0 beyond one halfwidth.
fn bump(t: f64) -> f64 {
    (1.0 - t * t).max(0.0)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Builder for [`LatentSurface`].
#[derive(Debug, Clone)]
pub struct LatentSurfaceBuilder {
    shapes: Vec<ParamShape>,
    interactions: Vec<(usize, usize, f64)>,
    offset: f64,
    scale: f64,
    saturation: Option<(f64, f64)>,
    workload_dims: usize,
}

impl LatentSurfaceBuilder {
    /// Describe parameter `j`: where its bump peaks, how wide it is, and
    /// its workload-independent weight. A parameter left undescribed (or
    /// given zero weight and couplings) is performance-irrelevant.
    ///
    /// # Panics
    /// Panics if `j` is out of range or `halfwidth <= 0`.
    pub fn param(mut self, j: usize, peak: f64, halfwidth: f64, base_weight: f64) -> Self {
        assert!(halfwidth > 0.0, "halfwidth must be positive");
        let s = &mut self.shapes[j];
        s.peak = peak;
        s.halfwidth = halfwidth;
        s.base_weight = base_weight;
        self
    }

    /// Make parameter `j`'s weight depend on workload dimension `k` with
    /// coefficient `c`.
    pub fn weight_coupling(mut self, j: usize, k: usize, c: f64) -> Self {
        self.shapes[j].weight_coupling[k] = c;
        self
    }

    /// Make parameter `j`'s peak location shift with workload dimension
    /// `k` by `c` per unit of characteristic.
    pub fn peak_coupling(mut self, j: usize, k: usize, c: f64) -> Self {
        self.shapes[j].peak_coupling[k] = c;
        self
    }

    /// Add a pairwise interaction term `strength · bump_i · bump_j`.
    ///
    /// # Panics
    /// Panics if `i == j` or out of range.
    pub fn interaction(mut self, i: usize, j: usize, strength: f64) -> Self {
        assert_ne!(i, j, "interaction must couple two distinct parameters");
        assert!(
            i < self.shapes.len() && j < self.shapes.len(),
            "interaction index out of range"
        );
        self.interactions.push((i, j, strength));
        self
    }

    /// Additive offset (the floor performance).
    pub fn offset(mut self, o: f64) -> Self {
        self.offset = o;
        self
    }

    /// Multiplicative output scale.
    pub fn scale(mut self, s: f64) -> Self {
        self.scale = s;
        self
    }

    /// Saturating (throughput-style) output: `cap·t/(t+half)` applied
    /// after scale/offset. `half` is the input level producing half of
    /// `cap`.
    ///
    /// # Panics
    /// Panics unless both values are positive.
    pub fn saturating(mut self, cap: f64, half: f64) -> Self {
        assert!(
            cap > 0.0 && half > 0.0,
            "saturation parameters must be positive"
        );
        self.saturation = Some((cap, half));
        self
    }

    /// Finish.
    pub fn build(self) -> LatentSurface {
        LatentSurface {
            shapes: self.shapes,
            interactions: self.interactions,
            offset: self.offset,
            scale: self.scale,
            saturation: self.saturation,
            workload_dims: self.workload_dims,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface() -> LatentSurface {
        LatentSurface::builder(3, 2)
            .param(0, 5.0, 4.0, 10.0)
            .param(1, 2.0, 3.0, 5.0)
            // parameter 2 left irrelevant
            .weight_coupling(0, 0, 8.0)
            .peak_coupling(1, 1, 3.0)
            .interaction(0, 1, 2.0)
            .offset(20.0)
            .build()
    }

    #[test]
    fn peak_is_the_maximum_along_each_axis() {
        let s = surface();
        let w = [0.5, 0.5];
        let at_peak = s.eval(&[5.0, 3.5, 0.0], &w);
        for x in [1.0, 3.0, 7.0, 9.0] {
            assert!(s.eval(&[x, 3.5, 0.0], &w) <= at_peak, "x={x}");
        }
    }

    #[test]
    fn irrelevant_parameter_does_not_move_output() {
        let s = surface();
        let w = [0.3, 0.7];
        let base = s.eval(&[5.0, 2.0, 0.0], &w);
        for v in [-5.0, 0.0, 3.0, 100.0] {
            assert_eq!(s.eval(&[5.0, 2.0, v], &w), base);
        }
    }

    #[test]
    fn weight_coupling_changes_importance_with_workload() {
        let s = surface();
        // Swing of parameter 0 under two workloads.
        let swing = |w: &[f64]| s.eval(&[5.0, 2.0, 0.0], w) - s.eval(&[9.0, 2.0, 0.0], w);
        let low = swing(&[0.0, 0.0]);
        let high = swing(&[1.0, 0.0]);
        assert!(
            high > low,
            "workload dim 0 should amplify parameter 0: {high} vs {low}"
        );
    }

    #[test]
    fn peak_coupling_moves_the_optimum() {
        let s = surface();
        assert_eq!(s.effective_peak(1, &[0.0, 0.0]), 2.0);
        assert_eq!(s.effective_peak(1, &[0.0, 1.0]), 5.0);
    }

    #[test]
    fn weight_clamped_at_zero() {
        let s = LatentSurface::builder(1, 1)
            .param(0, 0.0, 1.0, 1.0)
            .weight_coupling(0, 0, -100.0)
            .build();
        assert_eq!(s.effective_weight(0, &[1.0]), 0.0);
    }

    #[test]
    fn interactions_are_additive() {
        let with = LatentSurface::builder(2, 0)
            .param(0, 0.0, 1.0, 1.0)
            .param(1, 0.0, 1.0, 1.0)
            .interaction(0, 1, 3.0)
            .build();
        let without = LatentSurface::builder(2, 0)
            .param(0, 0.0, 1.0, 1.0)
            .param(1, 0.0, 1.0, 1.0)
            .build();
        let w: [f64; 0] = [];
        // Both bumps at max (value 1.0 each): interaction adds 3.0.
        assert!((with.eval(&[0.0, 0.0], &w) - without.eval(&[0.0, 0.0], &w) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn with_workload_freezes_characteristics() {
        let f = surface().with_workload(vec![0.5, 0.5]);
        let s2 = surface();
        assert_eq!(f(&[5.0, 2.0, 0.0]), s2.eval(&[5.0, 2.0, 0.0], &[0.5, 0.5]));
    }

    #[test]
    fn scale_and_offset() {
        let s = LatentSurface::builder(1, 0)
            .param(0, 0.0, 1.0, 2.0)
            .offset(10.0)
            .scale(3.0)
            .build();
        let w: [f64; 0] = [];
        assert!((s.eval(&[0.0], &w) - 36.0).abs() < 1e-12); // 3*(10+2)
        assert!((s.eval(&[100.0], &w) - 30.0).abs() < 1e-12); // 3*10
    }
}
