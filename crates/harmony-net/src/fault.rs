//! Fault-injection proxy for resilience testing.
//!
//! [`FaultProxy`] sits between a client and a daemon, forwarding whole
//! frames (one `u32` big-endian length prefix plus payload per message)
//! and injecting faults from a [`FaultPlan`] on a chosen schedule: it
//! can cut the connection before a request reaches the server, cut it
//! after the server processed the request but before the response gets
//! back, truncate a response mid-frame, delay a response past the
//! client's deadline, or trickle a request into the server one byte at
//! a time (a slowloris, exercising the server's partial-frame
//! buffering). Each of those exercises a different leg of the
//! reconnect/resume/replay machinery.
//!
//! The schedule is keyed by the proxy-global request-frame counter, so a
//! plan replays identically for a deterministic client (including the
//! extra `Hello`/`Resume` frames reconnects add).
//!
//! The proxy is wire-format-agnostic: it relays and faults raw
//! length-prefixed frames without ever decoding a payload, so protocol
//! v3's binary encoding passes through it exactly like v1/v2 JSON —
//! every fault kind works identically against either format.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One way the proxy can break a conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Drop both connections before the request frame is forwarded: the
    /// server never sees the request.
    CutBeforeForward,
    /// Forward the request, let the server process it, then drop both
    /// connections before the response gets back: the client must
    /// replay a request whose effect already happened.
    CutBeforeResponse,
    /// Forward the request, then send only half of the response frame
    /// and drop: the client reads a short frame.
    TruncateResponse,
    /// Forward the request, sit on the response for the given time,
    /// then deliver it (late — typically past the client's deadline).
    DelayResponse(Duration),
    /// Forward the request one byte at a time with the given pause
    /// between bytes — a cooperative slowloris. The server sees the
    /// frame dribble in and must hold partial-frame state (cheaply)
    /// until the last byte lands; the conversation then continues
    /// normally.
    TrickleForward(Duration),
}

/// Which request frames get which faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: HashMap<u64, FaultKind>,
}

impl FaultPlan {
    /// No faults: the proxy is a transparent relay.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// Explicit schedule: `(request frame index, fault)` pairs. Frame 0
    /// is the first request the proxy ever sees (usually `Hello`).
    pub fn at(faults: impl IntoIterator<Item = (u64, FaultKind)>) -> FaultPlan {
        FaultPlan {
            faults: faults.into_iter().collect(),
        }
    }

    /// `count` pseudorandom faults over pseudorandom frame indices,
    /// deterministic in `seed`. Frames 0 and 1 are spared so the very
    /// first `Hello`/`SessionStart` exchange establishes a session to
    /// resume; everything after is fair game.
    pub fn seeded(seed: u64, count: usize) -> FaultPlan {
        // Golden-ratio mix so adjacent seeds give unrelated streams
        // (xorshift needs a nonzero state, hence the `| 1`).
        let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut faults = HashMap::new();
        while faults.len() < count {
            let frame = 2 + next() % (4 * count as u64 + 8);
            let kind = match next() % 4 {
                0 => FaultKind::CutBeforeForward,
                1 => FaultKind::CutBeforeResponse,
                2 => FaultKind::TruncateResponse,
                _ => FaultKind::DelayResponse(Duration::from_millis(5 + next() % 20)),
            };
            faults.entry(frame).or_insert(kind);
        }
        FaultPlan { faults }
    }
}

struct ProxyShared {
    upstream: SocketAddr,
    plan: FaultPlan,
    /// Request frames seen so far, across all proxied connections.
    frames: AtomicU64,
    /// Faults actually injected (a plan entry past the last frame the
    /// client sends never fires).
    injected: Mutex<Vec<(u64, FaultKind)>>,
    stop: AtomicBool,
}

/// A TCP relay that injects faults from a [`FaultPlan`].
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Bind a local port and start relaying to `upstream`.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream,
            plan,
            frames: AtomicU64::new(0),
            injected: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        Ok(FaultProxy {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Faults injected so far, as `(frame index, fault)` pairs.
    pub fn injected(&self) -> Vec<(u64, FaultKind)> {
        self.shared.injected.lock().unwrap().clone()
    }

    /// Request frames relayed or faulted so far.
    pub fn frames_seen(&self) -> u64 {
        self.shared.frames.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the acceptor. In-flight relay threads
    /// wind down on their own as connections close.
    pub fn stop(&mut self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<ProxyShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(client) = stream else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let _ = relay(client, &shared);
        });
    }
}

/// Relay one client connection frame-by-frame until either side closes
/// or a cut fault fires.
fn relay(mut client: TcpStream, shared: &Arc<ProxyShared>) -> io::Result<()> {
    let mut server = TcpStream::connect(shared.upstream)?;
    server.set_nodelay(true)?;
    client.set_nodelay(true)?;
    loop {
        let request = match read_raw_frame(&mut client) {
            Ok(frame) => frame,
            Err(_) => return Ok(()), // client went away
        };
        let index = shared.frames.fetch_add(1, Ordering::SeqCst);
        let fault = shared.plan.faults.get(&index).copied();
        if let Some(kind) = fault {
            shared.injected.lock().unwrap().push((index, kind));
        }
        match fault {
            Some(FaultKind::CutBeforeForward) => return Ok(()),
            None
            | Some(FaultKind::CutBeforeResponse)
            | Some(FaultKind::TruncateResponse)
            | Some(FaultKind::DelayResponse(_))
            | Some(FaultKind::TrickleForward(_)) => {
                if let Some(FaultKind::TrickleForward(pause)) = fault {
                    for byte in &request {
                        server.write_all(std::slice::from_ref(byte))?;
                        server.flush()?;
                        std::thread::sleep(pause);
                    }
                } else {
                    server.write_all(&request)?;
                }
                let response = read_raw_frame(&mut server)?;
                match fault {
                    Some(FaultKind::CutBeforeResponse) => return Ok(()),
                    Some(FaultKind::TruncateResponse) => {
                        client.write_all(&response[..response.len() / 2])?;
                        return Ok(());
                    }
                    Some(FaultKind::DelayResponse(delay)) => {
                        std::thread::sleep(delay);
                        client.write_all(&response)?;
                    }
                    _ => client.write_all(&response)?,
                }
            }
        }
    }
}

/// Read one length-prefixed frame, returning prefix + payload verbatim.
fn read_raw_frame(stream: &mut TcpStream) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix) as usize;
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&prefix);
    stream.read_exact(&mut frame[4..])?;
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_spare_the_handshake() {
        let a = FaultPlan::seeded(42, 6);
        let b = FaultPlan::seeded(42, 6);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.len(), 6);
        assert!(a.faults.keys().all(|&f| f >= 2));
        let c = FaultPlan::seeded(43, 6);
        assert_ne!(a.faults, c.faults);
    }
}
