//! Blocking client for the tuning daemon.

use crate::codec::{read_frame_buf, write_frame_buf};
use crate::protocol::{
    Request, Response, RunSummary, SensitivityEntry, SpaceSpec, PROTOCOL_VERSION,
};
use crate::NetError;
use harmony_space::{Configuration, ParameterSpace};
use std::net::{TcpStream, ToSocketAddrs};

/// What the server answered to a `SessionStart`.
#[derive(Debug, Clone)]
pub struct SessionStarted {
    /// The authoritative space (clients sending RSL learn the parsed
    /// parameter names and bounds from here).
    pub space: ParameterSpace,
    /// Prior run picked for training, when one matched.
    pub trained_from: Option<String>,
    /// Virtual iterations spent on that experience.
    pub training_iterations: usize,
}

/// A configuration proposed by the server.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Parameter values, in space order.
    pub values: Configuration,
    /// Live iterations completed before this proposal.
    pub iteration: usize,
}

/// Final result of a session.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// Best configuration measured live.
    pub best: Configuration,
    /// Its performance.
    pub performance: f64,
    /// Live iterations spent.
    pub iterations: usize,
    /// Whether the search converged (rather than exhausting its budget).
    pub converged: bool,
}

/// A connection to a tuning daemon, driving one session at a time.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// Frame scratch, reused across round trips (requests are written
    /// before responses are read, so one buffer serves both directions).
    buf: Vec<u8>,
}

impl Client {
    /// Connect and complete the `Hello` exchange.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            buf: Vec::new(),
        };
        let response = client.round_trip(&Request::Hello {
            version: PROTOCOL_VERSION,
            client: format!("harmony-net client {}", env!("CARGO_PKG_VERSION")),
        })?;
        match response {
            Response::Hello { .. } => Ok(client),
            other => Err(unexpected("Hello", other)),
        }
    }

    /// Begin a tuning session.
    pub fn start_session(
        &mut self,
        space: SpaceSpec,
        label: impl Into<String>,
        characteristics: Vec<f64>,
        max_iterations: Option<usize>,
    ) -> Result<SessionStarted, NetError> {
        let response = self.round_trip(&Request::SessionStart {
            space,
            label: label.into(),
            characteristics,
            max_iterations,
        })?;
        match response {
            Response::SessionStarted {
                space,
                trained_from,
                training_iterations,
            } => Ok(SessionStarted {
                space,
                trained_from,
                training_iterations,
            }),
            other => Err(unexpected("SessionStarted", other)),
        }
    }

    /// Ask for the next configuration; `None` once the session is over.
    pub fn fetch(&mut self) -> Result<Option<Proposal>, NetError> {
        match self.round_trip(&Request::Fetch)? {
            Response::Config { values, iteration } => Ok(Some(Proposal {
                values: Configuration::new(values),
                iteration,
            })),
            Response::Done => Ok(None),
            other => Err(unexpected("Config or Done", other)),
        }
    }

    /// Report the measurement for the last fetched configuration.
    pub fn report(&mut self, performance: f64) -> Result<(), NetError> {
        match self.round_trip(&Request::Report { performance })? {
            Response::Reported => Ok(()),
            other => Err(unexpected("Reported", other)),
        }
    }

    /// End the session; the run is recorded server-side.
    pub fn end_session(&mut self) -> Result<SessionSummary, NetError> {
        match self.round_trip(&Request::SessionEnd)? {
            Response::SessionSummary {
                values,
                performance,
                iterations,
                converged,
            } => Ok(SessionSummary {
                best: Configuration::new(values),
                performance,
                iterations,
                converged,
            }),
            other => Err(unexpected("SessionSummary", other)),
        }
    }

    /// Per-parameter sensitivity estimated from prior and live
    /// experience. Needs an active session.
    pub fn sensitivity(&mut self) -> Result<Vec<SensitivityEntry>, NetError> {
        match self.round_trip(&Request::Sensitivity)? {
            Response::Sensitivity { entries } => Ok(entries),
            other => Err(unexpected("Sensitivity", other)),
        }
    }

    /// Summaries of every run in the server's experience database.
    pub fn db_runs(&mut self) -> Result<Vec<RunSummary>, NetError> {
        match self.round_trip(&Request::DbQuery)? {
            Response::Runs { runs } => Ok(runs),
            other => Err(unexpected("Runs", other)),
        }
    }

    /// The daemon's live metrics in Prometheus text exposition format.
    /// Needs no session.
    pub fn stats(&mut self) -> Result<String, NetError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { text } => Ok(text),
            other => Err(unexpected("Stats", other)),
        }
    }

    /// Drive a whole session with a measurement closure: fetch, measure,
    /// report, until done; then end the session.
    ///
    /// The closure may fail (a crashed external program, say); the error
    /// is surfaced immediately and the connection is dropped with the
    /// session unfinished — the server still records what was measured.
    pub fn tune_with<E>(
        &mut self,
        space: SpaceSpec,
        label: impl Into<String>,
        characteristics: Vec<f64>,
        max_iterations: Option<usize>,
        mut measure: impl FnMut(&Configuration) -> Result<f64, E>,
    ) -> Result<(SessionStarted, SessionSummary), TuneError<E>> {
        let started = self
            .start_session(space, label, characteristics, max_iterations)
            .map_err(TuneError::Net)?;
        while let Some(proposal) = self.fetch().map_err(TuneError::Net)? {
            let performance = measure(&proposal.values).map_err(TuneError::Measure)?;
            self.report(performance).map_err(TuneError::Net)?;
        }
        let summary = self.end_session().map_err(TuneError::Net)?;
        Ok((started, summary))
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, NetError> {
        write_frame_buf(&mut self.stream, request, &mut self.buf)?;
        match read_frame_buf(&mut self.stream, &mut self.buf)? {
            Response::Error { message } => Err(NetError::Remote(message)),
            response => Ok(response),
        }
    }
}

/// Failure of a [`Client::tune_with`] loop: either the wire broke or the
/// caller's measurement did.
#[derive(Debug)]
pub enum TuneError<E> {
    /// Transport or protocol failure.
    Net(NetError),
    /// The measurement closure failed.
    Measure(E),
}

impl<E: std::fmt::Display> std::fmt::Display for TuneError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Net(e) => write!(f, "{e}"),
            TuneError::Measure(e) => write!(f, "measurement failed: {e}"),
        }
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for TuneError<E> {}

fn unexpected(wanted: &str, got: Response) -> NetError {
    NetError::Protocol(format!("expected {wanted}, server sent {got:?}"))
}
