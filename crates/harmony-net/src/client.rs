//! Blocking client for the tuning daemon, with reconnect/resume,
//! per-request deadlines, and retry with decorrelated-jitter backoff.
//!
//! [`Client::connect`] gives the defaults; [`Client::builder`] exposes
//! the knobs:
//!
//! ```no_run
//! use harmony_net::client::{Client, RetryPolicy};
//! use std::time::Duration;
//!
//! let client = Client::builder("127.0.0.1:777")
//!     .connect_timeout(Duration::from_secs(2))
//!     .request_deadline(Duration::from_secs(10))
//!     .retry(RetryPolicy::default())
//!     .connect()?;
//! # drop(client);
//! # Ok::<(), harmony_net::NetError>(())
//! ```
//!
//! When a request fails retryably (transport error, deadline expiry, a
//! `Draining` refusal) the client tears the connection down, sleeps a
//! decorrelated-jitter backoff, reconnects, re-attaches its session via
//! `Resume`, and replays the request. `Fetch` is idempotent server-side;
//! `Report` carries a sequence number the server deduplicates, so a
//! replayed report is acknowledged without being observed twice.
//!
//! Against a cluster, give the builder every daemon as an extra
//! [`ClientBuilder::endpoint`]: the client dials them in order starting
//! from the last one that worked, and when a daemon answers `Resume`
//! with `NotMine { owner }` (the session's token hashes to a different
//! ring member) it follows the redirect to the named owner. A reconnect
//! after a daemon death therefore lands wherever the session actually
//! lives — on its owner, or on the replica that adopted it.

use crate::codec::{clamp_scratch, read_frame_buf_as, write_frame_buf_as, WireFormat};
use crate::protocol::{
    Request, Response, RunSummary, SensitivityEntry, SpaceSpec, WireSpan, WireTrace,
    MIN_SUPPORTED_VERSION, PROTOCOL_VERSION,
};
use crate::NetError;
use harmony_obs::trace::{self, stage, TraceContext};
use harmony_space::{Configuration, ParameterSpace};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What the server answered to a `SessionStart`.
#[derive(Debug, Clone)]
pub struct SessionStarted {
    /// The authoritative space (clients sending RSL learn the parsed
    /// parameter names and bounds from here).
    pub space: ParameterSpace,
    /// Prior run picked for training, when one matched.
    pub trained_from: Option<String>,
    /// Virtual iterations spent on that experience.
    pub training_iterations: usize,
    /// Resume token, when the server speaks protocol v2. The client
    /// keeps it internally too — this copy is informational.
    pub session_token: Option<String>,
}

/// A configuration proposed by the server.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// Parameter values, in space order.
    pub values: Configuration,
    /// Live iterations completed before this proposal.
    pub iteration: usize,
}

/// Final result of a session.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// Best configuration measured live.
    pub best: Configuration,
    /// Its performance.
    pub performance: f64,
    /// Live iterations spent.
    pub iterations: usize,
    /// Whether the search converged (rather than exhausting its budget).
    pub converged: bool,
}

/// How a [`Client`] retries requests that fail retryably.
///
/// Backoff is decorrelated jitter: each sleep is drawn uniformly from
/// `[base, prev * 3]` and clamped to `cap`, so concurrent clients spread
/// out instead of reconnecting in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per request after the first attempt. Zero disables
    /// retrying entirely.
    pub max_retries: u32,
    /// Lower bound of every backoff sleep, and the first draw's scale.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Seed for the jitter stream, so tests can be deterministic.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Same policy with a different retry budget.
    pub fn with_max_retries(mut self, n: u32) -> RetryPolicy {
        self.max_retries = n;
        self
    }

    /// Same policy with a different jitter seed.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(500),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// The daemons a [`Client`] may dial: one for a standalone server,
/// several for a cluster. The client dials in order starting from the
/// *preferred* endpoint — initially the first, thereafter whichever one
/// last worked or was last named as a session's owner by a `NotMine`
/// redirect — wrapping around the list, so one dead daemon costs one
/// failed dial, not the session.
#[derive(Debug, Clone)]
pub struct Endpoints {
    /// Resolved socket addresses per endpoint, in the order given.
    addrs: Vec<Vec<SocketAddr>>,
    /// Index dialed first.
    preferred: usize,
}

impl Endpoints {
    /// Resolve one endpoint.
    pub fn single(addr: impl ToSocketAddrs) -> io::Result<Endpoints> {
        Endpoints::resolve([addr])
    }

    /// Resolve a list of endpoints, keeping their order.
    pub fn resolve<A: ToSocketAddrs>(
        endpoints: impl IntoIterator<Item = A>,
    ) -> io::Result<Endpoints> {
        let mut addrs = Vec::new();
        for endpoint in endpoints {
            addrs.push(resolve_nonempty(endpoint)?);
        }
        if addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "no endpoints to dial",
            ));
        }
        Ok(Endpoints {
            addrs,
            preferred: 0,
        })
    }

    /// Append one more endpoint.
    pub fn push(&mut self, addr: impl ToSocketAddrs) -> io::Result<()> {
        self.addrs.push(resolve_nonempty(addr)?);
        Ok(())
    }

    /// Number of endpoints.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// True when no endpoints are configured (unreachable via the
    /// constructors, which insist on at least one).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Endpoint indices in dial order: preferred first, then the rest,
    /// wrapping around.
    fn dial_order(&self) -> Vec<usize> {
        let n = self.addrs.len();
        (0..n).map(|i| (self.preferred + i) % n).collect()
    }

    /// Make `owner` (a `host:port` string from a `NotMine` redirect) the
    /// preferred endpoint, appending it if it isn't in the list yet.
    fn pin(&mut self, owner: &str) -> io::Result<usize> {
        let resolved = resolve_nonempty(owner)?;
        let index = match self
            .addrs
            .iter()
            .position(|known| known.iter().any(|a| resolved.contains(a)))
        {
            Some(index) => index,
            None => {
                self.addrs.push(resolved);
                self.addrs.len() - 1
            }
        };
        self.preferred = index;
        Ok(index)
    }
}

fn resolve_nonempty(addr: impl ToSocketAddrs) -> io::Result<Vec<SocketAddr>> {
    let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    if resolved.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "address resolved to nothing",
        ));
    }
    Ok(resolved)
}

/// How many `NotMine` redirects a reconnect will follow before giving
/// up. Ownership is settled by one consistent-hash lookup, so a chain
/// longer than a couple of hops means the cluster members disagree
/// about the ring.
const MAX_REDIRECT_HOPS: u32 = 3;

/// Configures and opens a [`Client`]. Built by [`Client::builder`].
#[derive(Debug)]
pub struct ClientBuilder {
    endpoints: io::Result<Endpoints>,
    connect_timeout: Option<Duration>,
    request_deadline: Option<Duration>,
    retry: RetryPolicy,
    tracing: bool,
    max_version: u32,
}

impl ClientBuilder {
    /// Add a failover endpoint (another daemon of the same cluster) the
    /// client may dial when the preferred one is unreachable, and to
    /// which `NotMine` redirects may point.
    pub fn endpoint(mut self, addr: impl ToSocketAddrs) -> ClientBuilder {
        if let Ok(endpoints) = &mut self.endpoints {
            if let Err(e) = endpoints.push(addr) {
                self.endpoints = Err(e);
            }
        }
        self
    }

    /// Replace the endpoint list wholesale.
    pub fn endpoints(mut self, endpoints: Endpoints) -> ClientBuilder {
        self.endpoints = Ok(endpoints);
        self
    }

    /// Cap on each TCP connection attempt (including reconnects).
    pub fn connect_timeout(mut self, timeout: Duration) -> ClientBuilder {
        self.connect_timeout = Some(timeout);
        self
    }

    /// Deadline on each request's response. Expiry surfaces as
    /// [`NetError::Timeout`], which the retry loop treats as retryable.
    pub fn request_deadline(mut self, deadline: Duration) -> ClientBuilder {
        self.request_deadline = Some(deadline);
        self
    }

    /// Retry policy for retryable failures.
    pub fn retry(mut self, policy: RetryPolicy) -> ClientBuilder {
        self.retry = policy;
        self
    }

    /// Participate in distributed tracing: each session becomes one
    /// trace, requests carry its context to the server (protocol ≥ 2),
    /// and client-side spans — `net.rpc` round trips, [`Client::traced`]
    /// measurements — are piggybacked onto subsequent requests so the
    /// daemon's flight recorder sees the whole client → daemon →
    /// executor picture. Tracing is observation-only: proposals and
    /// search trajectories are bit-identical with it on or off.
    pub fn tracing(mut self, on: bool) -> ClientBuilder {
        self.tracing = on;
        self
    }

    /// Cap the protocol version offered at `Hello`. The default is
    /// [`PROTOCOL_VERSION`] — prefer v3's binary framing, falling back
    /// to whatever the server speaks. Capping at 2 pins a JSON-only
    /// connection (useful against old proxies, or to compare formats);
    /// values outside the supported range are clamped into it.
    pub fn max_protocol_version(mut self, version: u32) -> ClientBuilder {
        self.max_version = version.clamp(MIN_SUPPORTED_VERSION, PROTOCOL_VERSION);
        self
    }

    /// Connect and complete the `Hello` exchange.
    pub fn connect(self) -> Result<Client, NetError> {
        let endpoints = self.endpoints.map_err(NetError::Io)?;
        let rng = self.retry.seed | 1;
        if self.tracing && !trace::is_enabled() {
            trace::enable(trace::RecorderConfig::default());
        }
        let mut client = Client {
            endpoints,
            connect_timeout: self.connect_timeout,
            request_deadline: self.request_deadline,
            retry: self.retry,
            stream: None,
            buf: Vec::new(),
            version: MIN_SUPPORTED_VERSION,
            max_version: self.max_version,
            format: WireFormat::Json,
            token: None,
            seq: 0,
            rng,
            prev_backoff: Duration::ZERO,
            tracing: self.tracing,
            trace: None,
        };
        client.with_retries(|c| c.ensure_connected())?;
        Ok(client)
    }
}

/// A connection to a tuning daemon, driving one session at a time.
#[derive(Debug)]
pub struct Client {
    endpoints: Endpoints,
    connect_timeout: Option<Duration>,
    request_deadline: Option<Duration>,
    retry: RetryPolicy,
    stream: Option<TcpStream>,
    /// Frame scratch, reused across round trips (requests are written
    /// before responses are read, so one buffer serves both directions).
    buf: Vec<u8>,
    /// Protocol version negotiated at the last `Hello`.
    version: u32,
    /// Highest protocol version offered at `Hello`.
    max_version: u32,
    /// Payload encoding for the next frame: JSON until `Hello` lands on
    /// v3, binary afterwards; reset to JSON on every fresh dial.
    format: WireFormat,
    /// Resume token of the active session, when the server issued one.
    token: Option<String>,
    /// Sequence number the next `Report` will carry.
    seq: u64,
    /// xorshift64 state for backoff jitter.
    rng: u64,
    /// Previous backoff sleep, anchoring the decorrelated-jitter draw.
    prev_backoff: Duration,
    /// Whether sessions participate in distributed tracing.
    tracing: bool,
    /// The active session's trace, when tracing.
    trace: Option<SessionTrace>,
}

/// Identity of the one trace a traced session accumulates into. The
/// root span id is never recorded client-side — the daemon synthesizes
/// the session root around it at finalize time, so a session whose
/// client vanishes still dumps as a coherent (if incomplete) tree.
#[derive(Debug, Clone, Copy)]
struct SessionTrace {
    trace_id: u64,
    root_span: u64,
}

impl Client {
    /// Connect with the default configuration and complete the `Hello`
    /// exchange. Shorthand for `Client::builder(addr).connect()`.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        Client::builder(addr).connect()
    }

    /// Start configuring a connection.
    pub fn builder(addr: impl ToSocketAddrs) -> ClientBuilder {
        ClientBuilder {
            endpoints: Endpoints::single(addr),
            connect_timeout: None,
            request_deadline: None,
            retry: RetryPolicy::default(),
            tracing: false,
            max_version: PROTOCOL_VERSION,
        }
    }

    /// The payload encoding the connection negotiated (JSON until a v3
    /// `Hello` lands).
    pub fn wire_format(&self) -> WireFormat {
        self.format
    }

    /// The protocol version negotiated with the server.
    pub fn protocol_version(&self) -> u32 {
        self.version
    }

    /// The active session's resume token, when the server issued one.
    pub fn session_token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    /// Begin a tuning session driven by the daemon's default simplex
    /// strategy. Shorthand for [`Client::start_session_with`] without an
    /// engine.
    pub fn start_session(
        &mut self,
        space: SpaceSpec,
        label: impl Into<String>,
        characteristics: Vec<f64>,
        max_iterations: Option<usize>,
    ) -> Result<SessionStarted, NetError> {
        self.start_session_with(space, label, characteristics, max_iterations, None)
    }

    /// Begin a tuning session, optionally naming a registered search
    /// engine (`divide-diverge`, `tuneful`, …) for the daemon to drive
    /// instead of its default simplex strategy. An unknown name is
    /// refused by the server with the registry's error message.
    pub fn start_session_with(
        &mut self,
        space: SpaceSpec,
        label: impl Into<String>,
        characteristics: Vec<f64>,
        max_iterations: Option<usize>,
        engine: Option<String>,
    ) -> Result<SessionStarted, NetError> {
        let request = Request::SessionStart {
            space,
            label: label.into(),
            characteristics,
            max_iterations,
            engine,
        };
        // The session's trace opens with the session itself, so even the
        // SessionStart's classification/warm-start spans land in it.
        if self.tracing {
            self.trace = Some(SessionTrace {
                trace_id: trace::new_id(),
                root_span: trace::new_id(),
            });
        }
        let response = self.round_trip(&request)?;
        match response {
            Response::SessionStarted {
                space,
                trained_from,
                training_iterations,
                session_token,
            } => {
                self.token = session_token.clone();
                self.seq = 0;
                Ok(SessionStarted {
                    space,
                    trained_from,
                    training_iterations,
                    session_token,
                })
            }
            other => Err(unexpected("SessionStarted", other)),
        }
    }

    /// Ask for the next configuration; `None` once the session is over.
    ///
    /// Idempotent server-side: a replayed fetch re-receives the pending
    /// proposal rather than burning an iteration.
    pub fn fetch(&mut self) -> Result<Option<Proposal>, NetError> {
        match self.round_trip(&Request::Fetch)? {
            Response::Config { values, iteration } => Ok(Some(Proposal {
                values: Configuration::new(values),
                iteration,
            })),
            Response::Done => Ok(None),
            other => Err(unexpected("Config or Done", other)),
        }
    }

    /// Report the measurement for the last fetched configuration.
    ///
    /// On a v2 connection the report carries a sequence number; a replay
    /// after reconnect is acknowledged by the server without observing
    /// the measurement twice.
    pub fn report(&mut self, performance: f64) -> Result<(), NetError> {
        let seq = (self.version >= 2).then_some(self.seq);
        match self.round_trip(&Request::Report { performance, seq })? {
            Response::Reported => {
                if seq.is_some() {
                    self.seq += 1;
                }
                Ok(())
            }
            other => Err(unexpected("Reported", other)),
        }
    }

    /// End the session; the run is recorded server-side.
    pub fn end_session(&mut self) -> Result<SessionSummary, NetError> {
        match self.round_trip(&Request::SessionEnd)? {
            Response::SessionSummary {
                values,
                performance,
                iterations,
                converged,
            } => {
                self.token = None;
                self.seq = 0;
                // The daemon finalized the trace on SessionEnd; anything
                // still unshipped client-side belongs to no one now.
                if let Some(t) = self.trace.take() {
                    trace::discard(t.trace_id);
                }
                Ok(SessionSummary {
                    best: Configuration::new(values),
                    performance,
                    iterations,
                    converged,
                })
            }
            other => Err(unexpected("SessionSummary", other)),
        }
    }

    /// Per-parameter sensitivity estimated from prior and live
    /// experience. Needs an active session.
    pub fn sensitivity(&mut self) -> Result<Vec<SensitivityEntry>, NetError> {
        match self.round_trip(&Request::Sensitivity)? {
            Response::Sensitivity { entries } => Ok(entries),
            other => Err(unexpected("Sensitivity", other)),
        }
    }

    /// Summaries of every run in the server's experience database.
    pub fn db_runs(&mut self) -> Result<Vec<RunSummary>, NetError> {
        match self.round_trip(&Request::DbQuery)? {
            Response::Runs { runs } => Ok(runs),
            other => Err(unexpected("Runs", other)),
        }
    }

    /// The daemon's live metrics in Prometheus text exposition format.
    /// Needs no session.
    pub fn stats(&mut self) -> Result<String, NetError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { text } => Ok(text),
            other => Err(unexpected("Stats", other)),
        }
    }

    /// The daemon's flight-recorder contents: every retained trace as a
    /// span tree. Needs no session.
    pub fn trace_dump(&mut self) -> Result<Vec<WireTrace>, NetError> {
        match self.round_trip(&Request::TraceDump)? {
            Response::TraceDump { traces } => Ok(traces),
            other => Err(unexpected("TraceDump", other)),
        }
    }

    /// The active session's trace context, when tracing. What
    /// [`Client::traced`] spans hang off.
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.trace.map(|t| TraceContext {
            trace_id: t.trace_id,
            span_id: t.root_span,
        })
    }

    /// Run `f` under a span in the active session's trace — how a
    /// measurement closure shows up as an `eval` stage (with any
    /// executor queue-wait attribution recorded beneath it). Without
    /// tracing, or without a session, `f` just runs.
    pub fn traced<T>(&self, stage_name: &'static str, detail: &str, f: impl FnOnce() -> T) -> T {
        match self.trace_context() {
            Some(ctx) if trace::is_enabled() => {
                let _span = trace::continue_from(ctx, stage_name, detail);
                f()
            }
            _ => f(),
        }
    }

    /// Drive a whole session with a measurement closure: fetch, measure,
    /// report, until done; then end the session.
    ///
    /// The closure may fail (a crashed external program, say); the error
    /// surfaces as [`NetError::Measurement`] and the session is left
    /// unfinished — the server still records what was measured.
    pub fn tune_with<E: std::fmt::Display>(
        &mut self,
        space: SpaceSpec,
        label: impl Into<String>,
        characteristics: Vec<f64>,
        max_iterations: Option<usize>,
        mut measure: impl FnMut(&Configuration) -> Result<f64, E>,
    ) -> Result<(SessionStarted, SessionSummary), NetError> {
        let started = self.start_session(space, label, characteristics, max_iterations)?;
        while let Some(proposal) = self.fetch()? {
            let performance = self
                .traced(stage::EVAL, "measure", || measure(&proposal.values))
                .map_err(|e| NetError::Measurement(e.to_string()))?;
            self.report(performance)?;
        }
        let summary = self.end_session()?;
        Ok((started, summary))
    }

    /// One request/response exchange with retry: on a retryable failure
    /// the connection is torn down, a backoff sleep taken, the session
    /// re-attached via `Resume`, and the request replayed.
    fn round_trip(&mut self, request: &Request) -> Result<Response, NetError> {
        self.with_retries(|client| {
            client.ensure_connected()?;
            let response = match client.trace_envelope(request) {
                Some(envelope) => {
                    let ctx = client.trace_context().expect("envelope implies trace");
                    let _rpc = trace::continue_from(ctx, stage::NET_RPC, request.kind());
                    client.exchange(&envelope)?
                }
                None => client.exchange(request)?,
            };
            match response {
                Response::Error { message } => Err(NetError::Remote(message)),
                Response::Draining => Err(NetError::Draining),
                response => Ok(response),
            }
        })
    }

    /// Wrap `request` in the session's trace envelope, shipping every
    /// client-side span completed since the last request. `None` (send
    /// bare) without tracing, without a session trace, or on a v1
    /// connection — a trace wrapper would be rejected there.
    fn trace_envelope(&mut self, request: &Request) -> Option<Request> {
        let t = self.trace?;
        if !self.tracing || !trace::is_enabled() || self.version < 2 {
            return None;
        }
        let spans: Vec<WireSpan> = trace::drain(t.trace_id)
            .into_iter()
            .map(Into::into)
            .collect();
        Some(Request::Traced {
            trace_id: t.trace_id,
            parent_span: t.root_span,
            spans,
            request: Box::new(request.clone()),
        })
    }

    /// Run `attempt` under the retry policy, tearing down the connection
    /// and sleeping a decorrelated-jitter backoff between tries.
    fn with_retries<T>(
        &mut self,
        mut attempt: impl FnMut(&mut Client) -> Result<T, NetError>,
    ) -> Result<T, NetError> {
        let mut retries = 0;
        loop {
            match attempt(self) {
                Err(e) if e.is_retryable() && retries < self.retry.max_retries => {
                    retries += 1;
                    crate::obs::retries_total().inc();
                    self.stream = None;
                    let sleep = self.next_backoff();
                    std::thread::sleep(sleep);
                }
                Err(e) => {
                    // The connection state is unknown after a transport
                    // failure; don't reuse it.
                    if e.is_retryable() {
                        self.stream = None;
                    }
                    return Err(e);
                }
                Ok(value) => {
                    self.prev_backoff = Duration::ZERO;
                    return Ok(value);
                }
            }
        }
    }

    /// Decorrelated jitter: uniform in `[base, prev * 3]`, clamped to
    /// `cap`.
    fn next_backoff(&mut self) -> Duration {
        let base = self.retry.base.max(Duration::from_micros(1));
        let prev = self.prev_backoff.max(base);
        let lo = base.as_nanos() as u64;
        let hi = (prev.as_nanos() as u64).saturating_mul(3).max(lo + 1);
        let draw = lo + self.next_u64() % (hi - lo);
        let sleep = Duration::from_nanos(draw).min(self.retry.cap);
        self.prev_backoff = sleep;
        sleep
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Dial, `Hello`, and re-attach the active session if one was in
    /// flight when the previous connection died — following `NotMine`
    /// redirects to the session's owner, for a bounded number of hops.
    fn ensure_connected(&mut self) -> Result<(), NetError> {
        if self.stream.is_some() {
            return Ok(());
        }
        self.open_any()?;
        let mut hops = 0;
        while let Some(token) = self.token.clone() {
            match self.exchange(&Request::Resume { token })? {
                Response::Resumed { .. } => break,
                Response::NotMine { owner } => {
                    hops += 1;
                    if hops > MAX_REDIRECT_HOPS {
                        return Err(NetError::Protocol(format!(
                            "session redirect did not settle after {MAX_REDIRECT_HOPS} \
                             hops (last named owner: {owner})"
                        )));
                    }
                    let came_from = self.endpoints.preferred;
                    let index = self.endpoints.pin(&owner).map_err(NetError::Io)?;
                    if self.open_at(index).is_err() {
                        // The named owner is unreachable — typically it is
                        // the dead daemon this reconnect is failing over
                        // from, and the member that redirected us simply
                        // holds no replica. Rotate through the remaining
                        // endpoints: the replica holder adopts the session,
                        // anyone else redirects again within the hop budget.
                        self.open_other(&[index, came_from])?;
                    }
                }
                Response::Error { message } => return Err(NetError::Remote(message)),
                Response::Draining => return Err(NetError::Draining),
                other => return Err(unexpected("Resumed", other)),
            }
        }
        Ok(())
    }

    /// Open a connection to the first endpoint that accepts, dialing
    /// from the preferred one and wrapping around the list.
    fn open_any(&mut self) -> Result<(), NetError> {
        let mut last: Option<NetError> = None;
        for index in self.endpoints.dial_order() {
            match self.open_at(index) {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            NetError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "no endpoints to dial",
            ))
        }))
    }

    /// Open a connection to any endpoint not in `excluded` (dead or
    /// known not to hold the session), in dial order.
    fn open_other(&mut self, excluded: &[usize]) -> Result<(), NetError> {
        let mut last: Option<NetError> = None;
        for index in self.endpoints.dial_order() {
            if excluded.contains(&index) {
                continue;
            }
            match self.open_at(index) {
                Ok(()) => return Ok(()),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            NetError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "no other endpoint to follow the redirect to",
            ))
        }))
    }

    /// Dial one endpoint and complete the `Hello` exchange; on success
    /// the endpoint becomes the preferred one for future dials.
    fn open_at(&mut self, index: usize) -> Result<(), NetError> {
        self.stream = None;
        let stream = self.dial(index)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(self.request_deadline)?;
        stream.set_write_timeout(self.request_deadline)?;
        self.stream = Some(stream);
        // A fresh connection always opens in JSON; the format the Hello
        // negotiates takes effect from the next frame on (the server
        // flips on the same boundary).
        self.format = WireFormat::Json;
        let response = self.exchange(&Request::Hello {
            version: None,
            min_version: Some(MIN_SUPPORTED_VERSION),
            max_version: Some(self.max_version),
            client: format!("harmony-net client {}", env!("CARGO_PKG_VERSION")),
        })?;
        match response {
            Response::Hello { version, .. } => {
                self.version = version;
                self.format = if version >= 3 {
                    WireFormat::Binary
                } else {
                    WireFormat::Json
                };
            }
            Response::Error { message } => return Err(NetError::Remote(message)),
            Response::Draining => return Err(NetError::Draining),
            other => return Err(unexpected("Hello", other)),
        }
        self.endpoints.preferred = index;
        Ok(())
    }

    fn dial(&self, endpoint: usize) -> Result<TcpStream, NetError> {
        let mut last: Option<io::Error> = None;
        for addr in &self.endpoints.addrs[endpoint] {
            let attempt = match self.connect_timeout {
                Some(timeout) => TcpStream::connect_timeout(addr, timeout),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => return Ok(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(NetError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses to dial")
        })))
    }

    /// One raw request/response exchange on the live stream, mapping
    /// read-timeout expiry to [`NetError::Timeout`].
    fn exchange(&mut self, request: &Request) -> Result<Response, NetError> {
        let stream = self
            .stream
            .as_mut()
            .expect("exchange called without a connection");
        let what = request_name(request);
        write_frame_buf_as(stream, self.format, request, &mut self.buf)
            .map_err(|e| deadline_expiry(e, what))?;
        let response = read_frame_buf_as(stream, self.format, &mut self.buf)
            .map_err(|e| deadline_expiry(e, what));
        // The scratch serves every round trip; don't let one oversized
        // response (a TraceDump, say) pin its size for the session.
        clamp_scratch(&mut self.buf);
        response
    }
}

/// Rewrite the i/o errors a socket read/write timeout produces into the
/// dedicated `Timeout` kind, naming the request that missed its deadline.
fn deadline_expiry(e: NetError, what: &str) -> NetError {
    match e {
        NetError::Io(io)
            if io.kind() == io::ErrorKind::WouldBlock || io.kind() == io::ErrorKind::TimedOut =>
        {
            NetError::Timeout(what.to_string())
        }
        other => other,
    }
}

fn request_name(request: &Request) -> &'static str {
    match request {
        Request::Hello { .. } => "Hello",
        Request::SessionStart { .. } => "SessionStart",
        Request::Resume { .. } => "Resume",
        Request::Fetch => "Fetch",
        Request::Report { .. } => "Report",
        Request::SessionEnd => "SessionEnd",
        Request::Sensitivity => "Sensitivity",
        Request::DbQuery => "DbQuery",
        Request::Stats => "Stats",
        Request::Traced { request, .. } => request_name(request),
        Request::TraceDump => "TraceDump",
        Request::PeerHello { .. } => "PeerHello",
        Request::PeerShipRun { .. } => "PeerShipRun",
        Request::PeerShipSession { .. } => "PeerShipSession",
        Request::PeerDropSession { .. } => "PeerDropSession",
    }
}

fn unexpected(wanted: &str, got: Response) -> NetError {
    NetError::Protocol(format!("expected {wanted}, server sent {got:?}"))
}
